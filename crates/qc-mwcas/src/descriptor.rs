//! Operation descriptors.
//!
//! One [`MwcasDescriptor`] describes a whole multi-word CAS: up to
//! [`MAX_WORDS`] `(word, expected, new)` entries plus a three-state status.
//! The RDCSS sub-operations Harris's construction uses to install the
//! descriptor conditionally (only while the status is still `UNDECIDED`)
//! are **embedded**: every entry's RDCSS descriptor is fully determined by
//! the parent descriptor and the entry index, so the in-word RDCSS encoding
//! is just `parent address | index << 56 | TAG_RDCSS`. This removes all
//! per-attempt allocation and makes RDCSS installation idempotent across
//! helpers (everyone installs the *same* bit pattern).
//!
//! Descriptors are allocated from [`crate::arena::Arena`] and are never
//! recycled until the arena drops, which is what makes helping safe without
//! coordination — see the arena docs.

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

use crate::word::{MwcasWord, TAG_MASK, TAG_MWCAS, TAG_RDCSS};

/// Maximum number of words one MWCAS may target. Quancurrent needs 2
/// (a level pointer and the tritmap); 8 leaves room for experimentation.
pub const MAX_WORDS: usize = 8;

/// Status: operation outcome not yet decided.
pub(crate) const UNDECIDED: u64 = 0;
/// Status: all entries installed; the new values win.
pub(crate) const SUCCEEDED: u64 = 1;
/// Status: some entry's expected value did not match; old values remain.
pub(crate) const FAILED: u64 = 2;

/// Bit position where the RDCSS entry index lives in a tagged word.
const INDEX_SHIFT: u32 = 56;
/// Descriptor addresses must fit below the index bits.
const ADDR_MASK: u64 = (1 << INDEX_SHIFT) - 1;

/// One `(word, expected, new)` triple, in raw (encoded) representation.
///
/// Entries are written once, before the descriptor is published through a
/// SeqCst CAS, and only read by threads that observed that publication —
/// plain fields are sufficient.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    /// Address of the target [`MwcasWord`].
    pub(crate) word: *const MwcasWord,
    /// Raw expected value (must be a plain-tagged encoding).
    pub(crate) old_raw: u64,
    /// Raw replacement value (must be a plain-tagged encoding).
    pub(crate) new_raw: u64,
}

impl Entry {
    pub(crate) fn target(&self) -> &MwcasWord {
        // SAFETY: callers construct entries from live `&MwcasWord` borrows
        // whose referents outlive the arena (enforced by `mwcas`'s caller
        // contract: the words belong to the data structure that owns the
        // arena).
        unsafe { &*self.word }
    }
}

/// A multi-word CAS operation record.
#[repr(align(64))]
pub(crate) struct MwcasDescriptor {
    pub(crate) status: AtomicU64,
    pub(crate) len: usize,
    pub(crate) entries: [Entry; MAX_WORDS],
}

// SAFETY: descriptors are shared between helping threads; all mutable state
// is atomic, the rest is written before publication.
unsafe impl Send for MwcasDescriptor {}
unsafe impl Sync for MwcasDescriptor {}

impl MwcasDescriptor {
    pub(crate) fn status(&self) -> u64 {
        self.status.load(SeqCst)
    }

    pub(crate) fn decide(&self, outcome: u64) -> u64 {
        match self.status.compare_exchange(UNDECIDED, outcome, SeqCst, SeqCst) {
            Ok(_) => outcome,
            Err(already) => already,
        }
    }

    pub(crate) fn entries(&self) -> &[Entry] {
        &self.entries[..self.len]
    }
}

/// Encode an MWCAS descriptor pointer for in-word storage.
#[inline]
pub(crate) fn mwcas_raw(d: *const MwcasDescriptor) -> u64 {
    let addr = d as u64;
    debug_assert_eq!(addr & TAG_MASK, 0, "descriptor must be ≥4-byte aligned");
    debug_assert_eq!(addr & !ADDR_MASK, 0, "descriptor address exceeds 56 bits");
    addr | TAG_MWCAS
}

/// Decode an MWCAS-tagged word back into the descriptor pointer.
#[inline]
pub(crate) fn mwcas_ptr(raw: u64) -> *const MwcasDescriptor {
    debug_assert_eq!(raw & TAG_MASK, TAG_MWCAS);
    (raw & !TAG_MASK & ADDR_MASK) as *const MwcasDescriptor
}

/// Encode the embedded RDCSS descriptor for entry `index` of `d`.
#[inline]
pub(crate) fn rdcss_raw(d: *const MwcasDescriptor, index: usize) -> u64 {
    let addr = d as u64;
    debug_assert_eq!(addr & TAG_MASK, 0);
    debug_assert_eq!(addr & !ADDR_MASK, 0, "descriptor address exceeds 56 bits");
    debug_assert!(index < MAX_WORDS);
    addr | ((index as u64) << INDEX_SHIFT) | TAG_RDCSS
}

/// Decode an RDCSS-tagged word into `(descriptor, entry index)`.
#[inline]
pub(crate) fn rdcss_parts(raw: u64) -> (*const MwcasDescriptor, usize) {
    debug_assert_eq!(raw & TAG_MASK, TAG_RDCSS);
    let ptr = (raw & ADDR_MASK & !TAG_MASK) as *const MwcasDescriptor;
    let index = (raw >> INDEX_SHIFT) as usize;
    (ptr, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::tag;

    fn dummy() -> Box<MwcasDescriptor> {
        Box::new(MwcasDescriptor {
            status: AtomicU64::new(UNDECIDED),
            len: 0,
            entries: [Entry { word: std::ptr::null(), old_raw: 0, new_raw: 0 }; MAX_WORDS],
        })
    }

    #[test]
    fn mwcas_encoding_roundtrips() {
        let d = dummy();
        let p: *const MwcasDescriptor = &*d;
        let raw = mwcas_raw(p);
        assert_eq!(tag(raw), TAG_MWCAS);
        assert_eq!(mwcas_ptr(raw), p);
    }

    #[test]
    fn rdcss_encoding_roundtrips_all_indices() {
        let d = dummy();
        let p: *const MwcasDescriptor = &*d;
        for index in 0..MAX_WORDS {
            let raw = rdcss_raw(p, index);
            assert_eq!(tag(raw), TAG_RDCSS);
            let (q, i) = rdcss_parts(raw);
            assert_eq!(q, p);
            assert_eq!(i, index);
        }
    }

    #[test]
    fn decide_is_first_writer_wins() {
        let d = dummy();
        assert_eq!(d.decide(SUCCEEDED), SUCCEEDED);
        assert_eq!(d.decide(FAILED), SUCCEEDED, "second decision must not override");
        assert_eq!(d.status(), SUCCEEDED);
    }

    #[test]
    fn descriptor_is_cacheline_aligned() {
        assert_eq!(std::mem::align_of::<MwcasDescriptor>(), 64);
    }
}
