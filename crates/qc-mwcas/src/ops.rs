//! The MWCAS algorithm: conditional installation (RDCSS), decision,
//! unrolling, and reads that help.
//!
//! This is Harris, Fraser & Pratt's construction (DISC'02) specialized to
//! embedded RDCSS descriptors and arena-stable memory:
//!
//! 1. **Phase 1 (install).** For each entry, in ascending address order,
//!    RDCSS the word from its expected value to the operation descriptor —
//!    but only while the operation's status is still `UNDECIDED`. A foreign
//!    descriptor in the way is helped to completion first.
//! 2. **Decide.** CAS the status from `UNDECIDED` to `SUCCEEDED` (all
//!    entries installed) or `FAILED` (some expected value did not match).
//!    The first decision wins; helpers merely echo it.
//! 3. **Phase 2 (unroll).** Replace the descriptor in every word with the
//!    new value on success or the old value on failure.
//!
//! Every thread that encounters a descriptor mid-flight executes the same
//! steps, so the operation completes as long as *any* thread is scheduled:
//! all operations (including [`read`]) are lock-free. (The paper's DCAS
//! cites a wait-free `DCAS_READ`; our read is lock-free — the distinction
//! is immaterial for the sketch's progress arguments, which assume a fair
//! scheduler, and is noted in DESIGN.md.)

use crate::arena::Arena;
use crate::descriptor::{
    mwcas_ptr, mwcas_raw, rdcss_parts, rdcss_raw, MwcasDescriptor, FAILED, MAX_WORDS, SUCCEEDED,
    UNDECIDED,
};
use crate::word::{decode, encode, tag, MwcasWord, MAX_LOGICAL, TAG_MWCAS, TAG_RDCSS, TAG_VALUE};

/// One target of a multi-word CAS: set `word` from `old` to `new`.
#[derive(Clone, Copy, Debug)]
pub struct CasPair<'a> {
    /// The shared cell to update.
    pub word: &'a MwcasWord,
    /// Expected logical value.
    pub old: u64,
    /// Replacement logical value.
    pub new: u64,
}

/// Atomically set every `pairs[i].word` from `old` to `new`; succeed iff
/// *all* expected values matched at one linearization point.
///
/// `arena` must be the descriptor arena owned by the data structure the
/// words belong to: the arena (and the words) must outlive every thread
/// that may still help this operation — in practice, both live in the same
/// shared structure and drop together.
///
/// # Panics
///
/// If `pairs` is empty, exceeds [`MAX_WORDS`], contains duplicate words,
/// values above [`MAX_LOGICAL`], or an entry with `old == new` (such
/// entries would make late helper re-installation observable; model a
/// no-op word by simply leaving it out).
pub fn mwcas(arena: &Arena, pairs: &[CasPair<'_>]) -> bool {
    assert!(!pairs.is_empty(), "mwcas with no targets");
    assert!(pairs.len() <= MAX_WORDS, "mwcas with more than {MAX_WORDS} targets");

    let mut entries: [(*const MwcasWord, u64, u64); MAX_WORDS] =
        [(std::ptr::null(), 0, 0); MAX_WORDS];
    for (i, p) in pairs.iter().enumerate() {
        assert!(p.old <= MAX_LOGICAL && p.new <= MAX_LOGICAL, "logical value exceeds 62 bits");
        assert_ne!(p.old, p.new, "mwcas entry with old == new");
        entries[i] = (p.word as *const MwcasWord, encode(p.old), encode(p.new));
    }
    let entries = &mut entries[..pairs.len()];
    // Canonical install order prevents two operations from installing into
    // each other's words in opposite orders and livelocking.
    entries.sort_unstable_by_key(|(w, _, _)| *w as usize);
    for pair in entries.windows(2) {
        assert_ne!(pair[0].0, pair[1].0, "mwcas with duplicate target words");
    }

    let d = arena.alloc(entries);
    // SAFETY: arena descriptors live until the arena drops.
    help(unsafe { &*d }, d)
}

/// Read the logical value of `word`, helping any in-flight operation to
/// completion first.
///
/// `load` performs the raw load; callers with reclamation obligations pass
/// an era-validated load (e.g. `|w| guard.protect(|| w.load_raw())`), so
/// that a returned plain value that is a block address is protected by the
/// guard. Descriptor dereferences inside this function need no protection:
/// descriptors are arena-stable.
pub fn read(word: &MwcasWord, mut load: impl FnMut(&MwcasWord) -> u64) -> u64 {
    loop {
        let raw = load(word);
        match tag(raw) {
            TAG_VALUE => return decode(raw),
            TAG_RDCSS => {
                let (d, i) = rdcss_parts(raw);
                // SAFETY: arena-stable descriptor.
                complete_rdcss(unsafe { &*d }, d, i);
            }
            TAG_MWCAS => {
                let d = mwcas_ptr(raw);
                // SAFETY: arena-stable descriptor.
                help(unsafe { &*d }, d);
            }
            _ => unreachable!("invalid word tag"),
        }
    }
}

/// [`read`] with a direct sequentially-consistent load (no reclamation
/// protection — for words whose plain values are not pointers, like the
/// tritmap, or for single-threaded use).
pub fn read_plain(word: &MwcasWord) -> u64 {
    read(word, |w| w.load_raw())
}

/// Execute (or help execute) operation `d` to completion.
fn help(d: &MwcasDescriptor, d_ptr: *const MwcasDescriptor) -> bool {
    let me = mwcas_raw(d_ptr);

    // Phase 1: install `me` into every target, in canonical order.
    let mut proposal = SUCCEEDED;
    'install: for (i, e) in d.entries().iter().enumerate() {
        loop {
            // A decided operation needs no further installation; drop
            // straight to the unroll so stale helpers retire quickly.
            if d.status() != UNDECIDED {
                break 'install;
            }
            let witnessed = rdcss(d, d_ptr, i);
            if witnessed == me {
                break; // another helper already installed this entry
            }
            match tag(witnessed) {
                TAG_MWCAS => {
                    // A foreign operation owns the word: help it out of the
                    // way, then retry this entry.
                    let other = mwcas_ptr(witnessed);
                    // SAFETY: arena-stable descriptor.
                    help(unsafe { &*other }, other);
                }
                _ => {
                    if witnessed == e.old_raw {
                        break; // installed by this call
                    }
                    // The word holds a different plain value: the operation
                    // cannot succeed.
                    proposal = FAILED;
                    break 'install;
                }
            }
        }
    }

    let success = d.decide(proposal) == SUCCEEDED;

    // Phase 2: unroll — swing every word from the descriptor to its final
    // value. CAS failures mean someone else already unrolled that word.
    for e in d.entries() {
        let final_raw = if success { e.new_raw } else { e.old_raw };
        let _ = e.target().cas_raw(me, final_raw);
    }
    success
}

/// Restricted double-compare single-swap for entry `i` of `d`: install the
/// operation descriptor into the entry's word iff the word holds the
/// expected old value *and* `d.status == UNDECIDED`.
///
/// Returns the raw value that decided the attempt:
/// * `e.old_raw` — the conditional install ran (the word now holds `me`,
///   or was rolled back to `old` because the status was already decided);
/// * the operation's own descriptor (`me`) — already installed;
/// * any other raw plain value or foreign MWCAS descriptor — not installed.
fn rdcss(d: &MwcasDescriptor, d_ptr: *const MwcasDescriptor, i: usize) -> u64 {
    let e = &d.entries()[i];
    let rd = rdcss_raw(d_ptr, i);
    loop {
        match e.target().cas_raw(e.old_raw, rd) {
            Ok(_) => {
                complete_rdcss(d, d_ptr, i);
                return e.old_raw;
            }
            Err(cur) if tag(cur) == TAG_RDCSS => {
                // Some RDCSS (possibly ours, installed by a helper) is in
                // the word: complete it and retry.
                let (od, oi) = rdcss_parts(cur);
                // SAFETY: arena-stable descriptor.
                complete_rdcss(unsafe { &*od }, od, oi);
            }
            Err(cur) => return cur,
        }
    }
}

/// Second half of RDCSS: promote the sub-descriptor to the full operation
/// descriptor if the status is still undecided, otherwise roll back.
fn complete_rdcss(d: &MwcasDescriptor, d_ptr: *const MwcasDescriptor, i: usize) {
    let e = &d.entries()[i];
    let rd = rdcss_raw(d_ptr, i);
    let replacement = if d.status() == UNDECIDED { mwcas_raw(d_ptr) } else { e.old_raw };
    let _ = e.target().cas_raw(rd, replacement);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word_cas_success() {
        let arena = Arena::new();
        let w = MwcasWord::new(10);
        assert!(mwcas(&arena, &[CasPair { word: &w, old: 10, new: 11 }]));
        assert_eq!(read_plain(&w), 11);
    }

    #[test]
    fn single_word_cas_failure_leaves_value() {
        let arena = Arena::new();
        let w = MwcasWord::new(10);
        assert!(!mwcas(&arena, &[CasPair { word: &w, old: 9, new: 11 }]));
        assert_eq!(read_plain(&w), 10);
    }

    #[test]
    fn two_word_success_updates_both() {
        let arena = Arena::new();
        let a = MwcasWord::new(1);
        let b = MwcasWord::new(2);
        assert!(mwcas(
            &arena,
            &[CasPair { word: &a, old: 1, new: 100 }, CasPair { word: &b, old: 2, new: 200 }]
        ));
        assert_eq!(read_plain(&a), 100);
        assert_eq!(read_plain(&b), 200);
    }

    #[test]
    fn two_word_failure_rolls_back_installed_entries() {
        let arena = Arena::new();
        let a = MwcasWord::new(1);
        let b = MwcasWord::new(2);
        // Second expected value is wrong: the whole operation must fail and
        // `a` must be restored even though it was installable.
        assert!(!mwcas(
            &arena,
            &[CasPair { word: &a, old: 1, new: 100 }, CasPair { word: &b, old: 99, new: 200 }]
        ));
        assert_eq!(read_plain(&a), 1);
        assert_eq!(read_plain(&b), 2);
    }

    #[test]
    fn four_word_cas() {
        let arena = Arena::new();
        let words: Vec<MwcasWord> = (0..4).map(MwcasWord::new).collect();
        let pairs: Vec<CasPair> = words
            .iter()
            .enumerate()
            .map(|(i, w)| CasPair { word: w, old: i as u64, new: i as u64 + 10 })
            .collect();
        assert!(mwcas(&arena, &pairs));
        for (i, w) in words.iter().enumerate() {
            assert_eq!(read_plain(w), i as u64 + 10);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_words_rejected() {
        let arena = Arena::new();
        let w = MwcasWord::new(0);
        let _ = mwcas(
            &arena,
            &[CasPair { word: &w, old: 0, new: 1 }, CasPair { word: &w, old: 0, new: 2 }],
        );
    }

    #[test]
    #[should_panic(expected = "old == new")]
    fn noop_entry_rejected() {
        let arena = Arena::new();
        let w = MwcasWord::new(0);
        let _ = mwcas(&arena, &[CasPair { word: &w, old: 0, new: 0 }]);
    }

    /// Install a raw RDCSS sub-descriptor by hand and check that a read
    /// resolves the whole operation to completion.
    #[test]
    fn read_resolves_in_flight_rdcss() {
        let arena = Arena::new();
        let a = MwcasWord::new(5);
        let b = MwcasWord::new(6);
        let d = arena.alloc(&[
            (&a as *const _, encode(5), encode(50)),
            (&b as *const _, encode(6), encode(60)),
        ]);
        // Simulate a preempted owner: the RDCSS for entry 0 is in `a`, the
        // status is still UNDECIDED, entry 1 untouched.
        a.cas_raw(encode(5), rdcss_raw(d, 0)).unwrap();

        // A reader must finish the operation: promote the RDCSS, install
        // entry 1, decide SUCCEEDED, unroll.
        assert_eq!(read_plain(&a), 50);
        assert_eq!(read_plain(&b), 60);
        assert_eq!(unsafe { &*d }.status(), SUCCEEDED);
    }

    /// Same, but the operation is doomed (entry 1 mismatches): the reader
    /// must fail it and roll entry 0 back.
    #[test]
    fn read_resolves_doomed_operation_by_rollback() {
        let arena = Arena::new();
        let a = MwcasWord::new(5);
        let b = MwcasWord::new(7); // does not match the descriptor's 6
        let d = arena.alloc(&[
            (&a as *const _, encode(5), encode(50)),
            (&b as *const _, encode(6), encode(60)),
        ]);
        a.cas_raw(encode(5), rdcss_raw(d, 0)).unwrap();

        assert_eq!(read_plain(&a), 5, "entry 0 must be rolled back");
        assert_eq!(read_plain(&b), 7);
        assert_eq!(unsafe { &*d }.status(), FAILED);
    }

    /// A descriptor whose status is already decided must never re-install:
    /// the embedded RDCSS rolls back (the "stale helper" scenario).
    #[test]
    fn stale_rdcss_install_rolls_back_after_decision() {
        let arena = Arena::new();
        let a = MwcasWord::new(5);
        let b = MwcasWord::new(6);
        let d = arena.alloc(&[
            (&a as *const _, encode(5), encode(50)),
            (&b as *const _, encode(6), encode(60)),
        ]);
        // The operation completes normally...
        assert!(help_for_test(d));
        assert_eq!(read_plain(&a), 50);
        // ...then the value happens to recur (ABA), and a stale helper
        // re-installs the embedded RDCSS.
        a.store_plain(5);
        a.cas_raw(encode(5), rdcss_raw(d, 0)).unwrap();
        // Resolution must restore the old value, not the descriptor.
        assert_eq!(read_plain(&a), 5);
    }

    fn help_for_test(d: *const MwcasDescriptor) -> bool {
        help(unsafe { &*d }, d)
    }

    #[test]
    fn mwcas_on_already_decided_descriptor_is_idempotent() {
        let arena = Arena::new();
        let a = MwcasWord::new(1);
        let d = arena.alloc(&[(&a as *const _, encode(1), encode(2))]);
        assert!(help_for_test(d));
        assert!(help_for_test(d), "helping a completed op echoes its outcome");
        assert_eq!(read_plain(&a), 2);
    }
}
