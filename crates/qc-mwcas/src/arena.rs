//! Descriptor arena: allocate-once, free-at-drop.
//!
//! ## Why descriptors are never recycled
//!
//! Helping makes descriptor lifetime the classic hard problem of software
//! MWCAS: a helper that loaded a descriptor pointer from a word may run
//! arbitrarily late — long after the operation completed — and will then
//! dereference the descriptor and may even re-install its embedded RDCSS
//! into a word whose value happens to match again. Any scheme that recycles
//! descriptor memory must therefore prove no stale helper can observe a
//! *different* operation through an old pointer (torn reuse / ABA), which
//! requires reference counts or epoch hand-shakes on the hot path. Harris
//! et al. side-step this by assuming garbage collection.
//!
//! We side-step it differently: descriptors are small (≈ 256 B) and one
//! MWCAS is issued per *batch* operation of the sketch (every `2k` stream
//! elements, plus one per level propagation), so the total descriptor
//! footprint of a run is tiny — about 100 KB per 10 M stream elements at
//! the paper's parameters. The arena simply keeps every descriptor alive
//! until the owning data structure drops, making stale helpers trivially
//! memory-safe; the algorithm's status conditioning (RDCSS) makes them
//! logically harmless (a late helper's installs are always rolled back to
//! the then-current value). The trade-off is documented in DESIGN.md.
//!
//! Descriptors are handed out in chunks to keep the mutex off the common
//! path's cache miss profile; the per-op cost is one bump or one brief lock.

use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

use crate::descriptor::{Entry, MwcasDescriptor, MAX_WORDS, UNDECIDED};

/// Descriptors per chunk.
const CHUNK: usize = 64;

/// An allocation arena for MWCAS descriptors.
///
/// Owned by the data structure whose words the operations target; dropping
/// the arena frees every descriptor, so it must outlive all operations and
/// all potential helpers (in Quancurrent: the arena lives in the sketch's
/// shared state, and helpers are update/query handles that borrow it).
pub struct Arena {
    chunks: Mutex<ArenaState>,
}

struct ArenaState {
    chunks: Vec<Box<[MwcasDescriptor]>>,
    /// Slots used in the last chunk.
    used: usize,
    total: u64,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Self { chunks: Mutex::new(ArenaState { chunks: Vec::new(), used: CHUNK, total: 0 }) }
    }

    /// Allocate a fresh descriptor initialized with `entries` given as
    /// `(word address, raw expected, raw new)` triples.
    ///
    /// The returned pointer is valid until the arena drops.
    pub(crate) fn alloc(
        &self,
        entries: &[(*const crate::word::MwcasWord, u64, u64)],
    ) -> *const MwcasDescriptor {
        assert!(entries.len() <= MAX_WORDS, "too many MWCAS entries");
        let mut st = self.chunks.lock().unwrap();
        if st.used == CHUNK {
            let chunk: Vec<MwcasDescriptor> = (0..CHUNK)
                .map(|_| MwcasDescriptor {
                    status: AtomicU64::new(UNDECIDED),
                    len: 0,
                    entries: [Entry { word: std::ptr::null(), old_raw: 0, new_raw: 0 }; MAX_WORDS],
                })
                .collect();
            st.chunks.push(chunk.into_boxed_slice());
            st.used = 0;
        }
        let idx = st.used;
        st.used += 1;
        st.total += 1;
        let chunk = st.chunks.last_mut().expect("chunk just ensured");
        let d = &mut chunk[idx];
        d.status = AtomicU64::new(UNDECIDED);
        d.len = entries.len();
        for (i, (word, old_raw, new_raw)) in entries.iter().enumerate() {
            d.entries[i] = Entry { word: *word, old_raw: *old_raw, new_raw: *new_raw };
        }
        let ptr: *const MwcasDescriptor = d;
        debug_assert_eq!(ptr as u64 >> 56, 0, "descriptor above 2^56 — unsupported platform");
        ptr
    }

    /// Number of descriptors allocated so far (memory diagnostics).
    pub fn allocated(&self) -> u64 {
        self.chunks.lock().unwrap().total
    }

    /// Bytes currently held by the arena.
    pub fn footprint_bytes(&self) -> usize {
        let st = self.chunks.lock().unwrap();
        st.chunks.len() * CHUNK * std::mem::size_of::<MwcasDescriptor>()
    }
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("allocated", &self.allocated())
            .field("footprint_bytes", &self.footprint_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::MwcasWord;

    #[test]
    fn alloc_initializes_entries() {
        let arena = Arena::new();
        let w = MwcasWord::new(3);
        let d = arena.alloc(&[(&w as *const _, 12, 16)]);
        let d = unsafe { &*d };
        assert_eq!(d.len, 1);
        assert_eq!(d.entries()[0].old_raw, 12);
        assert_eq!(d.entries()[0].new_raw, 16);
        assert_eq!(d.status(), UNDECIDED);
    }

    #[test]
    fn descriptors_are_stable_across_chunk_growth() {
        let arena = Arena::new();
        let w = MwcasWord::new(0);
        let first = arena.alloc(&[(&w as *const _, 0, 4)]);
        let mut last = first;
        for _ in 0..500 {
            last = arena.alloc(&[(&w as *const _, 0, 4)]);
        }
        // The first descriptor must still be intact (chunks never move).
        let f = unsafe { &*first };
        assert_eq!(f.entries()[0].new_raw, 4);
        assert_ne!(first, last);
        assert_eq!(arena.allocated(), 501);
    }

    #[test]
    fn footprint_grows_in_chunks() {
        let arena = Arena::new();
        assert_eq!(arena.footprint_bytes(), 0);
        let w = MwcasWord::new(0);
        arena.alloc(&[(&w as *const _, 0, 4)]);
        let one_chunk = arena.footprint_bytes();
        assert!(one_chunk > 0);
        for _ in 0..63 {
            arena.alloc(&[(&w as *const _, 0, 4)]);
        }
        assert_eq!(arena.footprint_bytes(), one_chunk);
        arena.alloc(&[(&w as *const _, 0, 4)]);
        assert_eq!(arena.footprint_bytes(), 2 * one_chunk);
    }
}
