//! Tagged 64-bit words: the memory cells MWCAS operates on.
//!
//! A [`MwcasWord`] holds either a **plain logical value** (up to 62 bits) or
//! a tagged descriptor pointer while an operation is in flight:
//!
//! | low 2 bits | meaning                                         |
//! |-----------|--------------------------------------------------|
//! | `00`      | plain value, logical value is `raw >> 2`         |
//! | `01`      | MWCAS descriptor pointer (operation installed)   |
//! | `10`      | RDCSS sub-descriptor (entry install in progress) |
//!
//! RDCSS sub-descriptors are *embedded* in their parent MWCAS descriptor,
//! so the RDCSS encoding also carries the entry index in bits 56..62 (see
//! [`crate::descriptor`]). Plain values up to `2^62 - 1` therefore cover
//! both tritmaps (≤ 3³¹ < 2⁵⁰) and heap addresses (< 2⁴⁸ on every platform
//! this crate targets).

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// Largest storable logical value.
pub const MAX_LOGICAL: u64 = (1 << 62) - 1;

pub(crate) const TAG_MASK: u64 = 0b11;
pub(crate) const TAG_VALUE: u64 = 0b00;
pub(crate) const TAG_MWCAS: u64 = 0b01;
pub(crate) const TAG_RDCSS: u64 = 0b10;

/// Encode a logical value into its raw word representation.
#[inline]
pub(crate) fn encode(logical: u64) -> u64 {
    debug_assert!(logical <= MAX_LOGICAL, "logical value exceeds 62 bits");
    logical << 2
}

/// Decode a raw word known to carry a plain value.
#[inline]
pub(crate) fn decode(raw: u64) -> u64 {
    debug_assert_eq!(raw & TAG_MASK, TAG_VALUE, "decoding a descriptor-tagged word");
    raw >> 2
}

/// Tag of a raw word.
#[inline]
pub(crate) fn tag(raw: u64) -> u64 {
    raw & TAG_MASK
}

/// A 62-bit shared cell supporting multi-word CAS.
///
/// All accesses are sequentially consistent, matching the paper's C++ model
/// (§3: "atomic operations to guarantee sequential consistency").
///
/// Direct mutation is limited to [`MwcasWord::store_plain`], whose contract
/// requires structural exclusivity; everything else goes through
/// [`crate::mwcas`] / [`crate::read`].
pub struct MwcasWord {
    raw: AtomicU64,
}

impl MwcasWord {
    /// A word holding `logical`.
    pub fn new(logical: u64) -> Self {
        assert!(logical <= MAX_LOGICAL, "logical value exceeds 62 bits");
        Self { raw: AtomicU64::new(encode(logical)) }
    }

    /// Load the raw (tagged) representation.
    ///
    /// The result may be a descriptor encoding and **must not** be
    /// interpreted as a logical value; it exists so callers can wrap the
    /// load in a reclamation-protected read and feed it to [`crate::read`]:
    /// `read(&word, |w| guard.protect(|| w.load_raw()))`.
    #[inline]
    pub fn load_raw(&self) -> u64 {
        self.raw.load(SeqCst)
    }

    /// CAS on the raw representation; returns the witnessed value on failure.
    #[inline]
    pub(crate) fn cas_raw(&self, old: u64, new: u64) -> Result<u64, u64> {
        self.raw.compare_exchange(old, new, SeqCst, SeqCst)
    }

    /// Load the logical value **without** resolving in-flight descriptors.
    ///
    /// Returns `None` if a descriptor is currently installed. Use
    /// [`crate::read`] when the caller must always obtain a value.
    pub fn try_load_plain(&self) -> Option<u64> {
        let raw = self.load_raw();
        (tag(raw) == TAG_VALUE).then(|| decode(raw))
    }

    /// Overwrite the word with a plain value.
    ///
    /// # Contract (checked only by reasoning, not at runtime)
    ///
    /// The caller must hold *structural exclusivity* over this word: no
    /// concurrent MWCAS may currently have a descriptor installed here, and
    /// none may become installable until this store is visible. Quancurrent
    /// uses this for Algorithm 4's `levels[l] ← ⊥` clears, where the tritmap
    /// protocol guarantees every concurrent DCAS expecting this word sees a
    /// non-matching old value until the clear lands.
    pub fn store_plain(&self, logical: u64) {
        debug_assert!(logical <= MAX_LOGICAL);
        debug_assert!(
            tag(self.raw.load(SeqCst)) == TAG_VALUE,
            "store_plain over an installed descriptor — exclusivity contract violated"
        );
        self.raw.store(encode(logical), SeqCst);
    }
}

impl std::fmt::Debug for MwcasWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let raw = self.load_raw();
        match tag(raw) {
            TAG_VALUE => write!(f, "MwcasWord({})", decode(raw)),
            TAG_MWCAS => write!(f, "MwcasWord(<mwcas descriptor {:#x}>)", raw & !TAG_MASK),
            _ => write!(f, "MwcasWord(<rdcss descriptor {:#x}>)", raw & !TAG_MASK),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for v in [0u64, 1, 42, MAX_LOGICAL] {
            assert_eq!(decode(encode(v)), v);
            assert_eq!(tag(encode(v)), TAG_VALUE);
        }
    }

    #[test]
    fn new_word_holds_value() {
        let w = MwcasWord::new(77);
        assert_eq!(w.try_load_plain(), Some(77));
    }

    #[test]
    #[should_panic(expected = "62 bits")]
    fn oversized_value_rejected() {
        let _ = MwcasWord::new(MAX_LOGICAL + 1);
    }

    #[test]
    fn store_plain_overwrites() {
        let w = MwcasWord::new(1);
        w.store_plain(2);
        assert_eq!(w.try_load_plain(), Some(2));
    }

    #[test]
    fn cas_raw_success_and_failure() {
        let w = MwcasWord::new(5);
        assert!(w.cas_raw(encode(5), encode(6)).is_ok());
        assert_eq!(w.cas_raw(encode(5), encode(7)), Err(encode(6)));
        assert_eq!(w.try_load_plain(), Some(6));
    }

    #[test]
    fn debug_formats_plain_value() {
        let w = MwcasWord::new(9);
        assert_eq!(format!("{w:?}"), "MwcasWord(9)");
    }
}
