//! Software multi-word compare-and-swap — the DCAS substrate of the
//! Quancurrent reproduction.
//!
//! The Quancurrent paper (§3) coordinates its shared levels and tritmap
//! with a *double-compare-double-swap* (DCAS), citing the classic result
//! that DCAS "can be efficiently implemented using single-word CAS"
//! (Harris, Fraser & Pratt, DISC'02; Guerraoui et al., DISC'20). This crate
//! is that implementation, generalized to up to [`MAX_WORDS`] words and
//! restricted to two in the sketch:
//!
//! * [`MwcasWord`] — a 62-bit shared cell (2 tag bits distinguish plain
//!   values from in-flight descriptors).
//! * [`mwcas`] — atomically replace the values of N words, all-or-nothing.
//! * [`read`] / [`read_plain`] — read one word, helping any in-flight
//!   operation first (the paper's `DCAS_READ`).
//! * [`Arena`] — descriptor storage; see its docs for the reclamation
//!   story (descriptors are arena-stable, which is what makes helping safe
//!   without GC).
//!
//! # Example
//!
//! ```
//! use qc_mwcas::{mwcas, read_plain, Arena, CasPair, MwcasWord};
//!
//! let arena = Arena::new();
//! let level = MwcasWord::new(0);   // e.g. a level pointer, ⊥ = 0
//! let tritmap = MwcasWord::new(7); // e.g. a packed tritmap
//!
//! // The paper's Algorithm 3: DCAS(levels[0]: ⊥ → batch, tritmap: t → t+2).
//! let ok = mwcas(
//!     &arena,
//!     &[
//!         CasPair { word: &level, old: 0, new: 0xdead00 },
//!         CasPair { word: &tritmap, old: 7, new: 9 },
//!     ],
//! );
//! assert!(ok);
//! assert_eq!(read_plain(&level), 0xdead00);
//! assert_eq!(read_plain(&tritmap), 9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod arena;
mod descriptor;
mod ops;
mod word;

pub use arena::Arena;
pub use descriptor::MAX_WORDS;
pub use ops::{mwcas, read, read_plain, CasPair};
pub use word::{MwcasWord, MAX_LOGICAL};
