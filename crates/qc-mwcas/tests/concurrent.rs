//! Concurrency tests: the invariants that make MWCAS usable as a DCAS.

use qc_mwcas::{mwcas, read_plain, Arena, CasPair, MwcasWord};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Barrier;

/// N threads atomically move (a, b) from (v, 2v) to (v+1, 2v+2). Any torn
/// update (one word applied without the other) breaks the b == 2a coupling
/// immediately and permanently.
#[test]
fn coupled_counters_never_tear() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: u64 = 5_000;

    let arena = Arena::new();
    let a = MwcasWord::new(0);
    let b = MwcasWord::new(0);
    let successes = AtomicU64::new(0);
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                barrier.wait();
                for _ in 0..OPS_PER_THREAD {
                    loop {
                        let va = read_plain(&a);
                        let vb = read_plain(&b);
                        if vb != 2 * va {
                            // A concurrent op moved between the two reads;
                            // retry from a coherent pair.
                            continue;
                        }
                        if mwcas(
                            &arena,
                            &[
                                CasPair { word: &a, old: va, new: va + 1 },
                                CasPair { word: &b, old: vb, new: vb + 2 },
                            ],
                        ) {
                            successes.fetch_add(1, SeqCst);
                            break;
                        }
                    }
                }
            });
        }
    });

    let total = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(successes.load(SeqCst), total);
    assert_eq!(read_plain(&a), total);
    assert_eq!(read_plain(&b), 2 * total);
}

/// Mimics the sketch's structure: a monotone "tritmap" word plus a level
/// word swung between 0 (⊥) and distinct batch ids. Exactly one thread may
/// win the ⊥ → id transition per round.
#[test]
fn level_slot_admits_one_batch_per_round() {
    const THREADS: usize = 8;
    const ROUNDS: u64 = 2_000;

    let arena = Arena::new();
    let level = MwcasWord::new(0);
    let tritmap = MwcasWord::new(0);
    let wins = AtomicU64::new(0);
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let arena = &arena;
            let level = &level;
            let tritmap = &tritmap;
            let wins = &wins;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                loop {
                    let tm = read_plain(tritmap);
                    if tm >= ROUNDS {
                        return;
                    }
                    // Unique per-thread, per-round batch id (never 0).
                    let id = (tm << 8) | (t + 1);
                    if mwcas(
                        arena,
                        &[
                            CasPair { word: level, old: 0, new: id },
                            CasPair { word: tritmap, old: tm, new: tm + 1 },
                        ],
                    ) {
                        wins.fetch_add(1, SeqCst);
                        // "Propagate": only the winner may clear the level.
                        assert_eq!(read_plain(level), id, "winner's batch was clobbered");
                        level.store_plain(0);
                    }
                }
            });
        }
    });

    assert_eq!(wins.load(SeqCst), ROUNDS, "exactly one winner per tritmap round");
    assert_eq!(read_plain(&tritmap), ROUNDS);
    assert_eq!(read_plain(&level), 0);
}

/// Readers running concurrently with two-word updates must never observe a
/// half-applied pair.
#[test]
fn concurrent_readers_see_consistent_pairs() {
    const WRITER_OPS: u64 = 20_000;
    const READERS: usize = 4;

    let arena = Arena::new();
    let a = MwcasWord::new(0);
    let b = MwcasWord::new(1_000_000);
    let stop = AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..READERS {
            s.spawn(|| {
                while stop.load(SeqCst) == 0 {
                    // Invariant: a + b == 1_000_000 at every linearization.
                    let va = read_plain(&a);
                    let vb = read_plain(&b);
                    let sum = va + vb;
                    // Between the two reads an op may land, shifting one
                    // unit from b to a; allow for any number of full ops
                    // but never a torn one: (a + b) can only be observed as
                    // 1_000_000 or 1_000_000 ± d where d complete ops moved
                    // d units — each op conserves the sum, so inconsistency
                    // can only come from tearing.
                    assert!(
                        (1_000_000 - WRITER_OPS..=1_000_000 + WRITER_OPS).contains(&sum),
                        "wildly torn read: a={va} b={vb}"
                    );
                }
            });
        }

        s.spawn(|| {
            for _ in 0..WRITER_OPS {
                loop {
                    let va = read_plain(&a);
                    let vb = read_plain(&b);
                    if va + vb != 1_000_000 {
                        continue;
                    }
                    if mwcas(
                        &arena,
                        &[
                            CasPair { word: &a, old: va, new: va + 1 },
                            CasPair { word: &b, old: vb, new: vb - 1 },
                        ],
                    ) {
                        break;
                    }
                }
            }
            stop.store(1, SeqCst);
        });
    });

    assert_eq!(read_plain(&a) + read_plain(&b), 1_000_000, "sum must be conserved");
    assert_eq!(read_plain(&a), WRITER_OPS);
}

/// Three-word transactions spanning a shared word force cross-operation
/// helping; totals must still be exact.
#[test]
fn overlapping_word_sets_help_each_other() {
    const THREADS: usize = 6;
    const OPS: u64 = 2_000;

    let arena = Arena::new();
    let shared = MwcasWord::new(0);
    let privates: Vec<MwcasWord> = (0..THREADS as u64).map(|_| MwcasWord::new(0)).collect();

    std::thread::scope(|s| {
        for (t, private) in privates.iter().enumerate() {
            let arena = &arena;
            let shared = &shared;
            s.spawn(move || {
                let _ = t;
                for _ in 0..OPS {
                    loop {
                        let sv = read_plain(shared);
                        let pv = read_plain(private);
                        if mwcas(
                            arena,
                            &[
                                CasPair { word: shared, old: sv, new: sv + 1 },
                                CasPair { word: private, old: pv, new: pv + 1 },
                            ],
                        ) {
                            break;
                        }
                    }
                }
            });
        }
    });

    assert_eq!(read_plain(&shared), THREADS as u64 * OPS);
    for p in &privates {
        assert_eq!(read_plain(p), OPS);
    }
}
