//! Property-based check of MWCAS against a sequential model.
//!
//! Sequentially (no concurrency), `mwcas` must behave exactly like the
//! obvious specification: succeed and apply all writes iff every expected
//! value matches, else change nothing.

use proptest::prelude::*;
use qc_mwcas::{mwcas, read_plain, Arena, CasPair, MwcasWord};

#[derive(Clone, Debug)]
struct Op {
    /// (word index, expected delta from true value, new value)
    targets: Vec<(usize, u64, u64)>,
}

fn op_strategy(num_words: usize) -> impl Strategy<Value = Op> {
    // Choose 1..=3 distinct word indices with an expected value that is
    // either correct (delta 0) or off by a little, plus a fresh new value.
    prop::collection::btree_set(0..num_words, 1..=3.min(num_words))
        .prop_flat_map(move |idxs| {
            let idxs: Vec<usize> = idxs.into_iter().collect();
            let n = idxs.len();
            (Just(idxs), prop::collection::vec((0u64..3, 1u64..1_000_000), n))
        })
        .prop_map(|(idxs, rest)| Op {
            targets: idxs.into_iter().zip(rest).map(|(i, (delta, new))| (i, delta, new)).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sequential_mwcas_matches_model(
        ops in prop::collection::vec(op_strategy(5), 1..40)
    ) {
        let arena = Arena::new();
        let words: Vec<MwcasWord> = (0..5).map(|i| MwcasWord::new(i as u64 + 1)).collect();
        let mut model: Vec<u64> = (0..5).map(|i| i as u64 + 1).collect();

        for op in &ops {
            let pairs: Vec<CasPair> = op
                .targets
                .iter()
                .map(|&(i, delta, new)| CasPair {
                    word: &words[i],
                    old: model[i] + delta, // delta 0 = correct expectation
                    new,
                })
                .collect();

            // Skip ops the API rejects (old == new after randomization).
            if pairs.iter().any(|p| p.old == p.new) {
                continue;
            }

            let should_succeed = op.targets.iter().all(|&(_, delta, _)| delta == 0);
            let did = mwcas(&arena, &pairs);
            prop_assert_eq!(did, should_succeed, "op: {:?}", op);

            if did {
                for &(i, _, new) in &op.targets {
                    model[i] = new;
                }
            }
            for (i, w) in words.iter().enumerate() {
                prop_assert_eq!(read_plain(w), model[i], "word {} diverged", i);
            }
        }
    }

    #[test]
    fn logical_values_roundtrip_through_words(v in 0u64..(1 << 62)) {
        let w = MwcasWord::new(v);
        prop_assert_eq!(read_plain(&w), v);
        prop_assert_eq!(w.try_load_plain(), Some(v));
    }
}
