//! Shared infrastructure for the figure-regeneration binaries.
//!
//! Every figure of the paper's evaluation (§5) has a binary in
//! `src/bin/` that prints the same series the paper plots and writes a
//! CSV next to it:
//!
//! | binary  | paper result |
//! |---------|--------------|
//! | `fig2`  | estimated quantiles vs exact CDF (normal, k=1024) |
//! | `fig6a` | update-only throughput vs threads, vs sequential |
//! | `fig6b` | query-only throughput vs threads |
//! | `fig6c` | mixed update/query throughput, ρ ∈ {0, 1.05} |
//! | `fig7a` | update throughput vs k |
//! | `fig7b` | update throughput vs b |
//! | `fig7c` | query throughput & miss rate vs ρ |
//! | `fig8`  | standard error of estimation vs k (quiescent) |
//! | `fig9`  | quantiles vs exact CDF, uniform & normal, k ∈ {32, 256} |
//! | `fig10` | Quancurrent vs FCDS at equal relaxation (`--headline` for §5.5) |
//! | `holes` | §4.1 empirical holes-per-batch bound |
//!
//! Run e.g. `cargo run --release -p qc-bench --bin fig6a -- --quick`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod cli;
pub mod runners;

pub use cli::Options;
pub use runners::QcSetup;

/// Standard banner each binary prints, tying output to the paper.
pub fn banner(figure: &str, what: &str, opts: &Options) {
    println!("=== Quancurrent reproduction: {figure} — {what} ===");
    if opts.quick {
        println!("(quick mode: reduced stream sizes and run counts)");
    }
    println!();
}
