//! Minimal command-line options shared by every figure binary.
//!
//! No external parser: the only dependencies allowed in this workspace are
//! the sanctioned offline crates, and the needs here are two flags and a
//! handful of `--key=value` overrides.

/// Options common to all figure binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Shrink stream sizes / run counts for smoke-testing (`--quick`).
    pub quick: bool,
    /// Override the per-point run count (`--runs=N`).
    pub runs: Option<usize>,
    /// Override the stream size (`--n=N`).
    pub n: Option<u64>,
    /// Override the thread sweep (`--threads=1,2,4`).
    pub threads: Option<Vec<usize>>,
    /// Output directory for CSV series (`--out=DIR`, default `results`).
    pub out_dir: std::path::PathBuf,
    /// Print the §5.5 headline comparison (fig10 only, `--headline`).
    pub headline: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            quick: false,
            runs: None,
            n: None,
            threads: None,
            out_dir: "results".into(),
            headline: false,
        }
    }
}

impl Options {
    /// Parse from `std::env::args`, exiting with usage on errors.
    pub fn from_env() -> Self {
        let mut opts = Self::default();
        for arg in std::env::args().skip(1) {
            if let Err(msg) = opts.apply(&arg) {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: <fig> [--quick] [--runs=N] [--n=N] [--threads=a,b,c] \
                     [--out=DIR] [--headline]"
                );
                std::process::exit(2);
            }
        }
        opts
    }

    /// Apply a single argument.
    pub fn apply(&mut self, arg: &str) -> Result<(), String> {
        if arg == "--quick" {
            self.quick = true;
        } else if arg == "--headline" {
            self.headline = true;
        } else if let Some(v) = arg.strip_prefix("--runs=") {
            self.runs = Some(v.parse().map_err(|_| format!("bad --runs value {v:?}"))?);
        } else if let Some(v) = arg.strip_prefix("--n=") {
            self.n = Some(parse_human_u64(v)?);
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            let list: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
            self.threads = Some(list.map_err(|_| format!("bad --threads list {v:?}"))?);
        } else if let Some(v) = arg.strip_prefix("--out=") {
            self.out_dir = v.into();
        } else {
            return Err(format!("unknown argument {arg:?}"));
        }
        Ok(())
    }

    /// Stream size: explicit override, else `full` (or `full/10` in quick
    /// mode, floored at 100k).
    pub fn stream_size(&self, full: u64) -> u64 {
        self.n.unwrap_or(if self.quick { (full / 10).max(100_000) } else { full })
    }

    /// Run count: explicit override, else `full` (or 3 in quick mode).
    pub fn run_count(&self, full: usize) -> usize {
        self.runs.unwrap_or(if self.quick { 3.min(full) } else { full })
    }

    /// Thread sweep: explicit override, else the given default.
    pub fn thread_sweep(&self, default: &[usize]) -> Vec<usize> {
        self.threads.clone().unwrap_or_else(|| default.to_vec())
    }

    /// Path for a figure's CSV output.
    pub fn csv_path(&self, name: &str) -> std::path::PathBuf {
        self.out_dir.join(format!("{name}.csv"))
    }
}

/// Accept `10000000`, `10M`, `500k`, `1G`.
pub fn parse_human_u64(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1_000),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1_000_000),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    digits.parse::<u64>().map(|v| v * mult).map_err(|_| format!("bad numeric value {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = Options::default();
        assert!(!o.quick);
        assert_eq!(o.stream_size(10_000_000), 10_000_000);
        assert_eq!(o.run_count(15), 15);
    }

    #[test]
    fn quick_shrinks() {
        let mut o = Options::default();
        o.apply("--quick").unwrap();
        assert_eq!(o.stream_size(10_000_000), 1_000_000);
        assert_eq!(o.run_count(15), 3);
    }

    #[test]
    fn overrides() {
        let mut o = Options::default();
        o.apply("--runs=7").unwrap();
        o.apply("--n=2M").unwrap();
        o.apply("--threads=1,2,4").unwrap();
        o.apply("--out=/tmp/x").unwrap();
        assert_eq!(o.run_count(15), 7);
        assert_eq!(o.stream_size(10_000_000), 2_000_000);
        assert_eq!(o.thread_sweep(&[8]), vec![1, 2, 4]);
        assert_eq!(o.csv_path("fig1"), std::path::PathBuf::from("/tmp/x/fig1.csv"));
    }

    #[test]
    fn human_numbers() {
        assert_eq!(parse_human_u64("10M").unwrap(), 10_000_000);
        assert_eq!(parse_human_u64("500k").unwrap(), 500_000);
        assert_eq!(parse_human_u64("1G").unwrap(), 1_000_000_000);
        assert_eq!(parse_human_u64("123").unwrap(), 123);
        assert!(parse_human_u64("x").is_err());
    }

    #[test]
    fn unknown_arg_is_error() {
        let mut o = Options::default();
        assert!(o.apply("--bogus").is_err());
    }
}
