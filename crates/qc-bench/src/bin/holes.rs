//! §4.1 validation: expected holes per batch.
//!
//! The paper proves E\[H\] ≤ 2.8 per 2k-batch for every local buffer size b
//! (under a uniform stochastic scheduler). This binary measures holes
//! empirically via the Gather&Sort round-stamp instrumentation, sweeping b
//! and the thread count, and also prints the analytical bound components
//! (E\[H₁\] ≤ 1.4, halving per region).

use qc_bench::{banner, Options, QcSetup};
use qc_workloads::stats::RunStats;
use qc_workloads::streams::{Distribution, StreamGen};
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;
use std::sync::Barrier;

/// Analytical upper bound on E\[H_j\] from §4.1 / Appendix A.4:
/// E\[H_j\] ≤ b² · C((j+2)b − 2, b − 1) · (1/2)^((j+2)b − 1).
fn analytic_region_bound(j: u64, b: u64) -> f64 {
    // Compute in log2 space: the binomial can overflow u64 fast.
    let n = (j + 2) * b - 2;
    let r = b - 1;
    let mut log2_c = 0.0f64;
    for i in 0..r {
        log2_c += ((n - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    let log2 = 2.0 * (b as f64).log2() + log2_c - ((j + 2) * b - 1) as f64;
    2f64.powf(log2)
}

fn measured_holes_per_batch(b: usize, threads: usize, n: u64, seed: u64) -> (f64, Vec<f64>) {
    let setup = QcSetup { k: 256, b, rho: 1.0, topology: Topology::single_node(threads), seed };
    let sketch = setup.build(threads);
    let barrier = Barrier::new(threads);
    let per_thread = n / threads as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let mut updater = sketch.updater();
            let barrier = &barrier;
            s.spawn(move || {
                let mut gen = StreamGen::new(Distribution::Uniform, seed + t as u64);
                barrier.wait();
                for _ in 0..per_thread {
                    updater.update(gen.next_f64());
                }
            });
        }
    });
    let batches = sketch.stats().batches.max(1) as f64;
    let per_region: Vec<f64> =
        sketch.hole_region_histogram().into_iter().map(|h| h as f64 / batches).collect();
    (sketch.stats().holes_per_batch(), per_region)
}

fn main() {
    let opts = Options::from_env();
    banner("§4.1 holes", "expected holes per 2k batch (bound: E[H] ≤ 2.8)", &opts);

    let n = opts.stream_size(2_000_000);
    let runs = opts.run_count(15);
    let bs = [1usize, 2, 4, 8, 16, 32, 64];
    let threads = opts.thread_sweep(&[2, 4, 8, 16, 32]);

    println!("analytical region bounds (b = 16): ");
    let mut total = 0.0;
    for j in 1..=8u64 {
        let bound = analytic_region_bound(j, 16);
        total += bound;
        if j <= 3 {
            println!("  E[H_{j}] ≤ {bound:.4}");
        }
    }
    println!("  Σ_j E[H_j] (first 8 regions) ≈ {total:.4}  — paper: E[H] ≤ 2.8\n");

    let mut table = Table::new([
        "b",
        "threads",
        "holes_per_batch_mean",
        "holes_per_batch_max",
        "region_profile_first4",
    ]);
    for &b in &bs {
        for &t in &threads {
            let mut region_acc: Vec<f64> = Vec::new();
            let stats = RunStats::measure(runs, |r| {
                let (mean, regions) = measured_holes_per_batch(b, t, n, 1000 + r as u64 * 17);
                if region_acc.len() < regions.len() {
                    region_acc.resize(regions.len(), 0.0);
                }
                for (acc, v) in region_acc.iter_mut().zip(&regions) {
                    *acc += v / runs as f64;
                }
                mean
            });
            // §4.1 predicts E[H_j] decays geometrically in the region
            // index; report the leading profile (last regions are written
            // closest to the owner's fill and race hardest — the paper
            // indexes regions by *write order*, so region 1 here is the
            // first b slots).
            let profile: Vec<String> =
                region_acc.iter().take(4).map(|v| format!("{v:.4}")).collect();
            table.row([
                b.to_string(),
                t.to_string(),
                format!("{:.4}", stats.mean),
                format!("{:.4}", stats.max),
                profile.join("/"),
            ]);
            println!(
                "b={b:>2} threads={t:>2}: {:.4} holes/batch (max {:.4}; regions[0..4]={})",
                stats.mean,
                stats.max,
                region_acc.iter().take(4).map(|v| format!("{v:.4}")).collect::<Vec<_>>().join("/")
            );
        }
    }

    println!();
    table.print();
    let csv = opts.csv_path("holes");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
    println!("\npaper bound: E[H] ≤ 2.8 for all b (uniform stochastic scheduler);");
    println!("preemptive OS scheduling can exceed the model's bound transiently,");
    println!("but means should sit well below it.");
}
