//! Ablation: the three ways to share a quantiles sketch.
//!
//! Global lock (naive) vs FCDS (single propagator) vs Quancurrent
//! (collaborative propagation), update-only, same stream, same k. The
//! lock-based composition is the paper's unstated strawman: it serializes
//! every update and runs 2k-sorts inside the critical section.

use qc_bench::baselines::locked_update_throughput;
use qc_bench::runners::{fcds_update_throughput, qc_update_throughput, QcSetup};
use qc_bench::{banner, Options};
use qc_workloads::harness::format_ops;
use qc_workloads::stats::RunStats;
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;

fn main() {
    let opts = Options::from_env();
    banner("Ablation", "global lock vs FCDS vs Quancurrent (update-only, k=1024)", &opts);

    let n = opts.stream_size(4_000_000);
    let runs = opts.run_count(10);
    let threads = opts.thread_sweep(&[1, 2, 4, 8, 16, 32]);
    let k = 1024;

    let mut table = Table::new(["sketch", "threads", "ops_per_sec", "stderr"]);
    for &t in &threads {
        let lock = RunStats::measure(runs, |r| {
            locked_update_throughput(k, t, n, Distribution::Uniform, r as u64).ops_per_sec()
        });
        table.row([
            "global_lock".to_string(),
            t.to_string(),
            format!("{:.0}", lock.mean),
            format!("{:.0}", lock.std_err),
        ]);

        let fcds = RunStats::measure(runs, |r| {
            fcds_update_throughput(k, 1024, t, n, Distribution::Uniform, r as u64).ops_per_sec()
        });
        table.row([
            "fcds_B1024".to_string(),
            t.to_string(),
            format!("{:.0}", fcds.mean),
            format!("{:.0}", fcds.std_err),
        ]);

        let setup = QcSetup { k, b: 16, rho: 1.0, topology: Topology::paper_testbed(), seed: 3 };
        let qc = RunStats::measure(runs, |r| {
            qc_update_throughput(&setup, t, n, Distribution::Uniform, r as u64).ops_per_sec()
        });
        table.row([
            "quancurrent_b16".to_string(),
            t.to_string(),
            format!("{:.0}", qc.mean),
            format!("{:.0}", qc.std_err),
        ]);

        println!(
            "threads={t:>2}: lock {} | fcds {} | quancurrent {}",
            format_ops(lock.mean),
            format_ops(fcds.mean),
            format_ops(qc.mean)
        );
    }

    println!();
    table.print();
    let csv = opts.csv_path("ablation_lock");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
    println!("\nexpected shape on parallel hardware: the lock flat-lines (or worse,");
    println!("inverts from contention) while both concurrent designs scale; on");
    println!("few-core hosts the lock looks deceptively fine — which is exactly");
    println!("why the paper's evaluation needed a 32-thread machine.");
}
