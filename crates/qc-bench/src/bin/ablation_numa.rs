//! Ablation: how much does Gather&Sort sharding (one unit per NUMA node)
//! matter?
//!
//! The paper attributes part of Quancurrent's scalability to NUMA-local
//! Gather&Sort units (§3.1, §5.1). This ablation fixes the thread count
//! and sweeps the number of units S ∈ {1, 2, 4, 8}: with S = 1 all
//! threads contend on a single pair of shared buffers (and the relaxation
//! r = 4kS + (N−S)b shrinks); more units trade freshness for reduced
//! contention.

use qc_bench::runners::{qc_update_throughput, QcSetup};
use qc_bench::{banner, Options};
use qc_workloads::harness::format_ops;
use qc_workloads::stats::RunStats;
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;

fn main() {
    let opts = Options::from_env();
    banner("Ablation", "Gather&Sort sharding: update throughput vs #units S", &opts);

    let n = opts.stream_size(4_000_000);
    let runs = opts.run_count(10);
    let threads = opts.thread_sweep(&[8, 16, 32]);
    let units = [1usize, 2, 4, 8];

    let mut table = Table::new(["threads", "gs_units", "relaxation", "ops_per_sec", "stderr"]);
    for &t in &threads {
        for &s in &units {
            if s > t {
                continue;
            }
            let setup = QcSetup {
                k: 1024,
                b: 16,
                rho: 1.0,
                topology: Topology { nodes: s, cores_per_node: t.div_ceil(s) },
                seed: 21,
            };
            let stats = RunStats::measure(runs, |r| {
                qc_update_throughput(&setup, t, n, Distribution::Uniform, r as u64).ops_per_sec()
            });
            let relax = setup.relaxation(t);
            table.row([
                t.to_string(),
                s.to_string(),
                relax.to_string(),
                format!("{:.0}", stats.mean),
                format!("{:.0}", stats.std_err),
            ]);
            println!("threads={t:>2} S={s}: {} (r = {relax})", format_ops(stats.mean));
        }
    }

    println!();
    table.print();
    let csv = opts.csv_path("ablation_numa");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
    println!("\ninterpretation: on real multi-socket hardware S>1 relieves buffer");
    println!("contention at the cost of relaxation; on few-core hosts the effect");
    println!("is dominated by scheduling.");
}
