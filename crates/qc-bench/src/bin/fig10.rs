//! Figure 10 (and the §5.5 headline numbers): Quancurrent vs. FCDS at
//! equal relaxation.
//!
//! Paper setting: k = 4096, threads ∈ {8, 16, 24, 32}; both sketches are
//! swept over their buffer parameter and plotted as throughput (log)
//! versus relaxation r (log):
//!
//! * Quancurrent: r = 4kS + (N−S)·b, sweeping the local buffer b;
//! * FCDS: r = 2NB, sweeping the worker buffer B.
//!
//! Paper shape: at matched relaxation Quancurrent dominates, and the gap
//! widens with thread count — FCDS needs an order of magnitude more
//! relaxation (stale answers) to keep its single propagator from becoming
//! the bottleneck. `--headline` prints the §5.5 comparison points.

use qc_bench::runners::{fcds_update_throughput, qc_update_throughput, QcSetup};
use qc_bench::{banner, Options};
use qc_workloads::harness::format_ops;
use qc_workloads::stats::RunStats;
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;

fn main() {
    let opts = Options::from_env();
    banner("Figure 10", "Quancurrent vs FCDS: throughput vs relaxation (k=4096)", &opts);

    let n = opts.stream_size(10_000_000);
    let runs = opts.run_count(15);
    let threads = opts.thread_sweep(&[8, 16, 24, 32]);
    let k = 4096usize;
    let topology = Topology::paper_testbed();

    let qc_bs = [16usize, 64, 256, 1024, 2048, 4096];
    let fcds_bs = [256usize, 512, 1024, 1920, 4096, 8192, 16384];

    let mut table =
        Table::new(["sketch", "threads", "buffer", "relaxation", "ops_per_sec", "stderr"]);

    for &t in &threads {
        for &b in &qc_bs {
            if !(2 * k).is_multiple_of(b) {
                continue;
            }
            let setup = QcSetup { k, b, rho: 1.0, topology, seed: 10 };
            let r = setup.relaxation(t);
            let stats = RunStats::measure(runs, |run| {
                qc_update_throughput(&setup, t, n, Distribution::Uniform, run as u64).ops_per_sec()
            });
            table.row([
                "quancurrent".to_string(),
                t.to_string(),
                b.to_string(),
                r.to_string(),
                format!("{:.0}", stats.mean),
                format!("{:.0}", stats.std_err),
            ]);
            println!("qc   threads={t:>2} b={b:>5}: r={r:>7} {}", format_ops(stats.mean));
        }
        for &bb in &fcds_bs {
            let r = qc_common::error::fcds_relaxation(bb, t);
            let stats = RunStats::measure(runs, |run| {
                fcds_update_throughput(k, bb, t, n, Distribution::Uniform, run as u64).ops_per_sec()
            });
            table.row([
                "fcds".to_string(),
                t.to_string(),
                bb.to_string(),
                r.to_string(),
                format!("{:.0}", stats.mean),
                format!("{:.0}", stats.std_err),
            ]);
            println!("fcds threads={t:>2} B={bb:>5}: r={r:>7} {}", format_ops(stats.mean));
        }
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig10");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());

    if opts.headline {
        headline(n, runs, k, topology);
    }
}

/// The §5.5 comparison: equal-relaxation settings the paper quotes.
fn headline(n: u64, runs: usize, k: usize, topology: Topology) {
    println!("\n=== §5.5 headline comparison ===");
    // 8 threads: QC with b = 2048 → r ≈ 30K; FCDS with B = 1920 → 30720.
    let qc8 = QcSetup { k, b: 2048, rho: 1.0, topology, seed: 11 };
    let qc8_tp = RunStats::measure(runs, |r| {
        qc_update_throughput(&qc8, 8, n, Distribution::Uniform, r as u64).ops_per_sec()
    });
    let fcds8 = RunStats::measure(runs, |r| {
        fcds_update_throughput(k, 1920, 8, n, Distribution::Uniform, r as u64).ops_per_sec()
    });
    println!(
        "8 threads : QC  {} @ r={}  (paper: 22M @ ~30K)",
        format_ops(qc8_tp.mean),
        qc8.relaxation(8)
    );
    println!(
        "          : FCDS {} @ r={} (paper: 25M @ 137K needed an order more relaxation)",
        format_ops(fcds8.mean),
        qc_common::error::fcds_relaxation(1920, 8)
    );

    // 32 threads: QC b = 2048 → r ≈ 122K; FCDS at the same r needs B ≈ 1920.
    let qc32 = QcSetup { k, b: 2048, rho: 1.0, topology, seed: 12 };
    let qc32_tp = RunStats::measure(runs, |r| {
        qc_update_throughput(&qc32, 32, n, Distribution::Uniform, r as u64).ops_per_sec()
    });
    let fcds32 = RunStats::measure(runs, |r| {
        fcds_update_throughput(k, 1920, 32, n, Distribution::Uniform, r as u64).ops_per_sec()
    });
    println!(
        "32 threads: QC  {} @ r={}  (paper: 62M @ ~122K)",
        format_ops(qc32_tp.mean),
        qc32.relaxation(32)
    );
    println!(
        "          : FCDS {} @ r={} (paper: 19M even at r > 500K)",
        format_ops(fcds32.mean),
        qc_common::error::fcds_relaxation(1920, 32)
    );
}
