//! Figure 2: Quancurrent quantiles vs. exact CDF.
//!
//! Paper setting: k = 1024, b = 16, normal distribution, 32 update
//! threads, 10M elements. The plot shows, for each quantile φ, the exact
//! rank of Quancurrent's estimate against the identity line ⌊φn⌋.

use qc_bench::{banner, Options, QcSetup};
use qc_workloads::streams::{Distribution, StreamGen};
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;
use std::sync::{Barrier, Mutex};

fn main() {
    let opts = Options::from_env();
    banner("Figure 2", "estimated quantiles vs exact CDF (normal, k=1024)", &opts);

    let n = opts.stream_size(10_000_000);
    let threads = opts.thread_sweep(&[32])[0];
    let dist = Distribution::Normal { mean: 0.0, std_dev: 1.0 };
    let setup = QcSetup { k: 1024, b: 16, rho: 1.0, topology: Topology::paper_testbed(), seed: 2 };

    let sketch = setup.build(threads);
    let all = Mutex::new(Vec::<u64>::with_capacity(n as usize));
    let barrier = Barrier::new(threads);
    let per_thread = n / threads as u64;

    std::thread::scope(|s| {
        for t in 0..threads {
            let mut updater = sketch.updater();
            let all = &all;
            let barrier = &barrier;
            s.spawn(move || {
                let mut gen = StreamGen::new(dist, 100 + t as u64);
                let mut mine = Vec::with_capacity(per_thread as usize);
                barrier.wait();
                for _ in 0..per_thread {
                    let x = gen.next_f64();
                    mine.push(qc_common::OrderedBits::to_ordered_bits(x));
                    updater.update(x);
                }
                all.lock().unwrap().extend_from_slice(&mine);
            });
        }
    });

    let oracle = qc_workloads::exact::ExactOracle::from_bits(all.into_inner().unwrap());
    let mut handle = sketch.query_handle();

    let mut table =
        Table::new(["phi", "estimate", "exact_rank_of_estimate", "target_rank", "rank_err"]);
    let points = 41;
    for i in 0..points {
        let phi = i as f64 / (points - 1) as f64;
        if let Some(est) = handle.query(phi) {
            let est_bits = qc_common::OrderedBits::to_ordered_bits(est);
            let rank = oracle.rank_bits(est_bits);
            let target = (phi * oracle.n() as f64).floor() as u64;
            let err = oracle.rank_error(phi, est_bits);
            table.row([
                format!("{phi:.3}"),
                format!("{est:.4}"),
                rank.to_string(),
                target.to_string(),
                format!("{err:.5}"),
            ]);
        }
    }
    table.print();
    let csv = opts.csv_path("fig2");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());

    // The paper's visual claim: the estimated CDF hugs the exact one.
    let worst: f64 = table
        .to_csv()
        .lines()
        .skip(1)
        .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
        .fold(0.0, f64::max);
    println!("max normalized rank error: {worst:.5} (paper: visually tight at k=1024)");
}
