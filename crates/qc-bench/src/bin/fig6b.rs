//! Figure 6b: query-only throughput vs. number of query threads.
//!
//! Paper setting: k = 4096, b = 16; prefill 10M elements, then 10M
//! queries split across 1–32 query threads. Queries hit the per-handle
//! snapshot cache (the stream is static), which is what yields the
//! paper's ≈30× speedup over the sequential sketch at 32 threads.

use qc_bench::runners::{qc_query_throughput, seq_query_throughput};
use qc_bench::{banner, Options, QcSetup};
use qc_workloads::harness::format_ops;
use qc_workloads::stats::RunStats;
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;

fn main() {
    let opts = Options::from_env();
    banner("Figure 6b", "query-only throughput vs #threads (prefill 10M, 10M queries)", &opts);

    let n = opts.stream_size(10_000_000);
    let queries = n;
    let runs = opts.run_count(15);
    let threads = opts.thread_sweep(&[1, 2, 4, 8, 12, 16, 20, 24, 28, 32]);
    let setup = QcSetup::paper_default();

    let seq =
        RunStats::measure(runs, |r| seq_query_throughput(4096, n, queries, r as u64).ops_per_sec());
    println!("sequential baseline: {}", format_ops(seq.mean));
    println!();

    let mut table = Table::new(["threads", "query_ops_per_sec", "stderr", "speedup_vs_seq"]);
    for &t in &threads {
        let stats = RunStats::measure(runs, |r| {
            qc_query_throughput(&setup, t, n, queries, Distribution::Uniform, r as u64)
                .ops_per_sec()
        });
        table.row([
            t.to_string(),
            format!("{:.0}", stats.mean),
            format!("{:.0}", stats.std_err),
            format!("{:.2}", stats.mean / seq.mean),
        ]);
        println!(
            "threads={t:>2}: {} (speedup {:.2}x)",
            format_ops(stats.mean),
            stats.mean / seq.mean
        );
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig6b");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
}
