//! Figure 9: estimated quantiles vs. exact CDF for uniform and normal
//! streams at k ∈ {32, 256}.
//!
//! Paper setting: 32 threads, b = 16, 10M elements. Paper shape: k = 32
//! visibly deviates from the exact CDF; k = 256 is already tight.

use qc_bench::{banner, Options, QcSetup};
use qc_workloads::exact::ExactOracle;
use qc_workloads::streams::{Distribution, StreamGen};
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;
use std::sync::{Barrier, Mutex};

fn run_case(
    dist: Distribution,
    dist_name: &str,
    k: usize,
    threads: usize,
    n: u64,
    table: &mut Table,
) -> f64 {
    let setup = QcSetup { k, b: 16, rho: 1.0, topology: Topology::paper_testbed(), seed: 9 };
    let sketch = setup.build(threads);
    let all = Mutex::new(Vec::<u64>::with_capacity(n as usize));
    let barrier = Barrier::new(threads);
    let per_thread = n / threads as u64;

    std::thread::scope(|s| {
        for t in 0..threads {
            let mut updater = sketch.updater();
            let all = &all;
            let barrier = &barrier;
            s.spawn(move || {
                let mut gen = StreamGen::new(dist, 300 + t as u64);
                let mut mine = Vec::with_capacity(per_thread as usize);
                barrier.wait();
                for _ in 0..per_thread {
                    let x = gen.next_f64();
                    mine.push(qc_common::OrderedBits::to_ordered_bits(x));
                    updater.update(x);
                }
                all.lock().unwrap().extend_from_slice(&mine);
            });
        }
    });

    let oracle = ExactOracle::from_bits(all.into_inner().unwrap());
    let mut handle = sketch.query_handle();
    let mut worst: f64 = 0.0;
    for i in 0..=20 {
        let phi = i as f64 / 20.0;
        if let Some(est) = handle.query(phi) {
            let bits = qc_common::OrderedBits::to_ordered_bits(est);
            let rank = oracle.rank_bits(bits);
            let err = oracle.rank_error(phi, bits);
            worst = worst.max(err);
            table.row([
                dist_name.to_string(),
                k.to_string(),
                format!("{phi:.2}"),
                format!("{est:.4}"),
                rank.to_string(),
                format!("{err:.5}"),
            ]);
        }
    }
    worst
}

fn main() {
    let opts = Options::from_env();
    banner("Figure 9", "quantiles vs exact CDF, uniform & normal, k ∈ {32, 256}", &opts);

    let n = opts.stream_size(10_000_000);
    let threads = opts.thread_sweep(&[32])[0];

    let mut table = Table::new(["distribution", "k", "phi", "estimate", "exact_rank", "rank_err"]);
    let mut worst = Vec::new();
    for (dist, name) in [
        (Distribution::Uniform, "uniform"),
        (Distribution::Normal { mean: 0.0, std_dev: 1.0 }, "normal"),
    ] {
        for k in [32usize, 256] {
            let w = run_case(dist, name, k, threads, n, &mut table);
            println!("{name:>8} k={k:>3}: max rank error {w:.5}");
            worst.push((name, k, w));
        }
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig9");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());

    // Paper shape: k = 256 must be visibly tighter than k = 32.
    for name in ["uniform", "normal"] {
        let w32 = worst.iter().find(|(n2, k, _)| *n2 == name && *k == 32).unwrap().2;
        let w256 = worst.iter().find(|(n2, k, _)| *n2 == name && *k == 256).unwrap().2;
        println!("{name}: k=32 max err {w32:.5} vs k=256 max err {w256:.5} (expect 256 ≪ 32)");
    }
}
