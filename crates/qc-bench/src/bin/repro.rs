//! One-shot reproduction driver: run every figure binary in sequence with
//! shared options and collect a summary manifest.
//!
//! ```sh
//! cargo run --release -p qc-bench --bin repro -- --quick
//! cargo run --release -p qc-bench --bin repro            # paper scale
//! ```
//!
//! Each figure still writes its own CSV under `--out` (default
//! `results/`); this driver adds `results/manifest.txt` recording what ran
//! with which options, so a results directory is self-describing.

use qc_bench::Options;
use std::io::Write;
use std::process::Command;

const FIGURES: &[&str] = &[
    "fig2",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig8",
    "fig9",
    "fig10",
    "holes",
    "ablation_numa",
    "ablation_snapshot",
    "ablation_dcas",
    "ablation_lock",
];

fn main() {
    let opts = Options::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();

    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir").to_path_buf();

    std::fs::create_dir_all(&opts.out_dir).expect("create out dir");
    let manifest_path = opts.out_dir.join("manifest.txt");
    let mut manifest = std::fs::File::create(&manifest_path).expect("create manifest");
    writeln!(manifest, "quancurrent reproduction run").unwrap();
    writeln!(manifest, "options: {args:?}").unwrap();
    writeln!(manifest, "host threads: {:?}", std::thread::available_parallelism()).unwrap();
    writeln!(manifest).unwrap();

    let mut failures = Vec::new();
    for fig in FIGURES {
        let bin = bin_dir.join(fig);
        if !bin.exists() {
            eprintln!(
                "skipping {fig}: binary not built (run `cargo build --release -p qc-bench --bins`)"
            );
            writeln!(manifest, "{fig}: SKIPPED (not built)").unwrap();
            continue;
        }
        println!("\n================ {fig} ================");
        let start = std::time::Instant::now();
        let status = Command::new(&bin).args(&args).status();
        match status {
            Ok(s) if s.success() => {
                writeln!(manifest, "{fig}: ok in {:?}", start.elapsed()).unwrap();
            }
            Ok(s) => {
                writeln!(manifest, "{fig}: FAILED ({s})").unwrap();
                failures.push(*fig);
            }
            Err(e) => {
                writeln!(manifest, "{fig}: ERROR ({e})").unwrap();
                failures.push(*fig);
            }
        }
    }

    println!("\nmanifest written to {}", manifest_path.display());
    if failures.is_empty() {
        println!("all figures regenerated.");
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
