//! Figure 6a: update-only throughput vs. number of threads.
//!
//! Paper setting: k = 4096, b = 16, stream of 10M uniform elements, 1–32
//! update threads, horizontal line for the sequential sketch. Paper
//! observations to compare against: single-thread Quancurrent ≈
//! sequential; linear scaling; ≈12× at 32 threads (on a 32-hardware-thread
//! 4-socket machine — on smaller hosts the curve flattens at the core
//! count; EXPERIMENTS.md discusses the substitution).

use qc_bench::runners::{qc_update_throughput, seq_update_throughput};
use qc_bench::{banner, Options, QcSetup};
use qc_workloads::harness::format_ops;
use qc_workloads::stats::RunStats;
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;

fn main() {
    let opts = Options::from_env();
    banner("Figure 6a", "update-only throughput vs #threads (k=4096, b=16)", &opts);

    let n = opts.stream_size(10_000_000);
    let runs = opts.run_count(15);
    let threads = opts.thread_sweep(&[1, 2, 4, 8, 12, 16, 20, 24, 28, 32]);
    let setup = QcSetup::paper_default();

    let seq = RunStats::measure(runs, |r| {
        seq_update_throughput(4096, n, Distribution::Uniform, r as u64).ops_per_sec()
    });
    println!("sequential baseline: {}", format_ops(seq.mean));
    println!();

    let mut table =
        Table::new(["threads", "qc_ops_per_sec", "qc_stderr", "seq_ops_per_sec", "speedup"]);
    for &t in &threads {
        let stats = RunStats::measure(runs, |r| {
            qc_update_throughput(&setup, t, n, Distribution::Uniform, r as u64).ops_per_sec()
        });
        table.row([
            t.to_string(),
            format!("{:.0}", stats.mean),
            format!("{:.0}", stats.std_err),
            format!("{:.0}", seq.mean),
            format!("{:.2}", stats.mean / seq.mean),
        ]);
        println!(
            "threads={t:>2}: {} (speedup {:.2}x)",
            format_ops(stats.mean),
            stats.mean / seq.mean
        );
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig6a");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
}
