//! Figure 8: standard error of estimation in a quiescent state.
//!
//! Paper setting: 1M keys, 1000 runs, k swept to 4096, b ∈ {8, 16, 32},
//! 8 and 32 update threads, against the sequential sketch. Paper shape:
//! Quancurrent's error matches sequential at equal k and shrinks with k —
//! i.e. concurrency (holes + relaxation) does not degrade accuracy.
//!
//! "Standard error" here is the RMS normalized rank error over a φ grid,
//! aggregated over independently seeded runs.

use qc_bench::{banner, Options, QcSetup};
use qc_sequential::QuantilesSketch;
use qc_workloads::exact::{phi_grid, AccuracyReport, ExactOracle};
use qc_workloads::stats::RunStats;
use qc_workloads::streams::{Distribution, StreamGen};
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;
use std::sync::{Barrier, Mutex};

fn qc_rms_error(setup: &QcSetup, threads: usize, n: u64, seed: u64) -> f64 {
    let sketch = setup.build(threads);
    let all = Mutex::new(Vec::<u64>::with_capacity(n as usize));
    let barrier = Barrier::new(threads);
    let per_thread = n / threads as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let mut updater = sketch.updater();
            let all = &all;
            let barrier = &barrier;
            s.spawn(move || {
                let mut gen =
                    StreamGen::new(Distribution::Uniform, seed.wrapping_add(t as u64 * 13));
                let mut mine = Vec::with_capacity(per_thread as usize);
                barrier.wait();
                for _ in 0..per_thread {
                    let x = gen.next_f64();
                    mine.push(qc_common::OrderedBits::to_ordered_bits(x));
                    updater.update(x);
                }
                all.lock().unwrap().extend_from_slice(&mine);
            });
        }
    });
    let oracle = ExactOracle::from_bits(all.into_inner().unwrap());
    let summary = sketch.snapshot();
    AccuracyReport::evaluate(&summary, &oracle, &phi_grid(99)).rms_error()
}

fn seq_rms_error(k: usize, n: u64, seed: u64) -> f64 {
    let mut sketch = QuantilesSketch::with_seed(k, seed);
    let mut gen = StreamGen::new(Distribution::Uniform, seed);
    let mut all = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let bits = gen.next_bits();
        all.push(bits);
        sketch.update(bits);
    }
    let oracle = ExactOracle::from_bits(all);
    AccuracyReport::evaluate(&sketch.summary(), &oracle, &phi_grid(99)).rms_error()
}

fn main() {
    let opts = Options::from_env();
    banner("Figure 8", "standard error of estimation, quiescent state (1M keys)", &opts);

    let n = opts.stream_size(1_000_000);
    // The paper uses 1000 runs; the default here keeps full mode tractable
    // while --runs can push it up.
    let runs = opts.run_count(40);
    let ks = [64usize, 128, 256, 512, 1024, 2048, 4096];
    let bs = [8usize, 16, 32];
    let thread_counts = opts.thread_sweep(&[8, 32]);

    let mut table =
        Table::new(["k", "variant", "threads", "rms_rank_error_mean", "rms_rank_error_std"]);

    for &k in &ks {
        let seq = RunStats::measure(runs, |r| seq_rms_error(k, n, 1_000 + r as u64));
        table.row([
            k.to_string(),
            "sequential".into(),
            "1".into(),
            format!("{:.6}", seq.mean),
            format!("{:.6}", seq.std_dev),
        ]);
        println!("k={k:>4} sequential: rms err {:.5}", seq.mean);

        for &threads in &thread_counts {
            for &b in &bs {
                let setup =
                    QcSetup { k, b, rho: 1.0, topology: Topology::paper_testbed(), seed: 8 };
                let qc =
                    RunStats::measure(runs, |r| qc_rms_error(&setup, threads, n, 2_000 + r as u64));
                table.row([
                    k.to_string(),
                    format!("quancurrent b={b}"),
                    threads.to_string(),
                    format!("{:.6}", qc.mean),
                    format!("{:.6}", qc.std_dev),
                ]);
                println!("k={k:>4} qc b={b:>2} threads={threads:>2}: rms err {:.5}", qc.mean);
            }
        }
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig8");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
    println!("\npaper shape: error falls with k; Quancurrent ≈ sequential at equal k,");
    println!("with no visible dependence on b or thread count.");
}
