//! Ablation: DCAS cost accounting — descriptor arena growth, retry rates,
//! and helping pressure as contention rises.
//!
//! DESIGN.md commits to descriptors that are never recycled (the explicit
//! GC substitute for Harris's construction). This ablation quantifies the
//! consequence: arena bytes per ingested element, and how DCAS retries and
//! level waits scale with thread count.

use qc_bench::{banner, Options, QcSetup};
use qc_workloads::streams::{Distribution, StreamGen};
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;
use std::sync::Barrier;

fn main() {
    let opts = Options::from_env();
    banner("Ablation", "DCAS accounting: arena growth, retries, waits", &opts);

    let n = opts.stream_size(4_000_000);
    let threads_sweep = opts.thread_sweep(&[1, 2, 4, 8, 16, 32]);

    let mut table = Table::new([
        "threads",
        "batches",
        "propagations",
        "dcas_retries",
        "level_waits",
        "arena_bytes",
        "arena_bytes_per_elem",
    ]);
    for &threads in &threads_sweep {
        let setup =
            QcSetup { k: 1024, b: 16, rho: 1.0, topology: Topology::paper_testbed(), seed: 44 };
        let sketch = setup.build(threads);
        let barrier = Barrier::new(threads);
        let per_thread = n / threads as u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let mut updater = sketch.updater();
                let barrier = &barrier;
                s.spawn(move || {
                    let mut gen = StreamGen::new(Distribution::Uniform, 7 + t as u64);
                    barrier.wait();
                    for _ in 0..per_thread {
                        updater.update(gen.next_f64());
                    }
                });
            }
        });

        let stats = sketch.stats();
        let (_, arena_bytes) = sketch.memory_stats();
        table.row([
            threads.to_string(),
            stats.batches.to_string(),
            stats.propagations.to_string(),
            stats.dcas_retries.to_string(),
            stats.level_waits.to_string(),
            arena_bytes.to_string(),
            format!("{:.4}", arena_bytes as f64 / n as f64),
        ]);
        println!(
            "threads={threads:>2}: {} batches, {} props, {} retries, {} waits, arena {} B ({:.4} B/elem)",
            stats.batches,
            stats.propagations,
            stats.dcas_retries,
            stats.level_waits,
            arena_bytes,
            arena_bytes as f64 / n as f64
        );
    }

    println!();
    table.print();
    let csv = opts.csv_path("ablation_dcas");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
    println!("\ninterpretation: the arena grows with batches + propagations only");
    println!("(≈ n/2k descriptors), independent of contention; retries and waits");
    println!("grow with threads — the price the tritmap protocol pays for");
    println!("coordination, bounded by helping.");
}
