//! Figure 7a: update-only throughput vs. k.
//!
//! Paper setting: k ∈ {256, 512, 1024, 2048, 4096}, b = 16, 10M uniform
//! keys, up to 32 threads. Paper shape: throughput grows with k and peaks
//! around k = 2048 (bigger batches amortize propagation until the sort
//! cost dominates).

use qc_bench::runners::{qc_update_throughput, QcSetup};
use qc_bench::{banner, Options};
use qc_workloads::harness::format_ops;
use qc_workloads::stats::RunStats;
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;

fn main() {
    let opts = Options::from_env();
    banner("Figure 7a", "update throughput vs k (b=16)", &opts);

    let n = opts.stream_size(10_000_000);
    let runs = opts.run_count(15);
    let threads = opts.thread_sweep(&[1, 2, 4, 8, 16, 24, 32]);
    let ks = [256usize, 512, 1024, 2048, 4096];

    let mut table = Table::new(["k", "threads", "ops_per_sec", "stderr"]);
    for &k in &ks {
        for &t in &threads {
            let setup =
                QcSetup { k, b: 16, rho: 1.0, topology: Topology::paper_testbed(), seed: 5 };
            let stats = RunStats::measure(runs, |r| {
                qc_update_throughput(&setup, t, n, Distribution::Uniform, r as u64).ops_per_sec()
            });
            table.row([
                k.to_string(),
                t.to_string(),
                format!("{:.0}", stats.mean),
                format!("{:.0}", stats.std_err),
            ]);
            println!("k={k:>4} threads={t:>2}: {}", format_ops(stats.mean));
        }
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig7a");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
}
