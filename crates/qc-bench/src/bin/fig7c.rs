//! Figure 7c: query throughput and miss rate vs. freshness ρ.
//!
//! Paper setting: 8 update threads, 24 query threads, k = 1024, b = 16,
//! 10M keys; ρ swept as 1 + c·ε for c ∈ {0, 0.5, …, 5} with ε = ε(k).
//! Paper shape: query throughput grows with ρ while the miss rate falls
//! from 100% toward zero.

use qc_bench::runners::{qc_mixed_throughput, QcSetup};
use qc_bench::{banner, Options};
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;

fn main() {
    let opts = Options::from_env();
    banner("Figure 7c", "query throughput & miss rate vs ρ (8 upd, 24 qry, k=1024)", &opts);

    let n = opts.stream_size(10_000_000);
    let runs = opts.run_count(15);
    let eps = qc_common::error::sequential_epsilon(1024);
    let multipliers = [0.0f64, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0];

    let mut table = Table::new([
        "rho",
        "eps_multiplier",
        "query_ops_per_sec",
        "update_ops_per_sec",
        "miss_rate",
    ]);
    for &m in &multipliers {
        let rho = 1.0 + m * eps;
        let setup = QcSetup { k: 1024, b: 16, rho, topology: Topology::paper_testbed(), seed: 7 };
        let mut q_sum = 0.0;
        let mut u_sum = 0.0;
        let mut miss_sum = 0.0;
        for r in 0..runs {
            let (u_tp, q_tp, stats) =
                qc_mixed_throughput(&setup, 8, 24, n, n, Distribution::Uniform, r as u64);
            q_sum += q_tp.ops_per_sec();
            u_sum += u_tp.ops_per_sec();
            miss_sum += stats.miss_rate();
        }
        let (q_avg, u_avg, miss) =
            (q_sum / runs as f64, u_sum / runs as f64, miss_sum / runs as f64);
        table.row([
            format!("{rho:.5}"),
            format!("1+{m}ε"),
            format!("{q_avg:.0}"),
            format!("{u_avg:.0}"),
            format!("{:.2}%", miss * 100.0),
        ]);
        println!("ρ=1+{m}ε: query {q_avg:>12.0} op/s, miss rate {:.2}%", miss * 100.0);
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig7c");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
}
