//! Figure 7b: update-only throughput vs. local buffer size b.
//!
//! Paper setting: b ∈ {1, 2, 4, 8, 16, 32, 64}, k = 4096, 10M uniform
//! keys, up to 32 threads. Paper shape: throughput increases with b
//! (larger local buffers mean fewer, larger synchronized hand-offs —
//! i.e. more concurrency).

use qc_bench::runners::{qc_update_throughput, QcSetup};
use qc_bench::{banner, Options};
use qc_workloads::harness::format_ops;
use qc_workloads::stats::RunStats;
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;

fn main() {
    let opts = Options::from_env();
    banner("Figure 7b", "update throughput vs b (k=4096)", &opts);

    let n = opts.stream_size(10_000_000);
    let runs = opts.run_count(15);
    let threads = opts.thread_sweep(&[1, 2, 4, 8, 16, 24, 32]);
    let bs = [1usize, 2, 4, 8, 16, 32, 64];

    let mut table = Table::new(["b", "threads", "ops_per_sec", "stderr"]);
    for &b in &bs {
        for &t in &threads {
            let setup =
                QcSetup { k: 4096, b, rho: 1.0, topology: Topology::paper_testbed(), seed: 6 };
            let stats = RunStats::measure(runs, |r| {
                qc_update_throughput(&setup, t, n, Distribution::Uniform, r as u64).ops_per_sec()
            });
            table.row([
                b.to_string(),
                t.to_string(),
                format!("{:.0}", stats.mean),
                format!("{:.0}", stats.std_err),
            ]);
            println!("b={b:>2} threads={t:>2}: {}", format_ops(stats.mean));
        }
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig7b");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
}
