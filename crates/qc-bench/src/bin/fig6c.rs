//! Figure 6c: mixed update/query workload.
//!
//! Paper setting: 1 or 2 update threads against 1–32 query threads,
//! k = 1024 (per the sub-caption; the panel title says 4096 — we follow
//! the sub-caption and note the discrepancy in EXPERIMENTS.md), b = 16,
//! prefill 10M, then 10M updates while queries free-run; staleness
//! ε′ ∈ {0, 0.05} (ρ = 0 means no caching). Left panel: update
//! throughput; right panel: query throughput.

use qc_bench::runners::{qc_mixed_throughput, QcSetup};
use qc_bench::{banner, Options};
use qc_workloads::streams::Distribution;
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;

fn main() {
    let opts = Options::from_env();
    banner("Figure 6c", "mixed workload: 1–2 updaters × query threads, ε′ ∈ {0, 0.05}", &opts);

    let n = opts.stream_size(10_000_000);
    let runs = opts.run_count(15);
    let query_threads = opts.thread_sweep(&[1, 2, 4, 8, 12, 16, 20, 24, 28, 30]);

    let mut table = Table::new([
        "update_threads",
        "query_threads",
        "eps_prime",
        "update_ops_per_sec",
        "query_ops_per_sec",
        "miss_rate",
    ]);

    for &updaters in &[1usize, 2] {
        for &eps in &[0.0f64, 0.05] {
            let rho = if eps == 0.0 { 0.0 } else { 1.0 + eps };
            let setup =
                QcSetup { k: 1024, b: 16, rho, topology: Topology::paper_testbed(), seed: 4 };
            for &q in &query_threads {
                let mut u_sum = 0.0;
                let mut q_sum = 0.0;
                let mut miss_sum = 0.0;
                for r in 0..runs {
                    let (u_tp, q_tp, stats) = qc_mixed_throughput(
                        &setup,
                        updaters,
                        q,
                        n,
                        n,
                        Distribution::Uniform,
                        r as u64,
                    );
                    u_sum += u_tp.ops_per_sec();
                    q_sum += q_tp.ops_per_sec();
                    miss_sum += stats.miss_rate();
                }
                let (u_avg, q_avg, miss) =
                    (u_sum / runs as f64, q_sum / runs as f64, miss_sum / runs as f64);
                table.row([
                    updaters.to_string(),
                    q.to_string(),
                    format!("{eps}"),
                    format!("{u_avg:.0}"),
                    format!("{q_avg:.0}"),
                    format!("{miss:.4}"),
                ]);
                println!(
                    "upd={updaters} qry={q:>2} ε′={eps}: update {u_avg:>12.0} op/s, query {q_avg:>12.0} op/s"
                );
            }
        }
    }

    println!();
    table.print();
    let csv = opts.csv_path("fig6c");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
    println!("\npaper shape: ε′ = 0.05 ≫ ε′ = 0 in query throughput (caching is crucial);");
    println!("more update threads depress query throughput and vice versa.");
}
