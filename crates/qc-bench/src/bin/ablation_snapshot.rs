//! Ablation: what does a query snapshot cost, and how does it scale with
//! the stream?
//!
//! Snapshot cost is the reason the ρ cache exists (§5.2's "ρ > 0 is
//! crucial for performance"). This ablation measures the full rebuild
//! (double-collect + copy + summary build) as the stream — and hence the
//! number and size of occupied levels — grows, plus the cached-hit cost
//! for contrast.

use qc_bench::{banner, Options, QcSetup};
use qc_workloads::stats::RunStats;
use qc_workloads::streams::{Distribution, StreamGen};
use qc_workloads::table::Table;
use qc_workloads::topology::Topology;
use std::time::Instant;

fn main() {
    let opts = Options::from_env();
    banner("Ablation", "snapshot rebuild cost vs stream size (k=1024)", &opts);

    let runs = opts.run_count(10);
    let sizes: Vec<u64> = if opts.quick {
        vec![100_000, 1_000_000]
    } else {
        vec![100_000, 1_000_000, 10_000_000, 30_000_000]
    };

    let mut table = Table::new([
        "stream_n",
        "occupied_levels",
        "retained_elems",
        "rebuild_us_mean",
        "cached_hit_ns",
    ]);
    for &n in &sizes {
        let setup =
            QcSetup { k: 1024, b: 16, rho: 1.0, topology: Topology::single_node(1), seed: 33 };
        let sketch = setup.build(1);
        let mut updater = sketch.updater();
        let mut gen = StreamGen::new(Distribution::Uniform, 3);
        for _ in 0..n {
            updater.update(gen.next_f64());
        }
        drop(updater);

        let occupied = {
            use qc_common::Summary;
            let s = sketch.snapshot();
            (s.num_retained(), s.stream_len())
        };

        let rebuild = RunStats::measure(runs, |_| {
            let t0 = Instant::now();
            let s = sketch.snapshot();
            std::hint::black_box(&s);
            t0.elapsed().as_secs_f64() * 1e6
        });

        let mut handle = sketch.query_handle();
        let _ = handle.query(0.5);
        let hit = RunStats::measure(runs, |_| {
            let t0 = Instant::now();
            for _ in 0..10_000 {
                std::hint::black_box(handle.query(0.5));
            }
            t0.elapsed().as_secs_f64() * 1e9 / 10_000.0
        });

        table.row([
            n.to_string(),
            format!("{}", sketch.stream_len().ilog2().saturating_sub(10)),
            occupied.0.to_string(),
            format!("{:.1}", rebuild.mean),
            format!("{:.1}", hit.mean),
        ]);
        println!(
            "n={n:>9}: rebuild {:>9.1} µs, cached hit {:>7.1} ns, {} retained",
            rebuild.mean, hit.mean, occupied.0
        );
    }

    println!();
    table.print();
    let csv = opts.csv_path("ablation_snapshot");
    table.write_csv(&csv).expect("write csv");
    println!("\nwrote {}", csv.display());
    println!("\ninterpretation: rebuild cost grows with retained elements (O(m log m)");
    println!("summary sort) while cached hits stay flat — the gap the ρ cache closes.");
}
