//! Concrete throughput runners for the three sketches under test.
//!
//! Handle creation and stream-generator setup happen **before** the timed
//! region (the harness invokes `make_worker` pre-barrier), matching the
//! paper's methodology of measuring pure feeding time.

use qc_common::engine::ConcurrentIngest;
use qc_fcds::Fcds;
use qc_sequential::QuantilesSketch;
use qc_workloads::harness::{
    concurrent_ingest_throughput, fixed_ops_throughput, mixed_throughput, Throughput,
};
use qc_workloads::streams::{Distribution, StreamGen};
use qc_workloads::topology::Topology;
use quancurrent::{Config, Quancurrent};

/// Quancurrent configuration for a benchmark point, mirroring the paper's
/// parameters plus the simulated testbed.
#[derive(Clone, Debug)]
pub struct QcSetup {
    /// Level size k.
    pub k: usize,
    /// Local buffer size b.
    pub b: usize,
    /// Freshness bound ρ.
    pub rho: f64,
    /// Simulated machine (node count + fill-first placement).
    pub topology: Topology,
    /// Sampling seed.
    pub seed: u64,
}

impl QcSetup {
    /// The paper's main setting: k=4096, b=16 on the 4×8 testbed.
    pub fn paper_default() -> Self {
        Self { k: 4096, b: 16, rho: 1.0, topology: Topology::paper_testbed(), seed: 1 }
    }

    /// Build the sketch for a run with `threads` updaters: the number of
    /// Gather&Sort units is the number of nodes those threads *occupy*
    /// (fill-first), as in §5.1.
    pub fn build(&self, threads: usize) -> Quancurrent<f64> {
        let nodes = self.topology.nodes_used(threads.max(1));
        Quancurrent::with_config(Config {
            k: self.k,
            b: self.b,
            numa_nodes: nodes,
            threads_per_node: self.topology.cores_per_node,
            rho: self.rho,
            seed: self.seed,
        })
    }

    /// The relaxation r = 4kS + (N−S)b this setup yields at `threads`.
    pub fn relaxation(&self, threads: usize) -> u64 {
        let s = self.topology.nodes_used(threads.max(1));
        qc_common::error::quancurrent_relaxation(self.k, self.b, threads, s)
    }
}

/// Backend-generic update throughput: `threads` writers registered
/// through [`ConcurrentIngest::writer`] feed `n_total` elements. This is
/// the single measurement path behind [`qc_update_throughput`] and
/// [`fcds_update_throughput`], and it accepts any future backend that
/// implements the trait.
pub fn engine_update_throughput<S>(
    sketch: &S,
    threads: usize,
    n_total: u64,
    dist: Distribution,
    seed: u64,
) -> Throughput
where
    S: ConcurrentIngest<f64> + ?Sized,
{
    let per_thread = n_total / threads as u64;
    concurrent_ingest_throughput(sketch, threads, per_thread, |t| {
        let mut gen = StreamGen::new(dist, seed.wrapping_add(t as u64 * 77));
        move |_i| gen.next_f64()
    })
}

/// Update-only throughput: `threads` updaters feed `n_total` elements.
pub fn qc_update_throughput(
    setup: &QcSetup,
    threads: usize,
    n_total: u64,
    dist: Distribution,
    seed: u64,
) -> Throughput {
    let sketch = setup.build(threads);
    engine_update_throughput(&sketch, threads, n_total, dist, seed)
}

/// Query-only throughput: prefill with `prefill` elements, then `threads`
/// query threads issue `queries_total` queries against the static sketch.
pub fn qc_query_throughput(
    setup: &QcSetup,
    threads: usize,
    prefill: u64,
    queries_total: u64,
    dist: Distribution,
    seed: u64,
) -> Throughput {
    let sketch = setup.build(1);
    let mut updater = sketch.updater();
    let mut gen = StreamGen::new(dist, seed);
    for _ in 0..prefill {
        updater.update(gen.next_f64());
    }
    drop(updater);

    let per_thread = queries_total / threads as u64;
    fixed_ops_throughput(threads, per_thread, |t| {
        let mut handle = sketch.query_handle();
        let mut phi = 0.1 + 0.01 * t as f64;
        move |_i| {
            let _ = handle.query(phi);
            phi += 0.037;
            if phi >= 1.0 {
                phi -= 1.0;
            }
        }
    })
}

/// Mixed workload (Figure 6c / 7c): fixed update count, queries free-run
/// until updates finish. Returns `(update, query)` throughput and the
/// final sketch stats (for miss rates).
pub fn qc_mixed_throughput(
    setup: &QcSetup,
    update_threads: usize,
    query_threads: usize,
    prefill: u64,
    updates_total: u64,
    dist: Distribution,
    seed: u64,
) -> (Throughput, Throughput, quancurrent::SketchStats) {
    let sketch = setup.build(update_threads);
    {
        let mut updater = sketch.updater_on(0);
        let mut gen = StreamGen::new(dist, seed ^ 0xFEED);
        for _ in 0..prefill {
            updater.update(gen.next_f64());
        }
    }
    let per_thread = updates_total / update_threads as u64;
    let (u, q) = mixed_throughput(
        update_threads,
        query_threads,
        per_thread,
        |t| {
            let mut updater = sketch.updater();
            let mut gen = StreamGen::new(dist, seed.wrapping_add(t as u64 * 131));
            move |_i| updater.update(gen.next_f64())
        },
        |t| {
            let mut handle = sketch.query_handle();
            let mut phi = 0.05 + 0.01 * t as f64;
            move |_i| {
                let _ = handle.query(phi);
                phi += 0.029;
                if phi >= 1.0 {
                    phi -= 1.0;
                }
            }
        },
    );
    (u, q, sketch.stats())
}

/// Sequential-sketch update throughput (single thread, by definition).
pub fn seq_update_throughput(k: usize, n: u64, dist: Distribution, seed: u64) -> Throughput {
    fixed_ops_throughput(1, n, |_| {
        let mut sketch = QuantilesSketch::with_seed(k, seed);
        let mut gen = StreamGen::new(dist, seed);
        move |_i| sketch.update(gen.next_bits())
    })
}

/// Sequential query throughput: one thread querying a prefilled sketch
/// through a cached summary (the fastest sequential serving mode).
pub fn seq_query_throughput(k: usize, prefill: u64, queries: u64, seed: u64) -> Throughput {
    let mut sketch = QuantilesSketch::with_seed(k, seed);
    let mut gen = StreamGen::new(Distribution::Uniform, seed);
    for _ in 0..prefill {
        sketch.update(gen.next_bits());
    }
    let summary = sketch.summary();
    fixed_ops_throughput(1, queries, |_| {
        use qc_common::Summary;
        let summary = summary.clone();
        let mut phi = 0.1;
        move |_i| {
            let _ = summary.quantile_bits(phi);
            phi += 0.037;
            if phi >= 1.0 {
                phi -= 1.0;
            }
        }
    })
}

/// FCDS update throughput: `threads` workers with buffer size `buffer` feed
/// `n_total` elements (plus the dedicated propagator thread).
pub fn fcds_update_throughput(
    k: usize,
    buffer: usize,
    threads: usize,
    n_total: u64,
    dist: Distribution,
    seed: u64,
) -> Throughput {
    let fcds = Fcds::<f64>::with_seed(k, buffer, threads, seed);
    engine_update_throughput(&fcds, threads, n_total, dist, seed.wrapping_mul(997))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> QcSetup {
        QcSetup { k: 64, b: 4, rho: 1.0, topology: Topology::single_node(4), seed: 3 }
    }

    #[test]
    fn qc_update_runner_feeds_everything() {
        let setup = tiny();
        let tp = qc_update_throughput(&setup, 2, 20_000, Distribution::Uniform, 5);
        assert_eq!(tp.ops, 20_000);
        assert!(tp.ops_per_sec() > 0.0);
    }

    #[test]
    fn qc_query_runner_counts_queries() {
        let setup = tiny();
        let tp = qc_query_throughput(&setup, 2, 10_000, 5_000, Distribution::Uniform, 5);
        assert_eq!(tp.ops, 5_000);
    }

    #[test]
    fn qc_mixed_runner_reports_both() {
        let setup = tiny();
        let (u, q, stats) =
            qc_mixed_throughput(&setup, 1, 2, 5_000, 10_000, Distribution::Uniform, 5);
        assert_eq!(u.ops, 10_000);
        assert!(q.ops > 0);
        let _ = stats.miss_rate();
    }

    #[test]
    fn seq_runners_work() {
        let tp = seq_update_throughput(64, 50_000, Distribution::Uniform, 1);
        assert_eq!(tp.ops, 50_000);
        let qp = seq_query_throughput(64, 10_000, 1_000, 1);
        assert_eq!(qp.ops, 1_000);
    }

    #[test]
    fn fcds_runner_works() {
        let tp = fcds_update_throughput(64, 128, 2, 20_000, Distribution::Uniform, 1);
        assert_eq!(tp.ops, 20_000);
    }

    /// The generic runner drives both concurrent backends through one
    /// trait object — no concrete sketch types in the measurement path.
    #[test]
    fn engine_runner_is_backend_generic() {
        let qc = tiny().build(2);
        let fcds = Fcds::<f64>::with_seed(64, 128, 2, 9);
        let backends: [&dyn ConcurrentIngest<f64>; 2] = [&qc, &fcds];
        for backend in backends {
            let tp = engine_update_throughput(backend, 2, 10_000, Distribution::Uniform, 4);
            assert_eq!(tp.ops, 10_000);
        }
    }

    #[test]
    fn setup_relaxation_tracks_topology() {
        let setup = QcSetup::paper_default();
        // 8 threads fill one node: r = 4k + 7b.
        assert_eq!(setup.relaxation(8), 4 * 4096 + 7 * 16);
        // 32 threads fill four nodes: r = 16k + 28b.
        assert_eq!(setup.relaxation(32), 4 * 4096 * 4 + 28 * 16);
    }
}
