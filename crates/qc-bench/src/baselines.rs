//! The baseline the paper leaves implicit: a sequential sketch behind a
//! global mutex.
//!
//! Every concurrent-data-structure evaluation should include the naive
//! lock-based composition — it is what a practitioner would write first,
//! and the reason concurrent sketches exist is that it does not scale
//! (every update serializes, and the occasional 2k-sort happens *inside*
//! the critical section, stalling all threads). `ablation_lock` quantifies
//! it against Quancurrent and FCDS.

use qc_sequential::QuantilesSketch;
use qc_workloads::harness::{fixed_ops_throughput, Throughput};
use qc_workloads::streams::{Distribution, StreamGen};
use std::sync::Mutex;

/// A sequential Quantiles sketch shared through one global lock.
pub struct LockedQuantiles {
    inner: Mutex<QuantilesSketch>,
}

impl LockedQuantiles {
    /// Wrap a sketch with level size `k`.
    pub fn new(k: usize, seed: u64) -> Self {
        Self { inner: Mutex::new(QuantilesSketch::with_seed(k, seed)) }
    }

    /// Serialized update.
    pub fn update(&self, bits: u64) {
        self.inner.lock().unwrap().update(bits);
    }

    /// Serialized query.
    pub fn quantile_bits(&self, phi: f64) -> Option<u64> {
        self.inner.lock().unwrap().quantile_bits(phi)
    }

    /// Stream length.
    pub fn n(&self) -> u64 {
        self.inner.lock().unwrap().n()
    }
}

/// Update throughput of the lock-based baseline.
pub fn locked_update_throughput(
    k: usize,
    threads: usize,
    n_total: u64,
    dist: Distribution,
    seed: u64,
) -> Throughput {
    let sketch = LockedQuantiles::new(k, seed);
    let per_thread = n_total / threads as u64;
    fixed_ops_throughput(threads, per_thread, |t| {
        let sketch = &sketch;
        let mut gen = StreamGen::new(dist, seed.wrapping_add(t as u64 * 41));
        move |_i| sketch.update(gen.next_bits())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locked_baseline_is_correct_under_contention() {
        let sketch = LockedQuantiles::new(128, 1);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sketch = &sketch;
                s.spawn(move || {
                    for i in 0..25_000 {
                        sketch.update(t * 25_000 + i);
                    }
                });
            }
        });
        assert_eq!(sketch.n(), 100_000);
        let median = sketch.quantile_bits(0.5).unwrap();
        assert!((30_000..70_000).contains(&median), "median {median}");
    }

    #[test]
    fn locked_runner_counts_ops() {
        let tp = locked_update_throughput(64, 2, 10_000, Distribution::Uniform, 3);
        assert_eq!(tp.ops, 10_000);
        assert!(tp.ops_per_sec() > 0.0);
    }
}
