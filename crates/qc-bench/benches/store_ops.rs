//! Keyed-store benchmarks: update throughput vs stripe count (the store's
//! scaling knob), plus the snapshot/ingest wire path and merged queries.
//!
//! The headline series is `store_update_8_threads/<stripes>`: 8 writer
//! threads spraying updates across 64 keys. With one stripe every writer
//! contends on one mutex; with 16+ stripes writers mostly own their stripe
//! and throughput should approach the per-sketch ingestion rate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_store::{SketchStore, StoreConfig};
use qc_workloads::streams::{Distribution, StreamGen};

const KEYS: usize = 64;
const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 16 * 1024;

fn key_names() -> Vec<String> {
    (0..KEYS).map(|i| format!("stream-{i:03}")).collect()
}

fn bench_update_vs_stripes(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_update_8_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements((THREADS * OPS_PER_THREAD) as u64));
    for &stripes in &[1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(stripes),
            &stripes,
            |bencher, &stripes| {
                let keys = key_names();
                bencher.iter(|| {
                    let store = SketchStore::new(StoreConfig { stripes, k: 256, b: 4, seed: 7 });
                    std::thread::scope(|s| {
                        for t in 0..THREADS {
                            let store = &store;
                            let keys = &keys;
                            s.spawn(move || {
                                let mut gen = StreamGen::new(Distribution::Uniform, t as u64);
                                for i in 0..OPS_PER_THREAD {
                                    // Round-robin with a thread-dependent
                                    // offset: all threads touch all keys.
                                    let key = &keys[(i * THREADS + t) % KEYS];
                                    store.update(key, gen.next_f64());
                                }
                            });
                        }
                    });
                    black_box(store.stats().updates)
                });
            },
        );
    }
    group.finish();
}

fn bench_single_thread_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_update_single_thread");
    group.throughput(Throughput::Elements(1));
    group.bench_function("hot_key", |bencher| {
        let store = SketchStore::new(StoreConfig { stripes: 16, k: 256, b: 4, seed: 3 });
        let mut gen = StreamGen::new(Distribution::Uniform, 5);
        bencher.iter(|| store.update("hot", black_box(gen.next_f64())));
    });
    group.bench_function("key_spray", |bencher| {
        let store = SketchStore::new(StoreConfig { stripes: 16, k: 256, b: 4, seed: 4 });
        let keys = key_names();
        let mut gen = StreamGen::new(Distribution::Uniform, 6);
        let mut i = 0usize;
        bencher.iter(|| {
            i += 1;
            store.update(&keys[i % KEYS], black_box(gen.next_f64()))
        });
    });
    group.finish();
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let store = SketchStore::new(StoreConfig { stripes: 4, k: 256, b: 4, seed: 9 });
    let mut gen = StreamGen::new(Distribution::Normal { mean: 0.0, std_dev: 1.0 }, 11);
    for _ in 0..200_000 {
        store.update("src", gen.next_f64());
    }
    let frame = store.snapshot_bytes("src").unwrap();

    let mut group = c.benchmark_group("store_wire");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("snapshot_bytes", |bencher| {
        bencher.iter(|| black_box(store.snapshot_bytes("src").unwrap()));
    });
    group.bench_function("ingest_bytes", |bencher| {
        let sink = SketchStore::new(StoreConfig { stripes: 4, k: 256, b: 4, seed: 10 });
        bencher.iter(|| sink.ingest_bytes("dst", black_box(&frame)).unwrap());
    });
    group.finish();
}

fn bench_merged_query(c: &mut Criterion) {
    let store = SketchStore::new(StoreConfig { stripes: 16, k: 256, b: 4, seed: 13 });
    let keys = key_names();
    let mut gen = StreamGen::new(Distribution::Uniform, 17);
    for i in 0..400_000usize {
        store.update(&keys[i % KEYS], gen.next_f64());
    }
    let mut group = c.benchmark_group("store_merged_query");
    for &fanin in &[1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(fanin), &fanin, |bencher, &fanin| {
            let subset = &keys[..fanin];
            bencher.iter(|| black_box(store.merged_query(subset, 0.99)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_update_vs_stripes,
    bench_single_thread_update,
    bench_wire_roundtrip,
    bench_merged_query
);
criterion_main!(benches);
