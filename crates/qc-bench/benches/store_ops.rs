//! Keyed-store benchmarks: update throughput vs stripe count (the store's
//! scaling knob), the snapshot/ingest wire path, merged queries — and the
//! **engines axis**: the same store workloads run over the sequential,
//! concurrent, and tiered per-key engines.
//!
//! The headline series is `store_update_8_threads/<stripes>`: 8 writer
//! threads spraying updates across 64 keys. With one stripe every writer
//! contends on one mutex; with 16+ stripes writers mostly own their stripe
//! and throughput should approach the per-sketch ingestion rate.
//!
//! The engines axis asks the tiering questions directly:
//!
//! * `store_engines_hot_key/<engine>` — one key hammered far past the
//!   promotion threshold: tiered must track the concurrent engine, not
//!   the sequential one.
//! * `store_engines_cold_spray/<engine>` — 10 000 keys touched a handful
//!   of times each: tiered must track the sequential engine's memory
//!   profile (the run prints each engine's `retained` footprint — the
//!   concurrent engine preallocates Gather&Sort buffers per key, roughly
//!   an order of magnitude more).
//!
//! The **write-contention axis** (`store_write_hot_key_<n>_threads/`)
//! asks the write-path question: N threads batch-updating ONE hot key,
//! leased shared-lock path (`shared`) vs the exclusive-lock baseline
//! (`fallback`, pinned via `writer_pool(0)`). The multi-thread shared
//! series must scale; the baseline serializes by construction.
//!
//! The **telemetry axis** (`store_telemetry_overhead{,_batched}/`)
//! prices observation itself: identical hot-key write loops against the
//! live default registry vs `Registry::disabled()`. On the batched
//! (throughput-carrying) path the instrumented series must sit within
//! the noise floor (<2%); the single-element series documents the worst
//! case — two sharded relaxed increments against a ~170 ns op.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_common::Summary;
use qc_store::{
    ConcurrentEngine, SequentialEngine, SketchStore, StoreConfig, StoreEngine, TieredEngine,
};
use qc_workloads::streams::{Distribution, StreamGen};

const KEYS: usize = 64;
const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 16 * 1024;

fn key_names() -> Vec<String> {
    (0..KEYS).map(|i| format!("stream-{i:03}")).collect()
}

fn cfg(stripes: usize, seed: u64) -> StoreConfig {
    StoreConfig::default().stripes(stripes).k(256).b(4).seed(seed)
}

fn bench_update_vs_stripes(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_update_8_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements((THREADS * OPS_PER_THREAD) as u64));
    for &stripes in &[1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(stripes),
            &stripes,
            |bencher, &stripes| {
                let keys = key_names();
                bencher.iter(|| {
                    let store = SketchStore::new(cfg(stripes, 7));
                    std::thread::scope(|s| {
                        for t in 0..THREADS {
                            let store = &store;
                            let keys = &keys;
                            s.spawn(move || {
                                let mut gen = StreamGen::new(Distribution::Uniform, t as u64);
                                for i in 0..OPS_PER_THREAD {
                                    // Round-robin with a thread-dependent
                                    // offset: all threads touch all keys.
                                    let key = &keys[(i * THREADS + t) % KEYS];
                                    store.update(key, gen.next_f64());
                                }
                            });
                        }
                    });
                    black_box(store.stats().updates)
                });
            },
        );
    }
    group.finish();
}

fn bench_single_thread_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_update_single_thread");
    group.throughput(Throughput::Elements(1));
    group.bench_function("hot_key", |bencher| {
        let store = SketchStore::new(cfg(16, 3));
        let mut gen = StreamGen::new(Distribution::Uniform, 5);
        bencher.iter(|| store.update("hot", black_box(gen.next_f64())));
    });
    group.bench_function("key_spray", |bencher| {
        let store = SketchStore::new(cfg(16, 4));
        let keys = key_names();
        let mut gen = StreamGen::new(Distribution::Uniform, 6);
        let mut i = 0usize;
        bencher.iter(|| {
            i += 1;
            store.update(&keys[i % KEYS], black_box(gen.next_f64()))
        });
    });
    group.finish();
}

const HOT_OPS: usize = 256 * 1024;

/// Run one engines-axis workload over a given engine type, returning the
/// final stats for the footprint report.
fn run_hot_key<E: StoreEngine<f64>>(seed: u64) -> u64 {
    let store = SketchStore::<f64, E>::with_engine(cfg(4, seed));
    let mut gen = StreamGen::new(Distribution::Uniform, seed);
    // 256k updates on one key: the default promotion threshold (4k) is
    // crossed in the first 2%, so the measurement reflects the steady
    // state of whatever tier the engine settles in.
    for _ in 0..HOT_OPS {
        store.update("hot", gen.next_f64());
    }
    store.stats().updates
}

fn run_cold_spray<E: StoreEngine<f64>>(seed: u64, report: bool, name: &str) -> u64 {
    const COLD_KEYS: usize = 10_000;
    const TOUCHES: usize = 8;
    let store = SketchStore::<f64, E>::with_engine(cfg(64, seed));
    let mut gen = StreamGen::new(Distribution::Uniform, seed);
    for i in 0..COLD_KEYS {
        let key = format!("cold-{i:05}");
        for _ in 0..TOUCHES {
            store.update(&key, gen.next_f64());
        }
    }
    let stats = store.stats();
    if report {
        // The memory-profile half of the engines axis: retained 64-bit
        // words across all 10k cold keys (criterion measures the time
        // half). Tiered must match sequential here, not concurrent.
        println!(
            "store_engines_cold_spray/{name}: {} keys, retained {} words \
             ({} cold / {} hot)",
            stats.keys, stats.retained, stats.cold_keys, stats.hot_keys
        );
    }
    stats.retained
}

fn bench_engines_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_engines_hot_key");
    group.sample_size(10);
    group.throughput(Throughput::Elements(HOT_OPS as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_hot_key::<SequentialEngine>(11)))
    });
    group.bench_function("concurrent", |b| {
        b.iter(|| black_box(run_hot_key::<ConcurrentEngine>(12)))
    });
    group.bench_function("tiered", |b| b.iter(|| black_box(run_hot_key::<TieredEngine>(13))));
    group.finish();

    // One-shot footprint report per engine (outside the timed loops).
    run_cold_spray::<SequentialEngine>(21, true, "sequential");
    run_cold_spray::<ConcurrentEngine>(22, true, "concurrent");
    run_cold_spray::<TieredEngine>(23, true, "tiered");

    let mut group = c.benchmark_group("store_engines_cold_spray");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000 * 8));
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_cold_spray::<SequentialEngine>(21, false, "sequential")))
    });
    group.bench_function("concurrent", |b| {
        b.iter(|| black_box(run_cold_spray::<ConcurrentEngine>(22, false, "concurrent")))
    });
    group.bench_function("tiered", |b| {
        b.iter(|| black_box(run_cold_spray::<TieredEngine>(23, false, "tiered")))
    });
    group.finish();
}

const WRITE_KEY: &str = "hot";
const WRITE_BATCH: usize = 256;
const WRITE_BATCHES_TOTAL: usize = 512;

/// One pass of the hot-key write-contention axis: `threads` writers split
/// `WRITE_BATCHES_TOTAL` batches of `WRITE_BATCH` elements on ONE
/// pre-promoted key. `shared` selects the leased-writer fast path; the
/// baseline pins `writer_pool(0)`, so every batch serializes on the
/// stripe write lock — the cost all hot-key writes paid before leases.
fn write_contention_store(seed: u64, shared: bool) -> SketchStore {
    let mut cfg = cfg(4, seed).promotion_threshold(128);
    if !shared {
        cfg = cfg.writer_pool(0);
    }
    let store = SketchStore::new(cfg);
    // Pre-promote outside the timed loop.
    let mut gen = StreamGen::new(Distribution::Uniform, seed ^ 0xfeed);
    let warm: Vec<f64> = (0..512).map(|_| gen.next_f64()).collect();
    store.update_many(WRITE_KEY, &warm);
    store
}

fn run_write_contention(store: &SketchStore, threads: usize) -> u64 {
    let per_thread = WRITE_BATCHES_TOTAL / threads;
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = &store;
            s.spawn(move || {
                let mut gen = StreamGen::new(Distribution::Uniform, 0x5eed + t as u64);
                let mut batch = vec![0.0f64; WRITE_BATCH];
                for _ in 0..per_thread {
                    for slot in batch.iter_mut() {
                        *slot = gen.next_f64();
                    }
                    store.update_many(WRITE_KEY, &batch);
                }
            });
        }
    });
    store.stats().updates
}

/// The tentpole acceptance axis for the write path: hot-key `update_many`
/// under 1/2/4 threads, leased shared path vs exclusive-lock baseline.
fn bench_write_contention(c: &mut Criterion) {
    for &threads in &[1usize, 2, 4] {
        let mut group = c.benchmark_group(format!("store_write_hot_key_{threads}_threads"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((WRITE_BATCHES_TOTAL * WRITE_BATCH) as u64));
        for (name, shared) in [("shared", true), ("fallback", false)] {
            group.bench_function(name, |bencher| {
                let store = write_contention_store(51 + threads as u64, shared);
                bencher.iter(|| black_box(run_write_contention(&store, threads)));
            });
        }
        group.finish();
    }
}

const MIX_KEYS: usize = 8;
const MIX_OPS: usize = 4096;
const MIX_WRITE_BATCH: usize = 32;

/// One pass of the 90/10 read-write mix over hot keys: op `i` is an
/// `update_many` when `i % 10 == 0`, otherwise alternating `query`/`rank`.
/// `cached` selects the store's summary-cache read path; the baseline
/// re-materializes per read (the cost every read paid before the cache).
fn run_read_mix(store: &SketchStore, keys: &[String], gen: &mut StreamGen, cached: bool) -> u64 {
    let mut answered = 0u64;
    for i in 0..MIX_OPS {
        let key = &keys[i % MIX_KEYS];
        if i % 10 == 0 {
            let batch: Vec<f64> = (0..MIX_WRITE_BATCH).map(|_| gen.next_f64()).collect();
            store.update_many(key, &batch);
        } else if cached {
            let hit = if i % 2 == 0 {
                store.query(key, 0.99).is_some()
            } else {
                store.rank(key, 0.5).is_some()
            };
            answered += hit as u64;
        } else {
            let summary = store.summary_of_uncached(key);
            let hit = match summary {
                Some(s) if i % 2 == 0 => s.quantile::<f64>(0.99).is_some(),
                Some(s) => {
                    black_box(s.rank_fraction(0.5));
                    true
                }
                None => false,
            };
            answered += hit as u64;
        }
    }
    answered
}

fn mix_store(seed: u64) -> (SketchStore, Vec<String>) {
    // ONE stripe: every key collides, the worst case for reader/writer
    // interference — exactly where the RwLock + cache must pay off.
    let store = SketchStore::new(cfg(1, seed));
    let keys: Vec<String> = (0..MIX_KEYS).map(|i| format!("hot-{i:02}")).collect();
    let mut gen = StreamGen::new(Distribution::Uniform, seed ^ 0xabc);
    for key in &keys {
        let batch: Vec<f64> = (0..64 * 1024).map(|_| gen.next_f64()).collect();
        store.update_many(key, &batch);
    }
    (store, keys)
}

/// The tentpole acceptance axis: 90% `query`/`rank`, 10% `update_many`,
/// keys colliding on one stripe — cached read path vs per-read
/// materialization, single-threaded and with 4 mixed-workload threads.
fn bench_read_heavy_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_read_mixed");
    group.sample_size(10);
    group.throughput(Throughput::Elements(MIX_OPS as u64));
    for (name, cached) in [("cached", true), ("uncached", false)] {
        group.bench_function(name, |bencher| {
            let (store, keys) = mix_store(31);
            let mut gen = StreamGen::new(Distribution::Uniform, 37);
            bencher.iter(|| black_box(run_read_mix(&store, &keys, &mut gen, cached)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("store_read_mixed_4_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements((4 * MIX_OPS) as u64));
    for (name, cached) in [("cached", true), ("uncached", false)] {
        group.bench_function(name, |bencher| {
            let (store, keys) = mix_store(41);
            bencher.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..4usize {
                        let store = &store;
                        let keys = &keys;
                        s.spawn(move || {
                            let mut gen = StreamGen::new(Distribution::Uniform, 43 + t as u64);
                            black_box(run_read_mix(store, keys, &mut gen, cached));
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

const TELEMETRY_BATCH: usize = 256;

fn telemetry_store(seed: u64, disabled: bool) -> SketchStore {
    let mut config = cfg(16, seed);
    if disabled {
        config = config.telemetry(std::sync::Arc::new(qc_telemetry::Registry::disabled()));
    }
    SketchStore::new(config)
}

/// The telemetry acceptance axis: identical hot-key write loops against
/// the default live registry vs `Registry::disabled()` inert handles.
///
/// Two workloads bound the cost from both ends:
///
/// * `store_telemetry_overhead_batched/` — the throughput-carrying write
///   path (`update_many`, batch = 256, the write-contention axis shape):
///   two sharded relaxed increments per *batch*, so the instrumented
///   series must sit within the noise floor (<2%) of the disabled one.
/// * `store_telemetry_overhead/` — the worst case: single-element
///   `update`, where those same two increments land on every ~170 ns op.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_telemetry_overhead");
    group.throughput(Throughput::Elements(1));
    for (name, disabled) in [("instrumented", false), ("disabled", true)] {
        group.bench_function(name, |bencher| {
            let store = telemetry_store(77, disabled);
            let mut gen = StreamGen::new(Distribution::Uniform, 78);
            bencher.iter(|| store.update("hot", black_box(gen.next_f64())));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("store_telemetry_overhead_batched");
    group.throughput(Throughput::Elements(TELEMETRY_BATCH as u64));
    for (name, disabled) in [("instrumented", false), ("disabled", true)] {
        group.bench_function(name, |bencher| {
            let store = telemetry_store(79, disabled);
            let mut gen = StreamGen::new(Distribution::Uniform, 80);
            let mut batch = vec![0.0f64; TELEMETRY_BATCH];
            bencher.iter(|| {
                for slot in batch.iter_mut() {
                    *slot = gen.next_f64();
                }
                store.update_many("hot", black_box(&batch));
            });
        });
    }
    group.finish();
}

const WAL_BATCH: usize = 256;

/// A store with the given durability setting, logging into `dir`.
/// `None` is the in-memory baseline every WAL series is priced against.
fn wal_store(
    seed: u64,
    dir: &qc_workloads::TempDir,
    policy: Option<qc_store::FsyncPolicy>,
) -> SketchStore {
    let mut config = cfg(4, seed);
    if let Some(policy) = policy {
        config = config.data_dir(dir.path()).fsync(policy);
    }
    match policy {
        None => SketchStore::new(config),
        Some(_) => SketchStore::<f64>::recover(config).expect("fresh data dir").0,
    }
}

/// The durability acceptance axis: identical hot-key write loops with the
/// log detached (`memory`) and attached under each fsync policy.
///
/// * `store_wal_overhead_batched/` — the throughput-carrying path
///   (`update_many`, batch = 256): one frame append (+ optional fsync)
///   amortized over 256 elements.
/// * `store_wal_overhead/` — the worst case: single-element `update`,
///   one frame and one policy decision per ~170 ns op. `per_frame` here
///   is the price of "ack ⇒ durable" paid on every element — expect
///   orders of magnitude, that is the honest number.
///
/// The log grows unboundedly inside the timed loop by design (no
/// checkpoint runs), matching what a server does between housekeeping
/// sweeps.
fn bench_wal_overhead(c: &mut Criterion) {
    let series: [(&str, Option<qc_store::FsyncPolicy>); 4] = [
        ("memory", None),
        ("wal_off", Some(qc_store::FsyncPolicy::Off)),
        ("wal_interval_1ms", Some(qc_store::FsyncPolicy::Interval(Duration::from_millis(1)))),
        ("wal_per_frame", Some(qc_store::FsyncPolicy::PerFrame)),
    ];

    let mut group = c.benchmark_group("store_wal_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    for (name, policy) in series {
        group.bench_function(name, |bencher| {
            let dir = qc_workloads::TempDir::new("bench-wal");
            let store = wal_store(91, &dir, policy);
            let mut gen = StreamGen::new(Distribution::Uniform, 92);
            bencher.iter(|| store.update("hot", black_box(gen.next_f64())));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("store_wal_overhead_batched");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WAL_BATCH as u64));
    for (name, policy) in series {
        group.bench_function(name, |bencher| {
            let dir = qc_workloads::TempDir::new("bench-wal-batched");
            let store = wal_store(93, &dir, policy);
            let mut gen = StreamGen::new(Distribution::Uniform, 94);
            let mut batch = vec![0.0f64; WAL_BATCH];
            bencher.iter(|| {
                for slot in batch.iter_mut() {
                    *slot = gen.next_f64();
                }
                store.update_many("hot", black_box(&batch));
            });
        });
    }
    group.finish();
}

const GROUP_OPS_PER_THREAD: usize = 32;

/// The group-commit acceptance axis: N concurrent durable writers under
/// `PerFrame`, leader-based group commit (`group`, the default) vs the
/// pre-split per-writer-fsync discipline (`per_writer`, pinned via
/// `wal_group_commit(false)`). Every op is a single-element durable
/// update — one ack ⇒ one covered LSN — so at 1 thread the two series
/// must sit together (one append, one fsync either way), while at 4
/// threads the group series shares each ~170 µs fsync across all
/// writers and must pull multiples ahead of the serialized baseline.
fn bench_wal_group_commit(c: &mut Criterion) {
    for &threads in &[1usize, 2, 4] {
        let mut group = c.benchmark_group(format!("store_wal_group_{threads}_threads"));
        group.sample_size(10);
        group.throughput(Throughput::Elements((threads * GROUP_OPS_PER_THREAD) as u64));
        for (name, grouped) in [("group", true), ("per_writer", false)] {
            group.bench_function(name, |bencher| {
                let dir = qc_workloads::TempDir::new("bench-wal-group");
                let config = cfg(4, 101)
                    .data_dir(dir.path())
                    .fsync(qc_store::FsyncPolicy::PerFrame)
                    .wal_group_commit(grouped);
                let store = SketchStore::<f64>::recover(config).expect("fresh data dir").0;
                bencher.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let store = &store;
                            s.spawn(move || {
                                let mut gen =
                                    StreamGen::new(Distribution::Uniform, 0x9a + t as u64);
                                let key = format!("writer-{t}");
                                for _ in 0..GROUP_OPS_PER_THREAD {
                                    store.update(&key, gen.next_f64());
                                }
                            });
                        }
                    });
                    black_box(store.stats().updates)
                });
            });
        }
        group.finish();
    }
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let store = SketchStore::new(cfg(4, 9));
    let mut gen = StreamGen::new(Distribution::Normal { mean: 0.0, std_dev: 1.0 }, 11);
    for _ in 0..200_000 {
        store.update("src", gen.next_f64());
    }
    let frame = store.snapshot_bytes("src").unwrap();

    let mut group = c.benchmark_group("store_wire");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("snapshot_bytes", |bencher| {
        bencher.iter(|| black_box(store.snapshot_bytes("src").unwrap()));
    });
    group.bench_function("ingest_bytes", |bencher| {
        let sink: SketchStore = SketchStore::new(cfg(4, 10));
        bencher.iter(|| sink.ingest_bytes("dst", black_box(&frame)).unwrap());
    });
    group.finish();
}

fn bench_merged_query(c: &mut Criterion) {
    let store = SketchStore::new(cfg(16, 13));
    let keys = key_names();
    let mut gen = StreamGen::new(Distribution::Uniform, 17);
    for i in 0..400_000usize {
        store.update(&keys[i % KEYS], gen.next_f64());
    }
    let mut group = c.benchmark_group("store_merged_query");
    for &fanin in &[1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(fanin), &fanin, |bencher, &fanin| {
            let subset = &keys[..fanin];
            bencher.iter(|| black_box(store.merged_query(subset, 0.99)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_update_vs_stripes,
    bench_single_thread_update,
    bench_engines_axis,
    bench_write_contention,
    bench_read_heavy_mixed,
    bench_telemetry_overhead,
    bench_wal_overhead,
    bench_wal_group_commit,
    bench_wire_roundtrip,
    bench_merged_query
);
criterion_main!(benches);
