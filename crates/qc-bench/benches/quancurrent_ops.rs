//! Quancurrent hot-path benchmarks: single-thread update at paper
//! parameters, snapshot construction, cached and uncached queries, and an
//! oversubscribed multi-thread update batch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_workloads::streams::{Distribution, StreamGen};
use quancurrent::Quancurrent;

fn bench_update_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("qc_update_single_thread");
    for &(k, b) in &[(1024usize, 16usize), (4096, 16), (4096, 64)] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_b{b}")),
            &(k, b),
            |bencher, &(k, b)| {
                let sketch = Quancurrent::<f64>::builder().k(k).b(b).seed(1).build();
                let mut updater = sketch.updater();
                let mut gen = StreamGen::new(Distribution::Uniform, 2);
                bencher.iter(|| updater.update(black_box(gen.next_f64())));
            },
        );
    }
    group.finish();
}

fn bench_update_multi(c: &mut Criterion) {
    // A 4-thread batch of 64k updates per iteration (measures the full
    // concurrent pipeline; on few-core hosts this is contention-bound).
    let mut group = c.benchmark_group("qc_update_4_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(4 * 64 * 1024));
    group.bench_function("k1024_b16", |bencher| {
        bencher.iter(|| {
            let sketch = Quancurrent::<f64>::builder().k(1024).b(16).seed(3).build();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let mut updater = sketch.updater();
                    s.spawn(move || {
                        let mut gen = StreamGen::new(Distribution::Uniform, t);
                        for _ in 0..64 * 1024 {
                            updater.update(gen.next_f64());
                        }
                    });
                }
            });
            black_box(sketch.stream_len())
        });
    });
    group.finish();
}

fn bench_snapshot_and_query(c: &mut Criterion) {
    let sketch = Quancurrent::<f64>::builder().k(1024).b(16).seed(4).build();
    let mut updater = sketch.updater();
    let mut gen = StreamGen::new(Distribution::Uniform, 5);
    for _ in 0..1_000_000 {
        updater.update(gen.next_f64());
    }
    drop(updater);

    c.bench_function("qc_snapshot/build_1M_stream", |bencher| {
        bencher.iter(|| black_box(sketch.snapshot()));
    });

    c.bench_function("qc_query/cached_hit", |bencher| {
        let mut handle = sketch.query_handle();
        let _ = handle.query(0.5); // warm the cache
        let mut phi = 0.0;
        bencher.iter(|| {
            phi = (phi + 0.037) % 1.0;
            black_box(handle.query(black_box(phi)))
        });
    });

    c.bench_function("qc_query/uncached_rebuild", |bencher| {
        // ρ = 0 sketch: every query rebuilds.
        let cold = Quancurrent::<f64>::builder().k(1024).b(16).rho(0.0).seed(6).build();
        let mut updater = cold.updater();
        let mut gen = StreamGen::new(Distribution::Uniform, 7);
        for _ in 0..100_000 {
            updater.update(gen.next_f64());
        }
        drop(updater);
        let mut handle = cold.query_handle();
        bencher.iter(|| black_box(handle.query(black_box(0.5))));
    });
}

fn bench_relaxation_accounting(c: &mut Criterion) {
    let sketch = Quancurrent::<f64>::builder().k(4096).b(16).seed(8).build();
    c.bench_function("qc_misc/stream_len", |bencher| {
        bencher.iter(|| black_box(sketch.stream_len()));
    });
}

criterion_group!(
    benches,
    bench_update_single,
    bench_update_multi,
    bench_snapshot_and_query,
    bench_relaxation_accounting
);
criterion_main!(benches);
