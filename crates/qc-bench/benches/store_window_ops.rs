//! Windowed-store benchmarks: what does the time axis cost?
//!
//! * `store_window_write/<mode>` — the same 64 batches of 256 values
//!   into one key, `unwindowed` (plain `update_many`) vs `windowed`
//!   (`update_at`, every batch one window later, so each op also seals
//!   the previous window) vs `windowed_same_window` (`update_at` with a
//!   constant timestamp: the pure admission-check overhead, no seals).
//!   The windowed rolling series prices the full seal path — summary
//!   snapshot, `Arc` swap, fresh engine — per window boundary.
//!
//! * `store_window_query/<mode>` — one answer for "p99 over the whole
//!   span" against a key holding 64 sealed windows: `range` is a single
//!   `query_range` over the full span (one merge of all covered
//!   windows), `stitched` asks the same question as 64 per-window
//!   `query_range` calls (the client-side alternative a caller without
//!   the range op would have to do, sans network round-trips — the wire
//!   saving comes on top of whatever this measures).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_store::{SketchStore, StoreConfig, WindowConfig};
use qc_workloads::streams::{Distribution, StreamGen};
use std::time::Duration;

const WINDOWS: u64 = 64;
const BATCH: usize = 256;
const WIDTH_MS: u64 = 1000;

fn windowed_cfg() -> StoreConfig {
    StoreConfig::default().stripes(4).k(256).b(4).seed(7).window(
        WindowConfig::default()
            .width(Duration::from_millis(WIDTH_MS))
            .downsample_levels(0)
            .retention(Duration::from_secs(1 << 20))
            .lateness(Duration::from_secs(1 << 20)),
    )
}

fn batches() -> Vec<Vec<f64>> {
    let mut gen = StreamGen::new(Distribution::Uniform, 11);
    (0..WINDOWS).map(|_| (0..BATCH).map(|_| gen.next_f64()).collect()).collect()
}

fn bench_window_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_window_write");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WINDOWS * BATCH as u64));
    let data = batches();

    group.bench_with_input(BenchmarkId::from_parameter("unwindowed"), &data, |bencher, data| {
        bencher.iter(|| {
            let store = SketchStore::new(StoreConfig::default().stripes(4).k(256).b(4).seed(7));
            for batch in data {
                store.update_many("latency", batch);
            }
            black_box(store.stats().stream_len)
        });
    });

    group.bench_with_input(BenchmarkId::from_parameter("windowed"), &data, |bencher, data| {
        bencher.iter(|| {
            let store = SketchStore::new(windowed_cfg());
            for (w, batch) in data.iter().enumerate() {
                // One window per batch: every op after the first also
                // seals its predecessor.
                store.update_at("latency", w as u64 * WIDTH_MS, batch);
            }
            black_box(store.stats().stream_len)
        });
    });

    group.bench_with_input(
        BenchmarkId::from_parameter("windowed_same_window"),
        &data,
        |bencher, data| {
            bencher.iter(|| {
                let store = SketchStore::new(windowed_cfg());
                for batch in data {
                    store.update_at("latency", 0, batch);
                }
                black_box(store.stats().stream_len)
            });
        },
    );
    group.finish();
}

fn bench_window_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_window_query");
    group.sample_size(10);
    // One full-span answer per iteration, either way.
    group.throughput(Throughput::Elements(1));

    let store = SketchStore::new(windowed_cfg());
    for (w, batch) in batches().iter().enumerate() {
        store.update_at("latency", w as u64 * WIDTH_MS, batch);
    }
    let span_ms = WINDOWS * WIDTH_MS;

    group.bench_function(BenchmarkId::from_parameter("range"), |bencher| {
        bencher.iter(|| black_box(store.query_range("latency", 0, span_ms, 0.99)));
    });

    group.bench_function(BenchmarkId::from_parameter("stitched"), |bencher| {
        bencher.iter(|| {
            // The no-range-op alternative: one query per window, merged
            // client-side (here just folded, which undercounts the real
            // client's work — it would need whole summaries, not phi
            // answers, to merge correctly).
            let mut acc = 0.0f64;
            for w in 0..WINDOWS {
                if let Some(v) =
                    store.query_range("latency", w * WIDTH_MS, (w + 1) * WIDTH_MS, 0.99)
                {
                    acc += v;
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_window_write, bench_window_query);
criterion_main!(benches);
