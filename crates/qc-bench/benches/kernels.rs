//! Micro-benchmarks of the shared kernels: the merge and sampling
//! primitives that dominate propagation cost, and summary construction /
//! query (the per-snapshot and per-query work).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_common::merge::merge_sorted_into;
use qc_common::rng::Xoshiro256;
use qc_common::sample::{sample_odd_or_even, sample_with_parity, Parity};
use qc_common::summary::{Summary, WeightedSummary};

fn sorted_run(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 1).collect();
    v.sort_unstable();
    v
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_sorted");
    for &k in &[256usize, 1024, 4096] {
        let a = sorted_run(k, 1);
        let b = sorted_run(k, 2);
        group.throughput(Throughput::Elements(2 * k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, _| {
            let mut out = Vec::with_capacity(2 * k);
            bencher.iter(|| {
                merge_sorted_into(black_box(&a), black_box(&b), &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

fn bench_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_odd_or_even");
    for &k in &[1024usize, 4096] {
        let src = sorted_run(2 * k, 3);
        group.throughput(Throughput::Elements(2 * k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, _| {
            let mut rng = Xoshiro256::seed_from_u64(7);
            bencher.iter(|| black_box(sample_odd_or_even(black_box(&src), &mut rng)));
        });
    }
    group.finish();
}

fn bench_sample_parity(c: &mut Criterion) {
    let src = sorted_run(8192, 4);
    c.bench_function("sample_with_parity/8192", |bencher| {
        bencher.iter(|| black_box(sample_with_parity(black_box(&src), Parity::Even)));
    });
}

fn bench_summary(c: &mut Criterion) {
    // A realistic snapshot: ~12 levels of k=1024 plus a 2k base.
    let parts: Vec<(Vec<u64>, u64)> = (0..12)
        .map(|i| (sorted_run(1024, i), 1u64 << i))
        .chain(std::iter::once((sorted_run(2048, 99), 1u64)))
        .collect();

    c.bench_function("summary/build_13_levels", |bencher| {
        bencher.iter(|| {
            let refs: Vec<(&[u64], u64)> = parts.iter().map(|(v, w)| (&v[..], *w)).collect();
            black_box(WeightedSummary::from_parts(refs))
        });
    });

    let refs: Vec<(&[u64], u64)> = parts.iter().map(|(v, w)| (&v[..], *w)).collect();
    let summary = WeightedSummary::from_parts(refs);
    c.bench_function("summary/quantile_query", |bencher| {
        let mut phi = 0.0f64;
        bencher.iter(|| {
            phi = (phi + 0.037) % 1.0;
            black_box(summary.quantile_bits(black_box(phi)))
        });
    });
    c.bench_function("summary/rank_query", |bencher| {
        let mut x = 0u64;
        bencher.iter(|| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(summary.rank_bits(black_box(x >> 1)))
        });
    });
}

fn bench_sort_local_buffer(c: &mut Criterion) {
    // Stage-1 cost: sorting the b-element local buffer.
    let mut group = c.benchmark_group("local_buffer_sort");
    for &b in &[16usize, 64, 2048] {
        group.throughput(Throughput::Elements(b as u64));
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bencher, _| {
            let mut rng = Xoshiro256::seed_from_u64(5);
            let template: Vec<u64> = (0..b).map(|_| rng.next_u64()).collect();
            bencher.iter(|| {
                let mut buf = template.clone();
                buf.sort_unstable();
                black_box(buf)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merge,
    bench_sample,
    bench_sample_parity,
    bench_summary,
    bench_sort_local_buffer
);
criterion_main!(benches);
