//! IBR reclamation benchmarks: the per-level-array memory-management cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qc_reclaim::{Domain, DomainConfig, Shared};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

fn bench_alloc_retire(c: &mut Criterion) {
    let domain = Domain::with_config(DomainConfig::default());
    let handle = domain.register();
    c.bench_function("reclaim/alloc_retire_cycle", |bencher| {
        bencher.iter(|| {
            let block = handle.alloc(black_box([0u64; 16]));
            // SAFETY: freshly allocated, never published.
            unsafe { handle.retire(block) };
        });
    });
}

fn bench_alloc_vec_payload(c: &mut Criterion) {
    let domain = Domain::new();
    let handle = domain.register();
    let payload: Vec<u64> = (0..2048).collect();
    c.bench_function("reclaim/alloc_retire_2k_vec", |bencher| {
        bencher.iter(|| {
            let block = handle.alloc(black_box(payload.clone()));
            unsafe { handle.retire(block) };
        });
    });
}

fn bench_pin(c: &mut Criterion) {
    let domain = Domain::new();
    let handle = domain.register();
    c.bench_function("reclaim/pin_unpin", |bencher| {
        bencher.iter(|| {
            let guard = handle.pin();
            black_box(guard.reservation_interval())
        });
    });
}

fn bench_protect(c: &mut Criterion) {
    let domain = Domain::new();
    let handle = domain.register();
    let block = handle.alloc(7u64);
    let word = AtomicU64::new(block.into_raw());
    c.bench_function("reclaim/protected_read", |bencher| {
        let guard = handle.pin();
        bencher.iter(|| {
            let raw = guard.protect(|| word.load(SeqCst));
            let shared = unsafe { Shared::<u64>::from_raw(raw) };
            black_box(unsafe { *shared.deref() })
        });
    });
}

criterion_group!(benches, bench_alloc_retire, bench_alloc_vec_payload, bench_pin, bench_protect);
criterion_main!(benches);
