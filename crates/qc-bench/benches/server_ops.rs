//! Serving-layer benchmarks: end-to-end request throughput over real
//! sockets (loopback), as a function of the two knobs the server exposes:
//!
//! * **pool size** — connection-handling workers; with 4 concurrent
//!   writer connections, 1 worker serializes everything (the baseline)
//!   while ≥4 workers serve all connections in parallel;
//! * **batch size** — values per `update_many` frame; the round-trip cost
//!   amortizes across the batch, so throughput should scale steeply until
//!   the store's per-batch work dominates.
//!
//! Also measured: the query and snapshot paths on a pre-loaded server.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_server::{Client, Server, ServerConfig, ServerHandle};
use qc_store::StoreConfig;

const WRITER_CONNS: usize = 4;
const VALUES_PER_CONN: usize = 8 * 1024;

fn spawn_server(pool_threads: usize) -> ServerHandle {
    let cfg = ServerConfig {
        pool_threads,
        store: StoreConfig::default().stripes(16).k(256).b(4).seed(0xBE7C4),
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port")
}

/// Drive `WRITER_CONNS` concurrent connections, each pushing
/// `VALUES_PER_CONN` values in `batch`-sized frames, and wait for acks.
fn drive_updates(handle: &ServerHandle, batch: usize) {
    let addr = handle.local_addr();
    std::thread::scope(|s| {
        for t in 0..WRITER_CONNS {
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let key = format!("bench-{t}");
                let values: Vec<f64> =
                    (0..VALUES_PER_CONN).map(|i| ((i * 7919) % 65_536) as f64).collect();
                for chunk in values.chunks(batch) {
                    client.update_many(&key, chunk).expect("update_many");
                }
            });
        }
    });
}

fn bench_throughput_vs_pool_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_update_vs_pool");
    group.sample_size(10);
    group.throughput(Throughput::Elements((WRITER_CONNS * VALUES_PER_CONN) as u64));
    for &pool in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(pool), &pool, |bencher, &pool| {
            let handle = spawn_server(pool);
            bencher.iter(|| drive_updates(&handle, 256));
            handle.shutdown();
        });
    }
    group.finish();
}

fn bench_throughput_vs_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_update_vs_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements((WRITER_CONNS * VALUES_PER_CONN) as u64));
    for &batch in &[1usize, 16, 256, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |bencher, &batch| {
            let handle = spawn_server(WRITER_CONNS);
            bencher.iter(|| drive_updates(&handle, batch));
            handle.shutdown();
        });
    }
    group.finish();
}

fn bench_query_paths(c: &mut Criterion) {
    // Pre-loaded server; one client measuring single-request latency.
    let handle = spawn_server(4);
    let mut loader = Client::connect(handle.local_addr()).expect("connect");
    let values: Vec<f64> = (0..200_000).map(|i| ((i * 31) % 100_000) as f64).collect();
    for chunk in values.chunks(1024) {
        loader.update_many("hot", chunk).expect("load");
    }
    let keys = ["hot".to_string()];

    let mut group = c.benchmark_group("server_request");
    group.throughput(Throughput::Elements(1));
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    group.bench_function("query", |bencher| {
        bencher.iter(|| black_box(client.query("hot", black_box(0.99)).unwrap()));
    });
    group.bench_function("rank", |bencher| {
        bencher.iter(|| black_box(client.rank("hot", black_box(50_000.0)).unwrap()));
    });
    group.bench_function("merged_query", |bencher| {
        bencher.iter(|| black_box(client.merged_query(&keys, black_box(0.5)).unwrap()));
    });
    group.bench_function("stats", |bencher| {
        bencher.iter(|| black_box(client.stats().unwrap()));
    });
    let frame_len = client.snapshot_bytes("hot").unwrap().unwrap().len();
    group.throughput(Throughput::Bytes(frame_len as u64));
    group.bench_function("snapshot", |bencher| {
        bencher.iter(|| black_box(client.snapshot_bytes("hot").unwrap()));
    });
    group.finish();
    handle.shutdown();
}

criterion_group!(
    benches,
    bench_throughput_vs_pool_size,
    bench_throughput_vs_batch_size,
    bench_query_paths
);
criterion_main!(benches);
