//! Sequential sketch benchmarks: the single-thread baseline of Figure 6a
//! and the propagator workload inside FCDS.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_common::rng::Xoshiro256;
use qc_common::Summary;
use qc_sequential::QuantilesSketch;

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_update");
    for &k in &[256usize, 1024, 4096] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, &k| {
            let mut sketch = QuantilesSketch::with_seed(k, 1);
            let mut rng = Xoshiro256::seed_from_u64(2);
            bencher.iter(|| sketch.update(black_box(rng.next_u64() >> 1)));
        });
    }
    group.finish();
}

fn bench_ingest_sorted(c: &mut Criterion) {
    let k = 1024;
    let batch: Vec<u64> = (0..8 * k as u64).collect();
    let mut group = c.benchmark_group("sequential_ingest_sorted");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("8k_chunk", |bencher| {
        bencher.iter(|| {
            let mut sketch = QuantilesSketch::with_seed(k, 1);
            sketch.ingest_sorted(black_box(&batch));
            black_box(sketch.n())
        });
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut sketch = QuantilesSketch::with_seed(1024, 3);
    let mut rng = Xoshiro256::seed_from_u64(4);
    for _ in 0..1_000_000 {
        sketch.update(rng.next_u64() >> 1);
    }

    c.bench_function("sequential_query/fresh_summary_each", |bencher| {
        bencher.iter(|| black_box(sketch.quantile_bits(black_box(0.5))));
    });

    let summary = sketch.summary();
    c.bench_function("sequential_query/cached_summary", |bencher| {
        let mut phi = 0.0;
        bencher.iter(|| {
            phi = (phi + 0.037) % 1.0;
            black_box(summary.quantile_bits(black_box(phi)))
        });
    });
}

fn bench_merge_sketches(c: &mut Criterion) {
    let k = 512;
    let mut a = QuantilesSketch::with_seed(k, 5);
    let mut b = QuantilesSketch::with_seed(k, 6);
    let mut rng = Xoshiro256::seed_from_u64(7);
    for _ in 0..200_000 {
        a.update(rng.next_u64() >> 1);
        b.update(rng.next_u64() >> 1);
    }
    c.bench_function("sequential_merge/200k_into_200k", |bencher| {
        bencher.iter(|| {
            let mut target = a.clone();
            target.merge_from(black_box(&b));
            black_box(target.n())
        });
    });
}

criterion_group!(benches, bench_update, bench_ingest_sorted, bench_query, bench_merge_sketches);
criterion_main!(benches);
