//! DCAS substrate benchmarks: the per-batch synchronization cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qc_mwcas::{mwcas, read_plain, Arena, CasPair, MwcasWord};

fn bench_uncontended_dcas(c: &mut Criterion) {
    let arena = Arena::new();
    let a = MwcasWord::new(0);
    let b = MwcasWord::new(0);
    c.bench_function("mwcas/2_word_uncontended", |bencher| {
        bencher.iter(|| {
            let va = read_plain(&a);
            let vb = read_plain(&b);
            black_box(mwcas(
                &arena,
                &[
                    CasPair { word: &a, old: va, new: va + 1 },
                    CasPair { word: &b, old: vb, new: vb + 1 },
                ],
            ))
        });
    });
}

fn bench_failed_dcas(c: &mut Criterion) {
    let arena = Arena::new();
    let a = MwcasWord::new(7);
    let b = MwcasWord::new(9);
    c.bench_function("mwcas/2_word_expected_mismatch", |bencher| {
        bencher.iter(|| {
            black_box(mwcas(
                &arena,
                &[
                    CasPair { word: &a, old: 1, new: 2 }, // wrong expectation
                    CasPair { word: &b, old: 9, new: 10 },
                ],
            ))
        });
    });
}

fn bench_read(c: &mut Criterion) {
    let w = MwcasWord::new(42);
    c.bench_function("mwcas/read_plain", |bencher| {
        bencher.iter(|| black_box(read_plain(black_box(&w))));
    });
}

fn bench_contended_dcas(c: &mut Criterion) {
    // Two threads hammering the same pair: measures helping overhead.
    let mut group = c.benchmark_group("mwcas_contended");
    group.sample_size(10);
    group.bench_function("2_threads_10k_ops", |bencher| {
        bencher.iter(|| {
            let arena = Arena::new();
            let a = MwcasWord::new(0);
            let b = MwcasWord::new(0);
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let arena = &arena;
                    let a = &a;
                    let b = &b;
                    s.spawn(move || {
                        for _ in 0..10_000 {
                            loop {
                                let va = read_plain(a);
                                let vb = read_plain(b);
                                if mwcas(
                                    arena,
                                    &[
                                        CasPair { word: a, old: va, new: va + 1 },
                                        CasPair { word: b, old: vb, new: vb + 1 },
                                    ],
                                ) {
                                    break;
                                }
                            }
                        }
                    });
                }
            });
            black_box(read_plain(&a))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_uncontended_dcas,
    bench_failed_dcas,
    bench_read,
    bench_contended_dcas
);
criterion_main!(benches);
