//! FCDS baseline benchmarks: worker-side update cost and the end-to-end
//! single-worker pipeline (worker + propagator).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_fcds::Fcds;
use qc_workloads::streams::{Distribution, StreamGen};

fn bench_worker_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("fcds_update_single_worker");
    for &buffer in &[256usize, 1024, 4096] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(buffer), &buffer, |bencher, &buffer| {
            let fcds = Fcds::<f64>::new(4096, buffer, 1);
            let mut worker = fcds.updater();
            let mut gen = StreamGen::new(Distribution::Uniform, 1);
            bencher.iter(|| worker.update(black_box(gen.next_f64())));
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fcds_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(256 * 1024));
    group.bench_function("1_worker_256k_drained", |bencher| {
        bencher.iter(|| {
            let fcds = Fcds::<f64>::new(1024, 1024, 1);
            let mut worker = fcds.updater();
            let mut gen = StreamGen::new(Distribution::Uniform, 2);
            for _ in 0..256 * 1024 {
                worker.update(gen.next_f64());
            }
            worker.flush();
            fcds.drain();
            black_box(fcds.stream_len())
        });
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let fcds = Fcds::<f64>::new(1024, 1024, 1);
    let mut worker = fcds.updater();
    let mut gen = StreamGen::new(Distribution::Uniform, 3);
    for _ in 0..1_000_000 {
        worker.update(gen.next_f64());
    }
    worker.flush();
    fcds.drain();
    c.bench_function("fcds_query/summary_rebuild", |bencher| {
        bencher.iter(|| black_box(fcds.query(black_box(0.5))));
    });
}

criterion_group!(benches, bench_worker_update, bench_pipeline, bench_query);
criterion_main!(benches);
