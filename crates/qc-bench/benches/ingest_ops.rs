//! UDP ingest benchmarks, three layers deep:
//!
//! * **codec** — datagram encode/decode throughput as a function of
//!   records per datagram (the CRC pass plus the varint walk; decode
//!   additionally allocates the record vec, so the gap between the two
//!   curves is the allocation cost);
//! * **daemon e2e** — datagrams through a real loopback socket into a
//!   live [`qc_ingest::IngestDaemon`] and down into the store, completion
//!   observed through the daemon's own applied-counter (the counters are
//!   the contract; the bench leans on them the same way the tests do).
//!
//! Values are batched per record exactly as `qc-load` packs them, so the
//! curves here predict the harness's achievable rates.

use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qc_ingest::datagram::{decode_datagram, encode_datagram, Record};
use qc_ingest::{IngestConfig, IngestDaemon};
use qc_store::{SketchStore, StoreConfig};

const VALUES_PER_RECORD: usize = 32;

fn records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|r| Record {
            key: format!("bench-{}", r % 8),
            values: (0..VALUES_PER_RECORD).map(|v| ((r * 131 + v * 17) % 65_536) as f64).collect(),
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut encode_group = c.benchmark_group("ingest_encode");
    for &n in &[1usize, 4, 16] {
        let recs = records(n);
        encode_group.throughput(Throughput::Elements((n * VALUES_PER_RECORD) as u64));
        encode_group.bench_with_input(BenchmarkId::from_parameter(n), &recs, |bencher, recs| {
            bencher.iter(|| black_box(encode_datagram(black_box(recs))));
        });
    }
    encode_group.finish();

    let mut decode_group = c.benchmark_group("ingest_decode");
    for &n in &[1usize, 4, 16] {
        let bytes = encode_datagram(&records(n));
        decode_group.throughput(Throughput::Elements((n * VALUES_PER_RECORD) as u64));
        decode_group.bench_with_input(BenchmarkId::from_parameter(n), &bytes, |bencher, bytes| {
            bencher.iter(|| black_box(decode_datagram(black_box(bytes)).expect("valid datagram")));
        });
    }
    decode_group.finish();
}

fn bench_daemon_e2e(c: &mut Criterion) {
    const DATAGRAMS: usize = 512;
    const RECORDS: usize = 4;
    let mut group = c.benchmark_group("ingest_daemon_e2e");
    group.sample_size(10);
    group.throughput(Throughput::Elements((DATAGRAMS * RECORDS * VALUES_PER_RECORD) as u64));
    for &processors in &[1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(processors),
            &processors,
            |bencher, &processors| {
                let store = Arc::new(SketchStore::new(
                    StoreConfig::default().stripes(16).k(256).b(4).seed(0x1463),
                ));
                let daemon = IngestDaemon::spawn(
                    Arc::clone(&store),
                    IngestConfig::default().processors(processors).queue_capacity(4096),
                )
                .expect("spawn daemon");
                let socket = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
                socket.connect(daemon.local_addr()).expect("connect sender");
                let bytes = encode_datagram(&records(RECORDS));
                let applied =
                    || store.telemetry_snapshot().counter("ingest_applied_datagrams").unwrap_or(0);
                bencher.iter(|| {
                    let target = applied() + DATAGRAMS as u64;
                    let mut sent = 0usize;
                    // Completion via the daemon's own counters: keep the
                    // offered side honest (re-send what the kernel or the
                    // queue shed) until everything is applied.
                    while applied() < target {
                        if sent < DATAGRAMS {
                            socket.send(&bytes).expect("send");
                            sent += 1;
                            if sent.is_multiple_of(64) {
                                std::thread::sleep(Duration::from_micros(50));
                            }
                        } else {
                            // Outstanding datagrams still draining; if some
                            // were shed, top the run back up.
                            std::thread::sleep(Duration::from_micros(200));
                            let snap = store.telemetry_snapshot();
                            let lost = snap.counter("ingest_dropped_queue").unwrap_or(0)
                                + snap.counter("ingest_dropped_decode").unwrap_or(0)
                                + snap.counter("ingest_dropped_oversized").unwrap_or(0);
                            let received = snap.counter("ingest_datagrams").unwrap_or(0);
                            if received.saturating_sub(lost) < target {
                                socket.send(&bytes).expect("resend");
                            }
                        }
                    }
                });
                daemon.shutdown();
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_daemon_e2e);
criterion_main!(benches);
