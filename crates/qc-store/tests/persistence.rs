//! Durability end-to-end at the store layer: log → recover round-trips,
//! checkpoint compaction, torn-tail repair, and the LSN skip rule that
//! keeps checkpoints and log replay from double-counting.
//!
//! The store is deterministic for a single-threaded op sequence (key
//! seeds derive from the config seed), so most assertions here are exact
//! — byte-identical snapshot frames, exact stream lengths — not "close
//! enough" bounds.

use qc_common::summary::Summary;
use qc_store::persist::{parse_segment, RecordError};
use qc_store::{FsyncPolicy, SketchStore, StoreConfig};
use qc_workloads::tempdir::TempDir;

fn cfg(dir: &TempDir) -> StoreConfig {
    StoreConfig::default().stripes(4).k(64).b(4).seed(7).data_dir(dir.path())
}

/// Newest log segment in a data dir (the active one).
fn active_segment(dir: &TempDir) -> std::path::PathBuf {
    let mut segments: Vec<String> = std::fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("wal-") && n.ends_with(".log"))
        .collect();
    segments.sort();
    dir.path().join(segments.last().expect("an active segment exists"))
}

#[test]
fn fresh_dir_recovers_to_an_empty_store() {
    let dir = TempDir::new("persist-fresh");
    let (store, report) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    assert!(store.is_empty());
    assert_eq!(report.records_applied, 0);
    assert_eq!(report.checkpoint_seq, None);
    assert!(report.corruption.is_none());
    assert_eq!(store.data_dir(), Some(dir.path()));
}

#[test]
fn logged_operations_replay_byte_identically() {
    let dir = TempDir::new("persist-replay");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    for i in 0..500 {
        store.update("lat", i as f64);
    }
    let batch: Vec<f64> = (0..200).map(|i| (i * 3) as f64).collect();
    store.update_many("size", &batch);
    // An ingest into a third key, round-tripping through the wire format.
    let frame = store.snapshot_bytes("lat").unwrap();
    store.ingest_bytes("lat-replica", &frame).unwrap();
    // And a remove, which must replay as a remove.
    store.update("doomed", 1.0);
    assert!(store.remove("doomed"));

    let before: Vec<(String, Vec<u8>)> = {
        let mut keys = store.keys();
        keys.sort();
        keys.iter().map(|k| (k.clone(), store.snapshot_bytes(k).unwrap())).collect()
    };
    drop(store);

    let (recovered, report) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    assert!(report.corruption.is_none(), "clean shutdown must recover cleanly: {report:?}");
    assert!(report.records_applied > 0);
    let mut keys = recovered.keys();
    keys.sort();
    assert_eq!(
        keys,
        before.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
        "recovered key set"
    );
    for (key, frame) in &before {
        assert_eq!(
            recovered.snapshot_bytes(key).as_ref(),
            Some(frame),
            "summary for {key} must recover byte-identically"
        );
    }
    assert_eq!(recovered.stats().stream_len, 500 + 200 + 500);
}

#[test]
fn checkpoint_compacts_and_recovery_does_not_double_count() {
    let dir = TempDir::new("persist-ckpt");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    for i in 0..300 {
        store.update("a", i as f64);
        store.update("b", (i * 2) as f64);
    }
    let stats = store.checkpoint().unwrap().expect("dirty log must checkpoint");
    assert_eq!(stats.keys, 2);
    assert!(stats.segments_pruned >= 1, "the sealed segment must be pruned");
    // Writes after the checkpoint land in the new segment and replay on
    // top of the checkpointed summaries.
    for i in 0..50 {
        store.update("a", (1000 + i) as f64);
    }
    let total_before = store.stats().stream_len;
    assert_eq!(total_before, 650);
    drop(store);

    let (recovered, report) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    assert_eq!(report.checkpoint_keys, 2);
    assert!(report.corruption.is_none());
    assert_eq!(
        recovered.stats().stream_len,
        total_before,
        "checkpoint + tail replay must conserve weight exactly (no double count)"
    );
    // A second recovery from the same (now re-logged) directory is stable.
    drop(recovered);
    let (again, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    assert_eq!(again.stats().stream_len, total_before);
}

#[test]
fn checkpoint_skips_idle_stores() {
    let dir = TempDir::new("persist-idle");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    assert!(store.checkpoint().unwrap().is_none(), "no appends → nothing to checkpoint");
    store.update("k", 1.0);
    assert!(store.checkpoint().unwrap().is_some());
    assert!(store.checkpoint().unwrap().is_none(), "no appends since the last pass");
}

#[test]
fn in_memory_store_has_no_persistence() {
    let store = SketchStore::new(StoreConfig::default().k(64).b(4));
    store.update("k", 1.0);
    assert_eq!(store.data_dir(), None);
    assert!(store.checkpoint().unwrap().is_none());
}

#[test]
fn torn_tail_is_reported_truncated_and_conserved() {
    let dir = TempDir::new("persist-torn");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    // Five one-element batches → five records with known boundaries.
    for i in 0..5 {
        store.update("k", i as f64);
    }
    drop(store);

    // Tear the last frame: cut one byte off its CRC trailer.
    let path = active_segment(&dir);
    let bytes = std::fs::read(&path).unwrap();
    let scan = parse_segment(&bytes);
    assert_eq!(scan.records.len(), 5);
    assert!(scan.error.is_none());
    let cut = scan.records[4].end - 1;
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let (recovered, report) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    let corruption = report.corruption.expect("torn tail must be reported");
    assert!(
        matches!(corruption.error, RecordError::Torn { .. }),
        "typed torn-frame error, got {:?}",
        corruption.error
    );
    assert_eq!(corruption.offset, scan.records[4].start as u64);
    assert_eq!(report.records_applied, 4, "the clean prefix replays");
    assert_eq!(recovered.stats().stream_len, 4);
    // The tail was physically truncated: segment ends exactly at the cut.
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        scan.records[4].start as u64,
        "torn frame must be truncated away"
    );
    drop(recovered);

    // The next recovery sees a clean log (plus whatever the repaired
    // store logged — nothing here) and the same weight.
    let (again, report) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    assert!(report.corruption.is_none(), "repair must be durable: {report:?}");
    assert_eq!(again.stats().stream_len, 4);
}

#[test]
fn bitflip_in_the_log_stops_replay_with_a_checksum_error() {
    let dir = TempDir::new("persist-flip");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    for i in 0..5 {
        store.update("k", i as f64);
    }
    drop(store);

    let path = active_segment(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let scan = parse_segment(&bytes);
    // Flip one bit inside the third record's body.
    let target = scan.records[2].start + 6;
    bytes[target] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let (recovered, report) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    let corruption = report.corruption.expect("corrupt frame must be reported");
    assert!(
        matches!(
            corruption.error,
            RecordError::ChecksumMismatch { .. } | RecordError::Malformed { .. }
        ),
        "typed corruption, got {:?}",
        corruption.error
    );
    assert_eq!(recovered.stats().stream_len, 2, "records before the flip replay, nothing after");
}

#[test]
fn all_fsync_policies_round_trip_a_clean_shutdown() {
    for policy in [
        FsyncPolicy::PerFrame,
        FsyncPolicy::Interval(std::time::Duration::from_millis(5)),
        FsyncPolicy::Off,
    ] {
        let dir = TempDir::new("persist-policy");
        let (store, _) = SketchStore::<f64>::recover(cfg(&dir).fsync(policy)).unwrap();
        for i in 0..100 {
            store.update("k", i as f64);
        }
        drop(store);
        // Clean shutdown: the bytes are written (if not necessarily
        // fsync'd), so same-machine recovery sees all of them.
        let (recovered, report) = SketchStore::<f64>::recover(cfg(&dir).fsync(policy)).unwrap();
        assert!(report.corruption.is_none());
        assert_eq!(recovered.stats().stream_len, 100, "policy {policy:?}");
    }
}

#[test]
fn remove_then_recreate_replays_in_order() {
    let dir = TempDir::new("persist-remove");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    for i in 0..100 {
        store.update("k", i as f64);
    }
    store.remove("k");
    for i in 0..30 {
        store.update("k", (i + 5000) as f64);
    }
    drop(store);
    let (recovered, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    assert_eq!(
        recovered.stats().stream_len,
        30,
        "the remove must replay between the two write bursts"
    );
    // Everything the key holds post-recovery comes from the second burst.
    assert!(recovered.query("k", 0.0).unwrap() >= 5000.0);
}

#[test]
fn checkpoint_then_remove_replays_the_remove() {
    let dir = TempDir::new("persist-ckpt-remove");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    for i in 0..50 {
        store.update("gone", i as f64);
        store.update("kept", i as f64);
    }
    store.checkpoint().unwrap().expect("checkpoint");
    store.remove("gone");
    drop(store);
    let (recovered, report) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    assert_eq!(report.checkpoint_keys, 2);
    let mut keys = recovered.keys();
    keys.sort();
    assert_eq!(keys, vec!["kept".to_string()], "post-checkpoint remove must replay");
    assert_eq!(recovered.stats().stream_len, 50);
}

#[test]
fn clean_shutdown_syncs_the_buffered_tail_under_every_policy() {
    use std::sync::Arc;
    for policy in [
        FsyncPolicy::Off,
        FsyncPolicy::Interval(std::time::Duration::from_secs(3600)),
        FsyncPolicy::PerFrame,
    ] {
        let dir = TempDir::new("persist-shutdown");
        let registry = Arc::new(qc_telemetry::Registry::new());
        let (store, _) =
            SketchStore::<f64>::recover(cfg(&dir).fsync(policy).telemetry(registry.clone()))
                .unwrap();
        for i in 0..10 {
            store.update("k", i as f64);
        }
        let before = registry.snapshot();
        let lazy = !matches!(policy, FsyncPolicy::PerFrame);
        if lazy {
            // Nothing forced these frames to disk yet — exactly the tail
            // a hard kill would lose, and a clean stop must not.
            assert_eq!(before.counter("wal_fsyncs"), Some(0), "{policy:?}: lazy before stop");
        }
        // Dropping the store is the clean stop: its Drop runs `sync()`.
        drop(store);
        let after = registry.snapshot();
        if lazy {
            assert_eq!(
                after.counter("wal_fsyncs"),
                Some(1),
                "{policy:?}: clean stop must flush the tail in one sync"
            );
            assert_eq!(after.gauge("wal_durable_lsn"), Some(10), "{policy:?}");
        } else {
            assert_eq!(
                after.counter("wal_fsyncs"),
                before.counter("wal_fsyncs"),
                "{policy:?}: PerFrame acks were already durable; shutdown adds nothing"
            );
        }
        let (recovered, report) = SketchStore::<f64>::recover(cfg(&dir).fsync(policy)).unwrap();
        assert!(report.corruption.is_none());
        assert_eq!(
            recovered.stats().stream_len,
            10,
            "clean stop loses zero acked frames ({policy:?})"
        );
    }
}

#[test]
fn explicit_sync_reports_whether_a_physical_sync_ran() {
    let dir = TempDir::new("persist-sync");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir).fsync(FsyncPolicy::Off)).unwrap();
    assert!(!store.sync(), "empty log: nothing to flush");
    store.update("k", 1.0);
    assert!(store.sync(), "buffered tail must flush");
    assert!(!store.sync(), "already durable");
    let memory = SketchStore::new(StoreConfig::default().k(64).b(4));
    memory.update("k", 1.0);
    assert!(!memory.sync(), "no persistence, nothing to sync");
}

/// The acceptance-criterion regression for the lock split: while a group
/// commit's disk wait is pending (made observable by a long leader
/// hold-off), no stripe lock and no WAL append mutex may be held — a
/// reader on the written key must answer immediately, and a second
/// durable writer must append freely and ride the open group instead of
/// leading its own.
#[test]
fn no_store_lock_is_held_across_the_group_commit_window() {
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    let dir = TempDir::new("persist-lockorder");
    let registry = Arc::new(qc_telemetry::Registry::new());
    let config = cfg(&dir)
        .fsync(FsyncPolicy::PerFrame)
        .group_commit_delay(Duration::from_millis(400))
        .telemetry(registry.clone());
    let (store, _) = SketchStore::<f64>::recover(config).unwrap();
    let store = Arc::new(store);
    // Create the key durably up front (one 400ms group of its own).
    store.update("warm", 0.0);

    let leader = {
        let store = store.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            store.update("warm", 1.0);
            start.elapsed()
        })
    };
    std::thread::sleep(Duration::from_millis(80));
    // Appends while the leader's hold-off is open ride its group.
    let rider = {
        let store = store.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            store.update("rider", 2.0);
            start.elapsed()
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    // A read on the same key while the group's sync is pending: if any
    // stripe lock or the append mutex were held across the hold-off +
    // fsync, this would block out the rest of the 400ms window.
    let read_start = Instant::now();
    let answer = store.query("warm", 0.5);
    let read_elapsed = read_start.elapsed();
    assert!(answer.is_some());

    let leader_elapsed = leader.join().unwrap();
    let rider_elapsed = rider.join().unwrap();
    assert!(
        leader_elapsed >= Duration::from_millis(400),
        "the leader holds its election open for the full delay: {leader_elapsed:?}"
    );
    assert!(
        read_elapsed < Duration::from_millis(250),
        "reads must not wait behind a pending group commit: {read_elapsed:?}"
    );
    assert!(
        rider_elapsed < leader_elapsed,
        "the rider (started 80ms later) wakes with the leader's sync: \
         rider {rider_elapsed:?} vs leader {leader_elapsed:?}"
    );

    let snap = registry.snapshot();
    assert_eq!(snap.counter("wal_appends"), Some(3));
    assert_eq!(snap.counter("wal_fsyncs"), Some(2), "setup group + one shared group");
    assert_eq!(snap.counter("wal_group_commits"), Some(2));
    assert_eq!(snap.gauge("wal_durable_lsn"), Some(3), "every append covered");
    let sizes = snap.latency("wal_group_size").expect("group sizes recorded");
    assert_eq!(sizes.stream_len(), 2, "one sample per group commit");
}

#[test]
fn wal_counters_track_appends_and_fsyncs_exactly() {
    let dir = TempDir::new("persist-counters");
    let (store, _) = SketchStore::<f64>::recover(cfg(&dir)).unwrap();
    for i in 0..7 {
        store.update("k", i as f64);
    }
    store.update_many("k", &[1.0, 2.0, 3.0]);
    let snap = store.telemetry().snapshot();
    assert_eq!(snap.counter("wal_appends"), Some(8), "7 singles + 1 batch");
    // PerFrame: every append syncs.
    assert_eq!(snap.counter("wal_fsyncs"), Some(8));
    assert_eq!(snap.counter("wal_errors"), Some(0));
    // wal_bytes is exactly the active segment's size minus its header.
    let on_disk = std::fs::metadata(active_segment(&dir)).unwrap().len();
    assert_eq!(snap.counter("wal_bytes"), Some(on_disk - 8), "frame bytes = file minus header");
}
