//! Property tests for the durable segment format: an *independently*
//! hand-encoded segment (built here from the published layout, not via
//! the store's own writer) must parse back exactly, and every flavour of
//! damage — truncation at any byte, single bit flips, garbage tails,
//! hostile length fields — must yield a clean-prefix scan with a typed
//! error. Never a panic, and never an allocation sized by attacker-
//! controlled bytes rather than by the actual file.

use proptest::prelude::*;
use qc_common::summary::{WeightedItem, WeightedSummary};
use qc_store::persist::{
    parse_checkpoint, parse_segment, RecordError, RecordOp, FILE_HEADER_LEN, MAX_RECORD_LEN,
    PERSIST_VERSION, SEGMENT_MAGIC,
};
use qc_store::wire::{crc32, encode_summary, put_varint};

/// A record spec the test encodes by hand, straight from the format doc.
#[derive(Clone, Debug)]
enum Spec {
    UpdateMany { key: String, window: u64, value_bits: Vec<u64> },
    Ingest { key: String, items: Vec<(u64, u64)> },
    Remove { key: String },
}

fn key_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 1..16).prop_map(|bytes| {
        // Arbitrary (possibly multi-byte) UTF-8 via lossy conversion;
        // keys in the log are length-prefixed, so nothing is off-limits.
        String::from_utf8_lossy(&bytes).into_owned()
    })
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (key_strategy(), any::<u64>(), prop::collection::vec(any::<u64>(), 1..24))
            .prop_map(|(key, window, value_bits)| Spec::UpdateMany { key, window, value_bits }),
        (key_strategy(), prop::collection::vec((any::<u64>(), 1u64..1 << 20), 0..16))
            .prop_map(|(key, items)| Spec::Ingest { key, items }),
        key_strategy().prop_map(|key| Spec::Remove { key }),
    ]
}

/// Independent encoder: opcode, varint lsn, varint key length, key bytes,
/// opcode-specific payload — framed as `u32 LE body-len | body | u32 LE
/// crc32(body)`. Deliberately NOT the store's own `Wal`, so the two
/// implementations check each other.
fn encode_record(lsn: u64, spec: &Spec) -> Vec<u8> {
    let mut body = Vec::new();
    let (opcode, key) = match spec {
        Spec::UpdateMany { key, .. } => (0x01u8, key),
        Spec::Ingest { key, .. } => (0x02, key),
        Spec::Remove { key } => (0x03, key),
    };
    body.push(opcode);
    put_varint(&mut body, lsn);
    put_varint(&mut body, key.len() as u64);
    body.extend_from_slice(key.as_bytes());
    match spec {
        Spec::UpdateMany { window, value_bits, .. } => {
            put_varint(&mut body, *window);
            put_varint(&mut body, value_bits.len() as u64);
            for bits in value_bits {
                body.extend_from_slice(&bits.to_le_bytes());
            }
        }
        Spec::Ingest { items, .. } => {
            let summary = WeightedSummary::from_items(
                items.iter().map(|&(v, w)| WeightedItem { value_bits: v, weight: w }).collect(),
            );
            body.extend_from_slice(&encode_summary(&summary));
        }
        Spec::Remove { .. } => {}
    }
    let mut frame = Vec::with_capacity(body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    let crc = crc32(&body);
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

fn encode_segment(specs: &[Spec]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.extend_from_slice(&PERSIST_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u16.to_le_bytes());
    for (i, spec) in specs.iter().enumerate() {
        bytes.extend_from_slice(&encode_record(i as u64 + 1, spec));
    }
    bytes
}

/// The parsed records a scan returned must be exactly the leading specs.
fn assert_is_prefix(scan: &qc_store::persist::SegmentScan, specs: &[Spec]) {
    assert!(scan.records.len() <= specs.len());
    for (parsed, spec) in scan.records.iter().zip(specs) {
        match (&parsed.record.op, spec) {
            (
                RecordOp::UpdateMany { key, value_bits, window },
                Spec::UpdateMany { key: k, window: w, value_bits: v },
            ) => {
                assert_eq!(key, k);
                assert_eq!(window, w);
                assert_eq!(value_bits, v);
            }
            (RecordOp::Ingest { key, .. }, Spec::Ingest { key: k, .. }) => assert_eq!(key, k),
            (RecordOp::Remove { key }, Spec::Remove { key: k }) => assert_eq!(key, k),
            (got, want) => panic!("record class mismatch: got {got:?}, want {want:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conformance: the format doc is sufficient to write a compatible
    /// encoder, and the parser accepts every record of it bit-exactly.
    #[test]
    fn hand_encoded_segments_parse_back_exactly(
        specs in prop::collection::vec(spec_strategy(), 0..20),
    ) {
        let scan = parse_segment(&encode_segment(&specs));
        prop_assert!(scan.error.is_none(), "clean segment must scan clean: {:?}", scan.error);
        prop_assert_eq!(scan.records.len(), specs.len());
        assert_is_prefix(&scan, &specs);
        for (i, parsed) in scan.records.iter().enumerate() {
            prop_assert_eq!(parsed.record.lsn, i as u64 + 1);
        }
    }

    /// Truncation at ANY byte boundary yields the clean prefix of whole
    /// frames, plus a typed `Torn` for the partial one (if any).
    #[test]
    fn every_truncation_is_a_clean_prefix(
        specs in prop::collection::vec(spec_strategy(), 1..12),
        cut in 0.0f64..1.0,
    ) {
        let bytes = encode_segment(&specs);
        let full = parse_segment(&bytes);
        let len = (bytes.len() as f64 * cut) as usize;
        let scan = parse_segment(&bytes[..len]);
        assert_is_prefix(&scan, &specs);
        if len < FILE_HEADER_LEN {
            prop_assert!(scan.error.is_some(), "headerless stub must be an error");
            prop_assert!(scan.records.is_empty());
        } else {
            // Exactly the frames that fit wholly before the cut survive.
            let expect = full.records.iter().filter(|r| r.end <= len).count();
            prop_assert_eq!(scan.records.len(), expect);
            match &scan.error {
                None => {
                    // A cut landing exactly on a frame (or header)
                    // boundary is indistinguishable from a cleanly
                    // closed shorter segment — clean is correct there.
                    let boundary = scan.records.last().map_or(FILE_HEADER_LEN, |r| r.end);
                    prop_assert_eq!(len, boundary, "short read scanned clean");
                }
                Some((offset, RecordError::Torn { .. })) => {
                    prop_assert_eq!(*offset, scan.records.last().map_or(FILE_HEADER_LEN, |r| r.end));
                }
                Some((_, other)) => prop_assert!(false, "unexpected error class: {other:?}"),
            }
        }
    }

    /// A single bit flip anywhere can lose frames from the flip onward —
    /// never a panic, never a *wrong* record accepted before the flip.
    #[test]
    fn single_bit_flips_never_panic_and_never_forge_records(
        specs in prop::collection::vec(spec_strategy(), 1..12),
        pos in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut bytes = encode_segment(&specs);
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        let scan = parse_segment(&bytes);
        if idx < FILE_HEADER_LEN {
            // Header damage: no record may be trusted.
            prop_assert!(scan.error.is_some());
            prop_assert!(scan.records.is_empty());
        } else {
            // Frames wholly before the flipped byte are untouched; the
            // scan may not run past the flip without noticing.
            prop_assert!(scan.error.is_some(), "bit flip at {idx} went unnoticed");
            assert_is_prefix(&scan, &specs);
            prop_assert!(
                scan.records.iter().all(|r| r.end <= idx),
                "a record overlapping the flipped byte was accepted"
            );
        }
    }

    /// Garbage appended after valid frames: the prefix still parses, the
    /// tail is a typed error.
    #[test]
    fn garbage_tails_keep_the_valid_prefix(
        specs in prop::collection::vec(spec_strategy(), 0..8),
        tail in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let mut bytes = encode_segment(&specs);
        bytes.extend_from_slice(&tail);
        let scan = parse_segment(&bytes);
        // The garbage could *begin* with a plausible frame header; all we
        // guarantee is that every original record survives in order and
        // the scan terminates with a typed error rather than a panic.
        prop_assert!(scan.records.len() >= specs.len());
        prop_assert!(scan.error.is_some(), "a random tail cannot be an exact frame sequence");
        for (parsed, spec) in scan.records.iter().zip(specs.iter()) {
            let key = match spec {
                Spec::UpdateMany { key, .. } | Spec::Ingest { key, .. } | Spec::Remove { key } => key,
            };
            prop_assert_eq!(parsed.record.op.key(), key);
        }
    }

    /// Entirely random bytes: both parsers must return, not panic, and
    /// never mistake garbage length fields for something worth trusting.
    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = parse_segment(&bytes);
        let _ = parse_checkpoint(&bytes);
    }

    /// Hostile length fields: a frame header claiming up to `u32::MAX`
    /// bytes is rejected by arithmetic on the buffer it actually has —
    /// `Oversized` past the cap, `Torn` below it — with no allocation
    /// proportional to the claim.
    #[test]
    fn hostile_length_fields_are_bounded(claim in 0u32..u32::MAX) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&PERSIST_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&claim.to_le_bytes());
        let scan = parse_segment(&bytes);
        prop_assert!(scan.records.is_empty());
        match scan.error {
            Some((offset, RecordError::Oversized { length, .. })) => {
                prop_assert_eq!(offset, FILE_HEADER_LEN);
                prop_assert!(length > MAX_RECORD_LEN);
            }
            Some((_, RecordError::Torn { .. })) => {
                prop_assert!((claim as usize) <= MAX_RECORD_LEN);
            }
            other => prop_assert!(false, "unexpected outcome: {other:?}"),
        }
    }

    /// Wrong magic / reserved flags / future versions are typed header
    /// errors before any record is considered.
    #[test]
    fn header_skew_is_rejected(
        specs in prop::collection::vec(spec_strategy(), 1..4),
        magic_byte in any::<u8>(),
        version in 2u16..u16::MAX,
        flags in 1u16..u16::MAX,
    ) {
        let good = encode_segment(&specs);

        let mut bad_magic = good.clone();
        prop_assume!(magic_byte != SEGMENT_MAGIC[0]);
        bad_magic[0] = magic_byte;
        let scan = parse_segment(&bad_magic);
        prop_assert!(matches!(scan.error, Some((0, RecordError::BadFileHeader { .. }))));
        prop_assert!(scan.records.is_empty());

        let mut skewed = good.clone();
        skewed[4..6].copy_from_slice(&version.to_le_bytes());
        let scan = parse_segment(&skewed);
        prop_assert!(matches!(
            scan.error,
            Some((0, RecordError::UnsupportedVersion { found, .. })) if found == version
        ));

        let mut flagged = good;
        flagged[6..8].copy_from_slice(&flags.to_le_bytes());
        let scan = parse_segment(&flagged);
        prop_assert!(matches!(
            scan.error,
            Some((0, RecordError::ReservedFlags { found })) if found == flags
        ));
    }
}
