//! Accuracy drift of repeated small ingests vs one bulk merge.
//!
//! Regression for the compounding-compaction bug: every `ingest_bytes`
//! into a `ConcurrentEngine` used to re-run randomized compaction on the
//! whole absorbed summary, so N small ingests paid N compaction passes —
//! each one perturbing ranks — where a single bulk merge pays one. With
//! the absorb buffer, sub-threshold ingests are retained verbatim and the
//! buffer folds in one pass per `ABSORB_COMPACT_FACTOR·k` retained
//! elements, so the incremental path's error stays within the same ε(k)
//! budget as the bulk path instead of drifting with N.

use qc_common::error::sequential_epsilon;
use qc_common::{OrderedBits, Summary, WeightedSummary};
use qc_store::{encode_summary, ConcurrentEngine, SketchStore, StoreConfig};

const TOTAL: usize = 8192;
const CHUNKS: usize = 128;
const K: usize = 64;

fn store() -> SketchStore<f64, ConcurrentEngine> {
    SketchStore::with_engine(StoreConfig::default().stripes(2).k(K).b(4).seed(17))
}

/// Frame holding the given values with unit weight.
fn frame_of(values: &[f64]) -> Vec<u8> {
    let mut bits: Vec<u64> = values.iter().map(|v| v.to_ordered_bits()).collect();
    bits.sort_unstable();
    encode_summary(&WeightedSummary::from_parts([(&bits[..], 1u64)]))
}

/// Max |estimated rank − φ| over a φ grid, against the exact uniform
/// stream 0..TOTAL.
fn max_rank_error(summary: &WeightedSummary) -> f64 {
    let mut worst: f64 = 0.0;
    for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let exact_value = phi * TOTAL as f64;
        let est = summary.rank_fraction(exact_value);
        worst = worst.max((est - phi).abs());
    }
    worst
}

#[test]
fn n_small_ingests_match_one_bulk_merge_within_epsilon() {
    let all: Vec<f64> = (0..TOTAL).map(|i| i as f64).collect();

    // Incremental: 128 strided 64-element chunks (each a representative
    // sample of the full range, like periodic shard snapshots).
    let incremental = store();
    for c in 0..CHUNKS {
        let chunk: Vec<f64> = (0..TOTAL / CHUNKS).map(|i| (i * CHUNKS + c) as f64).collect();
        let n = incremental.ingest_bytes("key", &frame_of(&chunk)).expect("chunk ingests");
        assert_eq!(n as usize, TOTAL / CHUNKS);
    }

    // Bulk: the same 8192 elements in one frame.
    let bulk = store();
    bulk.ingest_bytes("key", &frame_of(&all)).expect("bulk ingests");

    let inc_summary = incremental.summary_of("key").expect("present");
    let bulk_summary = bulk.summary_of("key").expect("present");

    // Exact conservation on both paths, however many compactions fired.
    assert_eq!(inc_summary.stream_len(), TOTAL as u64);
    assert_eq!(bulk_summary.stream_len(), TOTAL as u64);

    let eps = sequential_epsilon(K);
    let inc_err = max_rank_error(&inc_summary);
    let bulk_err = max_rank_error(&bulk_summary);
    // Both paths must sit inside the usual high-probability budget (the
    // 4ε slack every suite in this workspace uses for fixed seeds). The
    // incremental bound is the regression: with per-ingest re-compaction
    // the 128-ingest path compounds far past it.
    assert!(bulk_err <= 4.0 * eps, "bulk path error {bulk_err} > 4ε = {}", 4.0 * eps);
    assert!(
        inc_err <= 4.0 * eps,
        "incremental path drifted: error {inc_err} > 4ε = {} (bulk path: {bulk_err})",
        4.0 * eps
    );
}

#[test]
fn small_ingests_stay_buffered_uncompacted_until_threshold() {
    // The sharp structural regression, read off the engine's stored state
    // via `stats().retained` (the footprint counts buffered absorbed
    // parts verbatim): 240 unit-weight elements arrive in 24 small
    // ingests. 240 sits **above** a single merge's per-level cap
    // (2k = 128) but **below** the absorb-buffer threshold
    // (ABSORB_COMPACT_FACTOR·k = 256). The pre-fix path re-merged the
    // absorbed summary on every ingest, compacting the moment it crossed
    // 128 retained; the buffered path must hold all 240 words.
    let store = store();
    for c in 0..24 {
        let chunk: Vec<f64> = (0..10).map(|i| (c * 10 + i) as f64).collect();
        store.ingest_bytes("key", &frame_of(&chunk)).expect("ingests");
    }
    // ConcurrentEngine footprint = fixed Gather&Sort words (8k) + level
    // arrays (0: no local updates) + pending tail (0) + absorbed words.
    let gather_sort = 8 * K as u64;
    let stats = store.stats();
    assert_eq!(
        stats.retained,
        gather_sort + 240,
        "absorbed parts must stay uncompacted below the threshold"
    );
    assert_eq!(store.summary_of("key").unwrap().stream_len(), 240);

    // Two more chunks cross the threshold: ONE compaction pass folds the
    // whole buffer (and only then), shrinking the stored state.
    for c in 24..26 {
        let chunk: Vec<f64> = (0..10).map(|i| (c * 10 + i) as f64).collect();
        store.ingest_bytes("key", &frame_of(&chunk)).expect("ingests");
    }
    let stats = store.stats();
    assert!(
        stats.retained < gather_sort + 240,
        "crossing the threshold must compact the buffer (retained {})",
        stats.retained
    );
    let summary = store.summary_of("key").expect("present");
    assert_eq!(summary.stream_len(), 260, "compaction conserves weight exactly");
}

#[test]
fn ingests_below_the_level_cap_read_back_verbatim() {
    // Below 2k total retained nothing may compact anywhere — not in the
    // stored state, not in the read-side merge — so quantiles are exact.
    let store = store();
    for c in 0..12 {
        let chunk: Vec<f64> = (0..10).map(|i| (c * 10 + i) as f64).collect();
        store.ingest_bytes("key", &frame_of(&chunk)).expect("ingests");
    }
    let summary = store.summary_of("key").expect("present");
    assert_eq!(summary.stream_len(), 120);
    assert_eq!(summary.num_retained(), 120);
    assert!(summary.items().iter().all(|it| it.weight == 1));
    for phi in [0.0, 0.5, 1.0] {
        let q = summary.quantile::<f64>(phi).unwrap();
        let exact = (phi * 119.0).floor();
        assert!((q - exact).abs() <= 1.0, "phi={phi}: {q} vs exact {exact}");
    }
}
