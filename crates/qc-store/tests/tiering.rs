//! Tiering under contention: a single key hammered from several threads
//! must promote to the concurrent engine, conserve exact total weight
//! across the promotion, and report truthful per-tier counts in
//! [`StoreStats`] — while cold keys stay on the cheap sequential tier.

use std::sync::Arc;

use qc_common::Summary;
use qc_store::{
    ConcurrentEngine, SequentialEngine, SketchStore, StoreConfig, StoreEngine, Tier, TieredEngine,
};

const THREADS: usize = 4;
const PER_THREAD: usize = 4_000;

/// 4 threads × 4k updates into one key (all through one stripe lock, the
/// store's intended hot-key discipline): the key must cross the promotion
/// threshold mid-run and lose nothing.
#[test]
fn hot_key_promotes_under_contention_and_conserves_weight() {
    let store = Arc::new(SketchStore::new(
        StoreConfig::default().stripes(1).k(128).b(4).seed(11).promotion_threshold(1_000),
    ));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = store.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    store.update("hammered", (t * PER_THREAD + i) as f64);
                }
            });
        }
    });

    let total = (THREADS * PER_THREAD) as u64;
    let stats = store.stats();
    assert_eq!(stats.updates, total);
    assert_eq!(stats.stream_len, total, "exact conservation across promotion");
    assert_eq!(store.summary_of("hammered").unwrap().stream_len(), total);
    assert_eq!(stats.keys, 1);
    assert_eq!(
        (stats.hot_keys, stats.cold_keys),
        (1, 0),
        "16k updates >> threshold 1k: the key must be on the concurrent tier"
    );

    // The promoted key still answers sane quantiles over the union of all
    // four writers' ranges.
    let median = store.query("hammered", 0.5).unwrap();
    assert!(
        (total as f64 * 0.2..total as f64 * 0.8).contains(&median),
        "median {median} of 0..{total}"
    );
}

/// Mixed population: hot keys promote, cold keys stay sequential, and the
/// stats tier counts match per-key ground truth.
#[test]
fn tier_counts_track_per_key_pressure() {
    let store = SketchStore::new(
        StoreConfig::default().stripes(8).k(64).b(4).seed(7).promotion_threshold(200),
    );
    for hot in 0..3 {
        let key = format!("hot-{hot}");
        store.update_many(&key, &(0..1_000).map(f64::from).collect::<Vec<_>>());
    }
    for cold in 0..20 {
        let key = format!("cold-{cold}");
        store.update_many(&key, &(0..10).map(f64::from).collect::<Vec<_>>());
    }
    let stats = store.stats();
    assert_eq!(stats.keys, 23);
    assert_eq!(stats.hot_keys, 3);
    assert_eq!(stats.cold_keys, 20);
    assert_eq!(stats.stream_len, 3 * 1_000 + 20 * 10);

    // Cool-down: two idle sweeps demote the hot keys; weight stays exact.
    store.cool_down();
    assert_eq!(store.cool_down(), 3);
    let stats = store.stats();
    assert_eq!((stats.hot_keys, stats.cold_keys), (0, 23));
    assert_eq!(stats.stream_len, 3 * 1_000 + 20 * 10);
}

/// Tier transitions are observable: promotions/demotions/removals count
/// in the registry, structured events carry the key, and the
/// `telemetry_snapshot` bridge exposes the hot engine's internal
/// counters as `sketch_*` gauges.
#[test]
fn tier_transitions_are_counted_and_evented() {
    use qc_telemetry::EventKind;
    let store = SketchStore::new(
        StoreConfig::default().stripes(4).k(64).b(4).seed(3).promotion_threshold(200),
    );
    store.update_many("hot", &(0..1_000).map(f64::from).collect::<Vec<_>>());
    store.update_many("cold", &[1.0, 2.0]);

    let snap = store.telemetry_snapshot();
    assert_eq!(snap.counter("store_promotions"), Some(1));
    assert_eq!(snap.counter("store_demotions"), Some(0));
    // The hot key's concurrent engine surfaces its internal counters
    // through the InstrumentedSketch bridge.
    assert!(
        snap.gauge("sketch_batches").is_some(),
        "hot engine counters missing from snapshot: {:?}",
        snap.gauges
    );

    // Two idle sweeps demote; the demotion is counted and evented.
    store.cool_down();
    assert_eq!(store.cool_down(), 1);
    store.remove("cold");
    let snap = store.telemetry_snapshot();
    assert_eq!(snap.counter("store_demotions"), Some(1));
    assert_eq!(snap.counter("store_removals"), Some(1));

    let events = store.telemetry().events().drain();
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::Promotion), "events: {kinds:?}");
    assert!(kinds.contains(&EventKind::Demotion), "events: {kinds:?}");
    assert!(kinds.contains(&EventKind::Eviction), "events: {kinds:?}");
    let promo = events.iter().find(|e| e.kind == EventKind::Promotion).unwrap();
    assert!(promo.detail.contains("key=hot"), "detail: {}", promo.detail);

    // Per-stripe key gauges partition the key count.
    let stats = store.stats();
    let striped: i64 = snap
        .gauges
        .iter()
        .filter(|(n, _)| n.starts_with("store_stripe_keys_"))
        .map(|&(_, v)| v)
        .sum();
    assert_eq!(striped, stats.keys as i64);
}

/// The memory half of the tiering claim, at test scale (the `store_ops`
/// bench runs the 10k-key version): on an all-cold population the tiered
/// store's retained footprint matches the sequential store's and sits an
/// order of magnitude below the concurrent store's.
#[test]
fn cold_population_memory_profile() {
    const KEYS: usize = 1_000;
    let cfg = |seed| StoreConfig::default().stripes(16).k(256).b(4).seed(seed);
    let tiered = SketchStore::<f64, TieredEngine>::with_engine(cfg(1));
    let sequential = SketchStore::<f64, SequentialEngine>::with_engine(cfg(2));
    let concurrent = SketchStore::<f64, ConcurrentEngine>::with_engine(cfg(3));

    for i in 0..KEYS {
        let key = format!("k{i:04}");
        let vals: Vec<f64> = (0..8).map(|v| (i * 8 + v) as f64).collect();
        tiered.update_many(&key, &vals);
        sequential.update_many(&key, &vals);
        concurrent.update_many(&key, &vals);
    }

    let (t, s, c) =
        (tiered.stats().retained, sequential.stats().retained, concurrent.stats().retained);
    assert_eq!(t, s, "all-cold tiered store must cost exactly what sequential costs");
    assert!(
        t * 10 <= c,
        "tiered ({t} words) must be ≥10x below concurrent ({c} words) on cold keys"
    );
    assert_eq!(tiered.stats().cold_keys, KEYS);
    assert_eq!(concurrent.stats().hot_keys, KEYS);
}

/// Promotion and demotion round-trips keep every engine capability
/// working: queries, wire snapshots, and absorbs all survive migration.
#[test]
fn capabilities_survive_tier_migration() {
    let mut engine = TieredEngine::<f64>::new(64, 4, 5, 100);
    use qc_common::engine::{MergeableSketch, QuantileEstimator, StreamIngest};

    engine.update_many(&(0..5_000).map(f64::from).collect::<Vec<_>>());
    assert_eq!(engine.tier(), Tier::Concurrent);

    // Absorb a remote summary while hot.
    let mut remote = TieredEngine::<f64>::new(64, 4, 6, u64::MAX);
    remote.update_many(&(5_000..6_000).map(f64::from).collect::<Vec<_>>());
    engine.absorb_summary(&remote.to_summary());
    assert_eq!(QuantileEstimator::stream_len(&engine), 6_000);

    // Demote and keep answering.
    engine.demote_now();
    assert_eq!(engine.tier(), Tier::Sequential);
    assert_eq!(QuantileEstimator::stream_len(&engine), 6_000);
    let p99 = QuantileEstimator::query(&engine, 0.99).unwrap();
    assert!(p99 > 4_000.0, "p99 {p99}");

    // And back up.
    engine.update_many(&(0..200).map(f64::from).collect::<Vec<_>>());
    assert_eq!(engine.tier(), Tier::Concurrent);
    assert_eq!(QuantileEstimator::stream_len(&engine), 6_200);
}
