//! The PR's acceptance scenario, end to end at the store API:
//! `ingest_bytes(key, snapshot_bytes(key2))` round-trips through the wire
//! format, and a subsequent `merged_query` over both keys matches a
//! reference exact-quantile computation within the sketch error bound.

use qc_common::error::sequential_epsilon;
use qc_common::{OrderedBits, Summary};
use qc_store::{SketchStore, StoreConfig};
use qc_workloads::exact::ExactOracle;

const K: usize = 256;
const B: usize = 4;

fn store() -> SketchStore {
    SketchStore::new(StoreConfig::default().stripes(8).k(K).b(B).seed(4242))
}

#[test]
fn ingest_of_peer_snapshot_round_trips_and_merged_query_matches_exact() {
    let store = store();

    // Two keys over interleaved disjoint streams of different sizes.
    let n_total = 120_000u64;
    let stream_a: Vec<f64> = (0..n_total).filter(|i| i % 3 == 0).map(|i| i as f64).collect();
    let stream_b: Vec<f64> = (0..n_total).filter(|i| i % 3 != 0).map(|i| i as f64).collect();
    store.update_many("alpha", &stream_a);
    store.update_many("beta", &stream_b);

    // Round-trip: serialize beta, fold it into alpha's aggregate.
    let frame = store.snapshot_bytes("beta").expect("beta has data");
    let ingested = store.ingest_bytes("alpha", &frame).expect("frame decodes");
    assert_eq!(ingested, stream_b.len() as u64, "wire frame carried beta's whole stream");

    // Alpha alone now represents the union, weight conserved exactly.
    let alpha = store.summary_of("alpha").unwrap();
    assert_eq!(alpha.stream_len(), n_total);

    // merged_query over both keys = alpha ∪ beta ∪ (ingested beta again):
    // beta's stream now carries double weight under alpha ∪ beta. Query
    // the union of the *original* keys instead on a fresh store pair to
    // keep the reference exact; here we check alpha's own estimates.
    let combined: Vec<f64> = (0..n_total).map(|i| i as f64).collect();
    let oracle = ExactOracle::from_values(&combined);
    let budget = 3.0 * sequential_epsilon(K) + 2.0 * B as f64 / n_total as f64 + 0.005;
    for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
        let estimate = store.query("alpha", phi).expect("non-empty");
        let err = oracle.rank_error(phi, estimate.to_ordered_bits());
        assert!(err <= budget, "phi={phi}: rank error {err:.5} > budget {budget:.5}");
    }
}

#[test]
fn acceptance_ingest_snapshot_then_merged_query_matches_exact() {
    // The PR's acceptance criterion, verbatim: ingest_bytes(key,
    // snapshot_bytes(key2)) round-trips through the wire format, and a
    // subsequent merged_query over BOTH keys matches a reference exact
    // computation within the sketch error bound.
    let store = store();
    let n = 150_000u64;
    let stream: Vec<f64> = (0..n).map(|i| ((i * 7919) % n) as f64).collect();
    store.update_many("origin", &stream);

    let frame = store.snapshot_bytes("origin").expect("origin has data");
    let ingested = store.ingest_bytes("mirror", &frame).expect("own frame decodes");
    assert_eq!(ingested, n, "wire round-trip conserved the stream length");

    // The union of origin and its mirror is the stream duplicated; its
    // exact quantiles equal the single stream's (duplication invariance),
    // which gives a crisp reference for merged_query over both keys.
    let merged = store.merged_summary(&["origin", "mirror"]);
    assert_eq!(merged.stream_len(), 2 * n);
    let oracle = ExactOracle::from_values(&stream);
    let budget = 3.0 * sequential_epsilon(K) + 2.0 * B as f64 / n as f64 + 0.005;
    for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let estimate = store.merged_query(&["origin", "mirror"], phi).expect("non-empty");
        let err = oracle.rank_error(phi, estimate.to_ordered_bits());
        assert!(err <= budget, "phi={phi}: rank error {err:.5} > budget {budget:.5}");
    }
}

#[test]
fn merged_query_over_disjoint_keys_matches_exact() {
    let store = store();
    let n_total = 100_000u64;
    let stream_a: Vec<f64> = (0..n_total).filter(|i| i % 2 == 0).map(|i| i as f64).collect();
    let stream_b: Vec<f64> = (0..n_total).filter(|i| i % 2 == 1).map(|i| i as f64).collect();
    store.update_many("even", &stream_a);
    store.update_many("odd", &stream_b);

    let merged = store.merged_summary(&["even", "odd"]);
    assert_eq!(merged.stream_len(), n_total, "merge conserves weight exactly");

    let combined: Vec<f64> = (0..n_total).map(|i| i as f64).collect();
    let oracle = ExactOracle::from_values(&combined);
    let budget = 3.0 * sequential_epsilon(K) + 2.0 * B as f64 / n_total as f64 + 0.005;
    for phi in [0.01, 0.1, 0.5, 0.9, 0.99] {
        let estimate = store.merged_query(&["even", "odd"], phi).expect("non-empty");
        let err = oracle.rank_error(phi, estimate.to_ordered_bits());
        assert!(err <= budget, "phi={phi}: rank error {err:.5} > budget {budget:.5}");
    }
}

#[test]
fn cross_store_replication_via_wire() {
    // Simulates two processes: everything the origin store saw arrives at
    // the replica purely as bytes, one frame per key.
    let origin = store();
    for i in 0..30_000u64 {
        origin.update("p50-lat", (i % 997) as f64);
        origin.update("p99-lat", (i % 89) as f64);
    }

    let replica = store();
    for key in origin.keys() {
        let frame = origin.snapshot_bytes(&key).unwrap();
        replica.ingest_bytes(&key, &frame).unwrap();
    }

    assert_eq!(replica.stats().stream_len, origin.stats().stream_len);
    for (key, range) in [("p50-lat", 997.0), ("p99-lat", 89.0)] {
        let a = origin.query(key, 0.5).unwrap();
        let b = replica.query(key, 0.5).unwrap();
        // Values are uniform over [0, range), so value drift / range is a
        // rank-drift proxy; the replica re-compacts once, so allow one
        // extra epsilon over the origin's own estimate.
        let drift = (a - b).abs() / range;
        assert!(drift <= 2.0 * sequential_epsilon(K) + 0.01, "{key}: drift {drift}");
    }
}
