//! Cache-coherence property suite for the store's versioned read path.
//!
//! The contract under test: **a read never serves a stale summary**.
//! After any interleaving of `update_many` / `ingest_bytes` / `cool_down`
//! / `remove` — with reads interleaved so the cache is actually populated
//! between mutations — the cached [`SketchStore::summary_of`] must be
//! indistinguishable from a fresh materialization
//! ([`SketchStore::summary_of_uncached`]): same presence, same stream
//! length, same items, same quantiles. Materialization is deterministic
//! for a fixed engine state (fixed merge seeds), so full summary equality
//! is the strongest possible check.
//!
//! The same operation scripts run over all three engines — sequential,
//! concurrent, and tiered with a tiny promotion threshold so scripts
//! cross tier migrations (and `cool_down` demotions) routinely.

use proptest::prelude::*;
use qc_common::OrderedBits;
use qc_common::Summary;
use qc_store::{
    encode_summary, ConcurrentEngine, SequentialEngine, SketchStore, StoreConfig, StoreEngine,
    TieredEngine,
};

const KEYS: usize = 3;

fn key_name(i: usize) -> String {
    format!("key-{i}")
}

#[derive(Clone, Debug)]
enum Op {
    /// `update_many` of `n` values into a key.
    Update { key: usize, n: usize },
    /// `ingest_bytes` of an `n`-element remote summary into a key.
    Ingest { key: usize, n: usize },
    /// A read (populates the cache so later mutations can go stale).
    Read { key: usize },
    /// One maintenance sweep (tier demotions, cache pruning).
    CoolDown,
    /// Drop a key entirely.
    Remove { key: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Mutations and reads in roughly 2:1 proportion, with occasional
    // sweeps and removals (the vendored proptest has no weighted oneof,
    // so proportions come from repeating arms).
    prop_oneof![
        (0..KEYS, 1usize..300).prop_map(|(key, n)| Op::Update { key, n }),
        (0..KEYS, 300usize..600).prop_map(|(key, n)| Op::Update { key, n }),
        (0..KEYS, 1usize..100).prop_map(|(key, n)| Op::Ingest { key, n }),
        (0..KEYS).prop_map(|key| Op::Read { key }),
        (0..KEYS).prop_map(|key| Op::Read { key }),
        Just(Op::CoolDown),
        (0..KEYS).prop_map(|key| Op::Remove { key }),
    ]
}

/// A wire frame holding `n` unit-weight values derived from `salt`.
fn remote_frame(n: usize, salt: u64) -> Vec<u8> {
    let bits: Vec<u64> =
        (0..n as u64).map(|i| ((salt % 16) as f64 * 1000.0 + i as f64).to_ordered_bits()).collect();
    let summary = qc_common::WeightedSummary::from_parts([(&bits[..], 1u64)]);
    encode_summary(&summary)
}

/// Run a script over a store with engine `E`, checking after every single
/// operation that the cached read path agrees with a fresh
/// materialization for every key.
fn check_script<E: StoreEngine<f64>>(ops: &[Op]) -> Result<(), TestCaseError> {
    // Tiny promotion threshold: tiered keys go hot within one or two
    // updates, so scripts exercise both tiers and demotion sweeps.
    let store = SketchStore::<f64, E>::with_engine(
        StoreConfig::default().stripes(2).k(32).b(4).seed(11).promotion_threshold(64),
    );
    let mut clock = 0u64;
    for op in ops {
        clock += 1;
        match *op {
            Op::Update { key, n } => {
                let values: Vec<f64> = (0..n).map(|i| (clock * 1000 + i as u64) as f64).collect();
                store.update_many(&key_name(key), &values);
            }
            Op::Ingest { key, n } => {
                store
                    .ingest_bytes(&key_name(key), &remote_frame(n, clock))
                    .expect("well-formed frame ingests");
            }
            Op::Read { key } => {
                let _ = store.query(&key_name(key), 0.5);
                let _ = store.rank(&key_name(key), 500.0);
            }
            Op::CoolDown => {
                store.cool_down();
            }
            Op::Remove { key } => {
                store.remove(&key_name(key));
            }
        }
        // The coherence check proper: cached == freshly materialized,
        // for every key, after every op.
        for key in 0..KEYS {
            let name = key_name(key);
            let cached = store.summary_of(&name);
            let direct = store.summary_of_uncached(&name);
            match (cached, direct) {
                (None, None) => {}
                (Some(cached), Some(direct)) => {
                    prop_assert_eq!(
                        cached.stream_len(),
                        direct.stream_len(),
                        "stale stream length for {} after {:?}",
                        &name,
                        op
                    );
                    for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
                        prop_assert_eq!(
                            cached.quantile::<f64>(phi),
                            direct.quantile::<f64>(phi),
                            "stale {}-quantile for {} after {:?}",
                            phi,
                            &name,
                            op
                        );
                    }
                    prop_assert_eq!(
                        &*cached,
                        &direct,
                        "cached summary diverged from fresh materialization for {} after {:?}",
                        &name,
                        op
                    );
                }
                (cached, direct) => {
                    prop_assert!(
                        false,
                        "presence mismatch for {} after {:?}: cached {} vs direct {}",
                        &name,
                        op,
                        cached.is_some(),
                        direct.is_some()
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reads_never_serve_stale_summaries_tiered(
        ops in prop::collection::vec(op_strategy(), 1..24)
    ) {
        check_script::<TieredEngine>(&ops)?;
    }

    #[test]
    fn reads_never_serve_stale_summaries_sequential(
        ops in prop::collection::vec(op_strategy(), 1..24)
    ) {
        check_script::<SequentialEngine>(&ops)?;
    }

    #[test]
    fn reads_never_serve_stale_summaries_concurrent(
        ops in prop::collection::vec(op_strategy(), 1..24)
    ) {
        check_script::<ConcurrentEngine>(&ops)?;
    }
}

/// Deterministic regression: a cache populated before a demotion sweep
/// must not survive it — demotion rebuilds the summary representation
/// even though the stream length is unchanged.
#[test]
fn demotion_invalidates_a_warm_cache() {
    let store = SketchStore::new(
        StoreConfig::default().stripes(1).k(32).b(4).seed(3).promotion_threshold(16),
    );
    store.update_many("hot", &(0..500).map(f64::from).collect::<Vec<_>>());
    let before = store.summary_of("hot").expect("present");
    assert_eq!(store.stats().hot_keys, 1);
    // Two idle sweeps: epoch close, then demote.
    store.cool_down();
    store.cool_down();
    assert_eq!(store.stats().hot_keys, 0);
    let after = store.summary_of("hot").expect("still present");
    assert_eq!(after.stream_len(), 500, "demotion conserves weight");
    assert_eq!(
        *after,
        store.summary_of_uncached("hot").unwrap(),
        "post-demotion reads must serve the demoted representation"
    );
    // The pre-demotion summary object must not be what reads serve now.
    assert_eq!(before.stream_len(), 500);
}
