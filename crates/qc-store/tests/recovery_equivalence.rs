//! The recovery-equivalence property: for ANY op sequence and ANY crash
//! point, recovering the durable prefix yields a store *byte-identical*
//! to one that simply executed that prefix and never crashed.
//!
//! This is the strongest statement the log can make — not "close", not
//! "same quantiles", but the same summary frames bit for bit. It holds
//! because the store is deterministic for a single-threaded op sequence
//! (per-key sketch seeds derive from the config seed) and every op is
//! exactly one log record, so truncating the log at a frame boundary is
//! the same thing as truncating the op sequence.

use proptest::prelude::*;
use qc_store::persist::{parse_segment, FILE_HEADER_LEN};
use qc_store::{SketchStore, StoreConfig};
use qc_workloads::tempdir::TempDir;

const KEYS: [&str; 3] = ["alpha", "beta", "gamma"];

#[derive(Clone, Debug)]
enum Op {
    UpdateMany { key: usize, values: Vec<f64> },
    Remove { key: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..KEYS.len(), prop::collection::vec(-1000i32..1000, 1..12)).prop_map(
            |(key, raw)| Op::UpdateMany { key, values: raw.into_iter().map(f64::from).collect() }
        ),
        (0usize..KEYS.len()).prop_map(|key| Op::Remove { key }),
    ]
}

fn base_cfg() -> StoreConfig {
    StoreConfig::default().stripes(2).k(32).b(4).seed(11)
}

fn apply(store: &SketchStore<f64>, op: &Op) {
    match op {
        Op::UpdateMany { key, values } => store.update_many(KEYS[*key], values),
        Op::Remove { key } => {
            store.remove(KEYS[*key]);
        }
    }
}

/// Sorted `(key, summary frame)` pairs — the store's entire observable
/// per-key state, in wire form.
fn state_of(store: &SketchStore<f64>) -> Vec<(String, Vec<u8>)> {
    let mut keys = store.keys();
    keys.sort();
    keys.into_iter()
        .map(|k| {
            let frame = store.snapshot_bytes(&k).unwrap();
            (k, frame)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash at an arbitrary byte of the log: the recovered store equals
    /// a reference store that executed exactly the durable whole-frame
    /// prefix of the op sequence.
    #[test]
    fn recovery_equals_executing_the_durable_prefix(
        ops in prop::collection::vec(op_strategy(), 1..32),
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = TempDir::new("recover-equiv");
        let (durable, _) =
            SketchStore::<f64>::recover(base_cfg().data_dir(dir.path())).unwrap();
        for op in &ops {
            apply(&durable, op);
        }
        drop(durable);

        // An op hits the log iff it changed something: every update does,
        // a remove only when the key was resident. Replaying the record
        // prefix therefore equals executing this *recorded* op prefix.
        let recorded: Vec<&Op> = {
            let mut live = std::collections::HashSet::new();
            ops.iter()
                .filter(|op| match op {
                    Op::UpdateMany { key, .. } => {
                        live.insert(*key);
                        true
                    }
                    Op::Remove { key } => live.remove(key),
                })
                .collect()
        };

        // One op = one record, appended in program order; no checkpoint
        // ran, so the whole history is in the single active segment.
        let segment = {
            let mut logs: Vec<_> = std::fs::read_dir(dir.path())
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|e| e == "log"))
                .collect();
            prop_assert_eq!(logs.len(), 1, "no rotation without checkpoints");
            logs.pop().unwrap()
        };
        let bytes = std::fs::read(&segment).unwrap();
        let scan = parse_segment(&bytes);
        prop_assert!(scan.error.is_none());
        prop_assert_eq!(scan.records.len(), recorded.len());

        // Crash: everything past `cut` was never written. Whole frames
        // before the cut are the durable prefix.
        let span = bytes.len() - FILE_HEADER_LEN;
        let cut = FILE_HEADER_LEN + (span as f64 * cut_frac) as usize;
        std::fs::write(&segment, &bytes[..cut]).unwrap();
        let survivors = scan.records.iter().filter(|r| r.end <= cut).count();

        let (recovered, report) =
            SketchStore::<f64>::recover(base_cfg().data_dir(dir.path())).unwrap();
        prop_assert_eq!(report.records_applied, survivors as u64);
        // Corruption is reported iff the cut left partial-frame bytes
        // behind; a cut landing exactly on a frame boundary is clean.
        let boundary = survivors
            .checked_sub(1)
            .map_or(FILE_HEADER_LEN, |i| scan.records[i].end);
        prop_assert_eq!(report.corruption.is_some(), cut > boundary);

        // The reference never saw a log or a crash: it just runs the
        // durable prefix in memory with the same config.
        let reference = SketchStore::<f64>::new(base_cfg());
        for op in &recorded[..survivors] {
            apply(&reference, op);
        }

        let got = state_of(&recovered);
        let want = state_of(&reference);
        prop_assert_eq!(
            got, want,
            "recovered state must be byte-identical to executing the {survivors}-op prefix"
        );
    }

    /// Group-commit boundary model: a leader fsync covers every append
    /// up to some LSN, so after a crash the durable prefix always ends at
    /// the last record of a completed commit *group*, never inside one.
    /// Partition the recorded ops into arbitrary groups, keep a whole
    /// number of them, and recovery must equal executing exactly the ops
    /// of the completed groups — the uncovered tail vanishes atomically.
    #[test]
    fn recovery_at_a_group_commit_boundary_equals_the_covered_groups(
        ops in prop::collection::vec(op_strategy(), 1..32),
        group_sizes in prop::collection::vec(1usize..5, 1..16),
        keep_frac in 0.0f64..=1.0,
    ) {
        let dir = TempDir::new("recover-group");
        let (durable, _) =
            SketchStore::<f64>::recover(base_cfg().data_dir(dir.path())).unwrap();
        for op in &ops {
            apply(&durable, op);
        }
        drop(durable);

        // Same record/op correspondence as the arbitrary-cut property.
        let recorded: Vec<&Op> = {
            let mut live = std::collections::HashSet::new();
            ops.iter()
                .filter(|op| match op {
                    Op::UpdateMany { key, .. } => {
                        live.insert(*key);
                        true
                    }
                    Op::Remove { key } => live.remove(key),
                })
                .collect()
        };

        let segment: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        let path = &segment[0];
        let bytes = std::fs::read(path).unwrap();
        let scan = parse_segment(&bytes);
        prop_assert_eq!(scan.records.len(), recorded.len());

        // Partition the records into commit groups of the drawn sizes
        // (cycling if the sizes run short), then keep a whole number of
        // leading groups — the watermark a leader fsync would have left.
        let mut boundaries = Vec::new(); // record count at each group end
        let mut covered = 0usize;
        let mut sizes = group_sizes.iter().cycle();
        while covered < recorded.len() {
            covered = (covered + sizes.next().unwrap()).min(recorded.len());
            boundaries.push(covered);
        }
        let keep_groups = (boundaries.len() as f64 * keep_frac) as usize;
        let survivors = keep_groups.checked_sub(1).map_or(0, |i| boundaries[i]);
        let cut = survivors
            .checked_sub(1)
            .map_or(FILE_HEADER_LEN, |i| scan.records[i].end);
        std::fs::write(path, &bytes[..cut]).unwrap();

        // A group boundary is a frame boundary: recovery is clean, no
        // torn tail, and applies exactly the covered groups' records.
        let (recovered, report) =
            SketchStore::<f64>::recover(base_cfg().data_dir(dir.path())).unwrap();
        prop_assert!(report.corruption.is_none(), "group boundaries are frame boundaries");
        prop_assert_eq!(report.records_applied, survivors as u64);

        let reference = SketchStore::<f64>::new(base_cfg());
        for op in &recorded[..survivors] {
            apply(&reference, op);
        }
        prop_assert_eq!(
            state_of(&recovered),
            state_of(&reference),
            "recovery must equal executing the {keep_groups} covered commit groups"
        );
    }

    /// Repair is idempotent and deterministic: recovering the same
    /// damaged directory twice (the first pass truncates the torn tail)
    /// lands on the same state both times.
    #[test]
    fn double_recovery_is_stable(
        ops in prop::collection::vec(op_strategy(), 1..16),
        chop in 1usize..40,
    ) {
        let dir = TempDir::new("recover-stable");
        let (durable, _) =
            SketchStore::<f64>::recover(base_cfg().data_dir(dir.path())).unwrap();
        for op in &ops {
            apply(&durable, op);
        }
        drop(durable);

        let segment: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        let path = &segment[0];
        let bytes = std::fs::read(path).unwrap();
        let cut = bytes.len().saturating_sub(chop).max(FILE_HEADER_LEN);
        std::fs::write(path, &bytes[..cut]).unwrap();

        let (first, report_a) =
            SketchStore::<f64>::recover(base_cfg().data_dir(dir.path())).unwrap();
        let state_a = state_of(&first);
        drop(first);
        let (second, report_b) =
            SketchStore::<f64>::recover(base_cfg().data_dir(dir.path())).unwrap();
        prop_assert!(report_b.corruption.is_none(), "first pass must have repaired the tail");
        prop_assert_eq!(report_b.records_applied, report_a.records_applied);
        prop_assert_eq!(state_of(&second), state_a);
    }
}
