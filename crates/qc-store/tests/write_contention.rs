//! Hot-key write-contention suite: many threads hammering one key must
//! ride the shared-lock fast path, conserve weight exactly, and stay
//! exact even when housekeeping (demotion) and removal race the writers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use qc_common::Summary;
use qc_store::{SketchStore, StaleLease, StoreConfig};

fn cfg(seed: u64) -> StoreConfig {
    StoreConfig::default().stripes(2).k(128).b(4).seed(seed).promotion_threshold(128)
}

/// 4 writers × one hot key: every batch after promotion must take the
/// shared path, and the final accounting must be exact to the element.
#[test]
fn four_writers_one_hot_key_exact_conservation() {
    const THREADS: usize = 4;
    const BATCHES: usize = 200;
    const BATCH: usize = 64;

    let store = Arc::new(SketchStore::new(cfg(1)));
    // Pre-promote so the measured phase is pure hot-key traffic.
    store.update_many("hot", &(0..200).map(f64::from).collect::<Vec<_>>());
    assert_eq!(store.stats().hot_keys, 1);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..BATCHES {
                    let base = (t * BATCHES + i) * BATCH;
                    let batch: Vec<f64> = (0..BATCH).map(|j| (base + j) as f64).collect();
                    store.update_many("hot", &batch);
                }
            });
        }
    });

    let total = 200 + (THREADS * BATCHES * BATCH) as u64;
    let stats = store.stats();
    assert_eq!(stats.updates, total, "every element counted exactly once");
    assert_eq!(stats.stream_len, total, "every element resident exactly once");
    assert_eq!(store.summary_of("hot").unwrap().stream_len(), total);
    assert!(
        stats.shared_writes >= (THREADS * BATCHES) as u64,
        "hot-key batches must ride the shared path (shared {} / fallback {})",
        stats.shared_writes,
        stats.fallback_writes
    );
    // Median sanity: values are 0..total-ish uniform.
    let med = store.query("hot", 0.5).unwrap();
    assert!((0.25 * total as f64..0.75 * total as f64).contains(&med), "median {med}");
}

/// Writers race the housekeeping sweep: demotions may invalidate the pool
/// mid-run (writers transparently fall back and re-promote), yet not one
/// element may be lost or duplicated. A reader thread also pins the
/// mid-flight counter invariant `stream_len <= updates`.
#[test]
fn writers_race_cool_down_without_losing_weight() {
    const THREADS: usize = 4;
    const BATCHES: usize = 150;
    const BATCH: usize = 32;

    let store = Arc::new(SketchStore::new(cfg(2)));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..BATCHES {
                    let base = (t * BATCHES + i) * BATCH;
                    let batch: Vec<f64> = (0..BATCH).map(|j| (base + j) as f64).collect();
                    store.update_many("contended", &batch);
                }
            });
        }
        // Housekeeping thread: sweep continuously while writers run.
        {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    store.cool_down();
                    std::thread::yield_now();
                }
            });
        }
        // Reader thread: the counter invariant must hold at every instant.
        {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let stats = store.stats();
                    assert!(
                        stats.stream_len <= stats.updates,
                        "observed uncounted weight: stream_len {} > updates {}",
                        stats.stream_len,
                        stats.updates
                    );
                }
            });
        }
        // Watcher: release the sweep/reader loopers once every writer
        // element is counted (the scope then joins everything).
        let store_done = Arc::clone(&store);
        let stop_done = Arc::clone(&stop);
        s.spawn(move || {
            let total = (THREADS * BATCHES * BATCH) as u64;
            while store_done.stats().updates < total {
                std::thread::yield_now();
            }
            stop_done.store(true, Ordering::Relaxed);
        });
    });

    let total = (THREADS * BATCHES * BATCH) as u64;
    let stats = store.stats();
    assert_eq!(stats.updates, total);
    assert_eq!(stats.stream_len, total, "no element lost across demotion races");
    assert_eq!(store.summary_of("contended").unwrap().stream_len(), total);
}

/// Server-style leases held across calls from multiple threads, racing
/// removal: every accepted leased write is resident, every rejected one
/// is re-routed exactly once, and the post-removal weight equals exactly
/// what was written after the removal.
#[test]
fn held_leases_race_removal_with_exact_accounting() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 300;
    const BATCH: usize = 16;

    let store = Arc::new(SketchStore::new(cfg(3).promotion_threshold(0)));
    store.update_many("k", &[0.5]);
    let applied = Arc::new(AtomicU64::new(1));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let applied = Arc::clone(&applied);
            s.spawn(move || {
                let mut lease = None;
                for i in 0..ROUNDS {
                    let base = (t * ROUNDS + i) * BATCH;
                    let batch: Vec<f64> = (0..BATCH).map(|j| (base + j) as f64).collect();
                    if lease.is_none() {
                        lease = store.lease_writer("k");
                    }
                    match lease.as_mut() {
                        Some(held) => match store.update_many_leased("k", held, &batch) {
                            Ok(()) => {}
                            Err(StaleLease) => {
                                lease = None;
                                store.update_many("k", &batch);
                            }
                        },
                        None => store.update_many("k", &batch),
                    }
                    applied.fetch_add(BATCH as u64, Ordering::Relaxed);
                }
                if let Some(held) = lease.take() {
                    store.return_lease("k", held);
                }
            });
        }
        // Removal thread: periodically wipe the key mid-traffic, forcing
        // held leases stale while batches are in flight.
        {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for _ in 0..5 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    store.remove("k");
                }
            });
        }
    });

    // Conservation modulo removal: resident weight + discarded weight ==
    // applied weight. `updates` counts every applied element exactly once
    // (the exactness half we can assert without racing the removals).
    let stats = store.stats();
    assert_eq!(stats.updates, applied.load(Ordering::Relaxed));
    let resident = store.summary_of("k").map(|s| s.stream_len()).unwrap_or(0);
    assert!(resident <= stats.updates);
    assert_eq!(stats.stream_len, resident, "only the surviving key holds weight");
}
