//! Property tests for the wire format: arbitrary summaries round-trip
//! bit-exactly, and corrupted frames of every flavour (truncation, bad
//! magic, version skew, bit flips, garbage) come back as typed errors —
//! never a panic, never a silently-wrong summary.

use proptest::prelude::*;
use qc_common::summary::{Summary, WeightedItem, WeightedSummary};
use qc_store::wire::{crc32, decode_summary, encode_summary, WireError, CHECKSUM_LEN, VERSION};

fn summary_strategy() -> impl Strategy<Value = WeightedSummary> {
    prop::collection::vec((any::<u64>(), 1u64..1 << 40), 0..300).prop_map(|items| {
        WeightedSummary::from_items(
            items.into_iter().map(|(v, w)| WeightedItem { value_bits: v, weight: w }).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_is_identity(summary in summary_strategy()) {
        let bytes = encode_summary(&summary);
        let back = decode_summary(&bytes).unwrap();
        prop_assert_eq!(back.items(), summary.items());
        prop_assert_eq!(back.stream_len(), summary.stream_len());
        // Estimator behaviour is identical, not just the items.
        for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
            prop_assert_eq!(back.quantile_bits(phi), summary.quantile_bits(phi));
        }
    }

    #[test]
    fn truncation_never_panics_and_is_typed(
        summary in summary_strategy(),
        cut in 0.0f64..1.0,
    ) {
        let bytes = encode_summary(&summary);
        let len = (bytes.len() as f64 * cut) as usize;
        match decode_summary(&bytes[..len]) {
            Ok(_) => prop_assert!(len == bytes.len(), "short read decoded"),
            Err(WireError::Truncated { .. })
            | Err(WireError::ChecksumMismatch { .. })
            | Err(WireError::MalformedVarint { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected(summary in summary_strategy(), b0 in any::<u8>()) {
        prop_assume!(b0 != b'Q');
        let mut bytes = encode_summary(&summary);
        bytes[0] = b0;
        prop_assert_eq!(
            decode_summary(&bytes),
            Err(WireError::BadMagic { found: [b0, b'C', b'W', b'S'] })
        );
    }

    #[test]
    fn version_skew_is_rejected(summary in summary_strategy(), v in 2u16..u16::MAX) {
        let mut bytes = encode_summary(&summary);
        bytes[4..6].copy_from_slice(&v.to_le_bytes());
        // Re-sign so the version check (not the CRC) is what fires.
        let body_end = bytes.len() - CHECKSUM_LEN;
        let crc = crc32(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        prop_assert_eq!(
            decode_summary(&bytes),
            Err(WireError::UnsupportedVersion { found: v, supported: VERSION })
        );
    }

    #[test]
    fn single_bit_flips_are_caught(
        summary in summary_strategy(),
        pos in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut bytes = encode_summary(&summary);
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        // Whatever byte was hit — header, payload, or the CRC itself —
        // decode must fail (a flip cannot produce a consistent frame).
        prop_assert!(decode_summary(&bytes).is_err(), "bit flip at {idx} went unnoticed");
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        // Any outcome is fine except a panic; decoding random bytes that
        // happen to form a valid frame is astronomically unlikely but legal.
        let _ = decode_summary(&bytes);
    }

    #[test]
    fn encoding_is_deterministic(summary in summary_strategy()) {
        prop_assert_eq!(encode_summary(&summary), encode_summary(&summary));
    }
}
