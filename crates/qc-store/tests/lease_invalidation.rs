//! Lease-invalidation suite: random interleavings of leased and direct
//! writes with `remove`, `cool_down` (demotion), and promotion, run over
//! **all three store engines**.
//!
//! The invariants, checked after every op against a shadow model:
//!
//! 1. **Exact weight conservation** — each key's resident summary weight
//!    equals exactly the weight written to it since its last removal,
//!    whatever mix of shared-path, leased, and fallback writes delivered
//!    it and however many tier migrations happened in between.
//! 2. **Generation isolation** — a lease minted before a `remove` or a
//!    demotion is rejected with [`StaleLease`]; its re-routed weight is
//!    delivered by the fallback path exactly once, and **no write ever
//!    lands in a removed key's successor generation** through a stale
//!    handle.
//! 3. **Counter exactness** — `StoreStats::updates` equals the weight
//!    ever handed to the store (removal discards resident weight, not
//!    counter history), and every batch is attributed to exactly one of
//!    `shared_writes`/`fallback_writes`.

use proptest::prelude::*;
use qc_common::Summary;
use qc_store::{
    ConcurrentEngine, SequentialEngine, SketchStore, StaleLease, StoreConfig, StoreEngine,
    TieredEngine, WriterLease,
};

const KEYS: [&str; 3] = ["alpha", "beta", "gamma"];

/// One step of the interleaving.
#[derive(Clone, Debug)]
enum Op {
    /// `update_many` through the store's own two-tier path.
    Update { key: usize, n: u64 },
    /// `update_many_leased` through a held (possibly stale) lease,
    /// falling back like the serving layer does.
    LeasedUpdate { key: usize, n: u64 },
    /// Remove the key; its weight is discarded and any held lease must go
    /// stale.
    Remove { key: usize },
    /// A housekeeping sweep: closes epochs, demotes idle hot keys
    /// (invalidating their leases), drops idle pool handles.
    CoolDown,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weight the mix toward writes by decoding a discriminant range (the
    // vendored proptest's `prop_oneof!` is unweighted): 0-3 direct write,
    // 4-7 leased write, 8 remove, 9-10 cool-down.
    (0u8..11, 0usize..KEYS.len(), 1u64..200).prop_map(|(kind, key, n)| match kind {
        0..=3 => Op::Update { key, n },
        4..=7 => Op::LeasedUpdate { key, n },
        8 => Op::Remove { key },
        _ => Op::CoolDown,
    })
}

fn cfg(seed: u64) -> StoreConfig {
    // A low promotion threshold so random interleavings cross tiers both
    // ways many times; 2 stripes so keys collide.
    StoreConfig::default().stripes(2).k(64).b(4).seed(seed).promotion_threshold(64).writer_pool(4)
}

/// Run one op sequence over one engine type, checking the shadow model
/// after every step.
fn run_ops<E: StoreEngine<f64>>(ops: &[Op], seed: u64) -> Result<(), TestCaseError> {
    let store = SketchStore::<f64, E>::with_engine(cfg(seed));
    let mut expected = [0u64; KEYS.len()];
    let mut written_total = 0u64;
    let mut leases: Vec<Option<WriterLease<f64>>> = (0..KEYS.len()).map(|_| None).collect();
    let mut x = 0.0f64;
    let mut batch = |n: u64| -> Vec<f64> {
        (0..n)
            .map(|_| {
                x += 1.0;
                x
            })
            .collect()
    };

    for op in ops {
        match *op {
            Op::Update { key, n } => {
                store.update_many(KEYS[key], &batch(n));
                expected[key] += n;
                written_total += n;
            }
            Op::LeasedUpdate { key, n } => {
                let values = batch(n);
                if leases[key].is_none() {
                    leases[key] = store.lease_writer(KEYS[key]);
                }
                match leases[key].as_mut() {
                    Some(lease) => {
                        match store.update_many_leased(KEYS[key], lease, &values) {
                            Ok(()) => {}
                            Err(StaleLease) => {
                                // The store guarantees the rejected write
                                // moved no weight: deliver it exactly once
                                // through the fallback (as qc-server does).
                                leases[key] = None;
                                store.update_many(KEYS[key], &values);
                            }
                        }
                    }
                    // Key absent or engine cold: the lease was declined.
                    None => store.update_many(KEYS[key], &values),
                }
                expected[key] += n;
                written_total += n;
            }
            Op::Remove { key } => {
                store.remove(KEYS[key]);
                expected[key] = 0;
                // Deliberately KEEP the stale lease: later LeasedUpdate
                // steps must be rejected and re-routed, never delivered
                // into the successor generation's engine.
            }
            Op::CoolDown => {
                store.cool_down();
            }
        }

        // Invariant 1: per-key weight exact after every single op.
        for (i, key) in KEYS.iter().enumerate() {
            let got = store.summary_of(key).map(|s| s.stream_len()).unwrap_or(0);
            prop_assert_eq!(
                got,
                expected[i],
                "key {} diverged after {:?} (engine {})",
                key,
                op,
                std::any::type_name::<E>()
            );
        }
    }

    // Invariant 3: counters exact at quiescence.
    let stats = store.stats();
    prop_assert_eq!(stats.updates, written_total, "updates counter must count every element once");
    prop_assert_eq!(stats.stream_len, expected.iter().sum::<u64>());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleavings_conserve_weight_across_all_engines(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in 1u64..1000,
    ) {
        run_ops::<SequentialEngine>(&ops, seed)?;
        run_ops::<ConcurrentEngine>(&ops, seed)?;
        run_ops::<TieredEngine>(&ops, seed)?;
    }
}

/// The deterministic core of invariant 2, spelled out: remove → recreate
/// → the pre-removal lease must never write into the successor.
#[test]
fn stale_lease_never_writes_into_successor_generation() {
    let store = SketchStore::new(cfg(42));
    store.update_many("k", &(0..100).map(f64::from).collect::<Vec<_>>());
    let mut lease = store.lease_writer("k").expect("hot key leases");
    let gen_before = lease.generation();

    assert!(store.remove("k"));
    store.update_many("k", &(0..100).map(f64::from).collect::<Vec<_>>());
    let successor = store.lease_writer("k").expect("successor re-promoted past the threshold");
    assert_ne!(successor.generation(), gen_before, "generations are never reused");
    store.return_lease("k", successor);

    for _ in 0..3 {
        assert_eq!(
            store.update_many_leased("k", &mut lease, &[999.0]),
            Err(StaleLease),
            "a retired generation must stay rejected"
        );
    }
    assert_eq!(store.summary_of("k").unwrap().stream_len(), 100);
    assert_eq!(store.rank("k", 500.0), Some(1.0), "no 999.0 leaked into the successor");
}

/// Demotion-path counterpart: cool-down demotes a hot key with a held
/// lease; the lease goes stale, the weight stays exact, and the key keeps
/// serving through both paths afterwards.
#[test]
fn demotion_retires_leases_and_conserves_weight() {
    let store = SketchStore::new(cfg(43));
    store.update_many("k", &(0..100).map(f64::from).collect::<Vec<_>>());
    let mut lease = store.lease_writer("k").expect("hot key leases");
    store
        .update_many_leased("k", &mut lease, &(100..150).map(f64::from).collect::<Vec<_>>())
        .unwrap();

    // First sweep closes the busy epoch, second demotes.
    assert_eq!(store.cool_down(), 0);
    assert_eq!(store.cool_down(), 1);
    assert_eq!(store.stats().hot_keys, 0);
    assert_eq!(store.summary_of("k").unwrap().stream_len(), 150);

    assert_eq!(store.update_many_leased("k", &mut lease, &[7.0]), Err(StaleLease));
    store.update_many("k", &(150..250).map(f64::from).collect::<Vec<_>>());
    assert_eq!(store.summary_of("k").unwrap().stream_len(), 250);
    let stats = store.stats();
    assert_eq!(stats.updates, 250);
    assert_eq!(stats.stream_len, 250);
}
