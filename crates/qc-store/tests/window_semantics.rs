//! Windowed-store semantics suite: boundary alignment, the lateness
//! bound, downsampling weight conservation, retention eviction, and the
//! exact-oracle contract for time-range queries — plus a property test
//! (mirroring `cache_coherence.rs`) that any interleaving of
//! `update_at` / `update_many` / `cool_down` keeps every key's windowed
//! state byte-for-byte predictable: same active id, same watermark, same
//! sealed window set, same per-key total weight, with late drops and
//! evictions accounted exactly.

use std::time::Duration;

use proptest::prelude::*;
use qc_common::summary::{Summary, WeightedSummary};
use qc_common::OrderedBits;
use qc_store::{SketchStore, StoreConfig, WindowConfig};

/// One-second level-0 windows: window id == whole seconds of event time.
const WIDTH_MS: u64 = 1000;

fn windowed_cfg(levels: u8, retention_s: u64, lateness_s: u64) -> StoreConfig {
    StoreConfig::default().stripes(2).k(256).b(8).seed(7).window(
        WindowConfig::default()
            .width(Duration::from_millis(WIDTH_MS))
            .downsample_levels(levels)
            .retention(Duration::from_secs(retention_s))
            .lateness(Duration::from_secs(lateness_s)),
    )
}

/// Sealed windows as `(start id, level, weight)` in time order.
fn sealed_of(store: &SketchStore, key: &str) -> Vec<(u64, u8, u64)> {
    store
        .window_snapshot(key)
        .expect("windowed key present")
        .sealed
        .iter()
        .map(|(start, level, s)| (*start, *level, s.stream_len()))
        .collect()
}

#[test]
fn values_on_window_boundaries_land_in_the_right_window() {
    let store = SketchStore::new(windowed_cfg(0, 3600, 10));
    // 999 is the last millisecond of window 0; 1000 the first of window 1.
    store.update_at("k", 999, &[1.0]);
    let snap = store.window_snapshot("k").unwrap();
    assert_eq!((snap.active_id, snap.watermark), (0, 0));
    assert!(snap.sealed.is_empty());
    assert_eq!(snap.total_weight(), 1);

    store.update_at("k", 1000, &[2.0]);
    let snap = store.window_snapshot("k").unwrap();
    assert_eq!((snap.active_id, snap.watermark), (1, 1), "ts 1000 rolls to window 1");
    assert_eq!(sealed_of(&store, "k"), vec![(0, 0, 1)], "window 0 sealed with its weight");

    store.update_at("k", 1999, &[3.0]);
    store.update_at("k", 2000, &[4.0]);
    assert_eq!(sealed_of(&store, "k"), vec![(0, 0, 1), (1, 0, 2)]);
    let snap = store.window_snapshot("k").unwrap();
    assert_eq!((snap.active_id, snap.watermark), (2, 2));
    assert_eq!(snap.total_weight(), 4, "every boundary value retained exactly once");

    // Range reads respect the same boundaries (half-open, ms-granular).
    assert_eq!(store.range_summary("k", 0, 1000).unwrap().stream_len(), 1);
    assert_eq!(store.range_summary("k", 1000, 2000).unwrap().stream_len(), 2);
    assert_eq!(store.range_summary("k", 0, 1).unwrap().stream_len(), 1);
    assert_eq!(store.range_summary("k", 2000, 3000).unwrap().stream_len(), 1, "active covered");
    assert_eq!(store.range_summary("k", 0, 3000).unwrap().stream_len(), 4);
    assert_eq!(store.query_range("k", 500, 500, 0.5), None, "empty range holds nothing");
}

#[test]
fn late_values_inside_the_lateness_bound_merge_into_their_window() {
    let store = SketchStore::new(windowed_cfg(0, 3600, 5));
    store.update_at("k", 0, &[1.0]);
    store.update_at("k", 4_500, &[2.0]); // watermark -> 4, seals window 0
                                         // Window 2 was never written; a late value lands 2 windows behind the
                                         // watermark, inside the 5-window lateness bound.
    store.update_at("k", 2_250, &[9.0]);
    assert_eq!(store.stats().window_late_drops, 0);
    assert_eq!(sealed_of(&store, "k"), vec![(0, 0, 1), (2, 0, 1)], "late value sealed at its id");
    let snap = store.window_snapshot("k").unwrap();
    assert_eq!((snap.active_id, snap.watermark), (4, 4), "late writes never move the watermark");
    assert_eq!(snap.total_weight(), 3);
    // The late value is visible to a range query over exactly its window.
    assert_eq!(store.query_range("k", 2000, 3000, 0.5), Some(9.0));
}

#[test]
fn late_values_beyond_the_lateness_bound_are_dropped_and_counted() {
    let store = SketchStore::new(windowed_cfg(0, 3600, 1));
    store.update_at("k", 500, &[1.0]);
    store.update_at("k", 5_500, &[2.0]); // watermark -> 5
    let before = store.window_snapshot("k").unwrap().total_weight();
    // Window 0 is 5 windows behind a 1-window bound: inadmissible.
    store.update_at("k", 750, &[666.0]);
    assert_eq!(store.stats().window_late_drops, 1, "the drop is counted");
    let snap = store.window_snapshot("k").unwrap();
    assert_eq!(snap.total_weight(), before, "dropped weight never enters the store");
    assert_eq!(sealed_of(&store, "k"), vec![(0, 0, 1)], "the sealed window is untouched");
    assert_eq!(store.query_range("k", 0, 1000, 0.999), Some(1.0), "666.0 is not in window 0");
}

#[test]
fn downsampling_conserves_weight_exactly() {
    // 64-window retention over 2 levels: level-0 windows stay fresh for
    // 16 windows, so a 40-window backlog has plenty of promotion fodder.
    let store = SketchStore::new(windowed_cfg(2, 64, 120));
    for w in 0..=40u64 {
        store.update_at("k", w * WIDTH_MS + 100, &[w as f64]);
    }
    let before = store.window_snapshot("k").unwrap();
    assert_eq!(before.total_weight(), 41);
    let windows_before = 1 + before.sealed.len();

    store.cool_down();

    let stats = store.stats();
    assert!(stats.window_downsamples > 0, "the sweep promoted something");
    assert_eq!(stats.window_evictions, 0, "nothing is past the 64-window horizon");
    let after = store.window_snapshot("k").unwrap();
    assert_eq!(after.total_weight(), 41, "downsampling moves weight, never loses it");
    assert!(
        after.sealed.iter().any(|(_, level, _)| *level > 0),
        "some window climbed a level: {:?}",
        after.sealed.iter().map(|(s, l, _)| (*s, *l)).collect::<Vec<_>>()
    );
    assert!(1 + after.sealed.len() < windows_before, "promotion merged windows");
    assert_eq!(stats.stream_len, 41, "store-wide accounting agrees");
}

#[test]
fn retention_evicts_windows_wholly_past_the_horizon() {
    let store = SketchStore::new(windowed_cfg(0, 4, 120));
    for w in 0..=10u64 {
        store.update_at("k", w * WIDTH_MS, &[w as f64]);
    }
    store.cool_down();
    let stats = store.stats();
    // Watermark 10, 4-window retention: the floor is 7, so sealed
    // windows 0..=6 go and 7..=9 stay (10 is active, never evicted).
    assert_eq!(stats.window_evictions, 7);
    assert_eq!(sealed_of(&store, "k"), vec![(7, 0, 1), (8, 0, 1), (9, 0, 1)]);
    assert_eq!(store.window_snapshot("k").unwrap().total_weight(), 4);
    assert_eq!(stats.stream_len, 4, "evicted weight left the store's accounting too");
    // Queries into the evicted past come back empty, not stale.
    assert_eq!(store.query_range("k", 0, 7000, 0.5), None);
}

/// The acceptance-criterion oracle: `merged_query_range` over any span
/// must equal the quantile of the exact merge of every covered window's
/// values. With per-window batches far below `k`, no summary ever
/// compresses, so equality is exact — the store's answer and a summary
/// built directly from the covered raw values must agree bit for bit.
#[test]
fn merged_query_range_matches_the_exact_oracle() {
    let store = SketchStore::new(windowed_cfg(0, 3600, 3600));
    let keys = ["a", "b"];
    // (key, ts, value): in-order and late writes across windows 0..6.
    let writes: &[(&str, u64, f64)] = &[
        ("a", 250, 10.0),
        ("a", 1_250, 20.0),
        ("b", 500, 15.0),
        ("a", 3_100, 40.0),
        ("b", 2_900, 35.0),
        ("a", 2_500, 30.0), // late for "a", admissible
        ("b", 4_750, 55.0),
        ("a", 5_000, 50.0),
        ("b", 900, 12.0), // late for "b", admissible
        ("a", 6_400, 60.0),
    ];
    for &(key, ts, v) in writes {
        store.update_at(key, ts, &[v]);
    }
    let spans: &[(u64, u64)] =
        &[(0, 3000), (1000, 2000), (2500, 6000), (0, u64::MAX), (5999, 6001), (800, 900)];
    for &(t0, t1) in spans {
        // Whole-window granularity: a window is covered iff it overlaps
        // the span, and then contributes all of its values.
        let covered = |ts: u64| {
            let wid = ts / WIDTH_MS;
            wid >= t0 / WIDTH_MS && wid < t1.div_ceil(WIDTH_MS)
        };
        let mut bits: Vec<u64> = writes
            .iter()
            .filter(|(_, ts, _)| covered(*ts))
            .map(|(_, _, v)| v.to_ordered_bits())
            .collect();
        bits.sort_unstable();
        let oracle = WeightedSummary::from_parts([(&bits[..], 1u64)]);
        let merged = store.merged_range_summary(&keys, t0, t1);
        assert_eq!(
            merged.stream_len(),
            oracle.stream_len(),
            "span [{t0}, {t1}): covered weight must match the oracle"
        );
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(
                store.merged_query_range(&keys, t0, t1, phi),
                oracle.quantile::<f64>(phi),
                "span [{t0}, {t1}), phi {phi}"
            );
        }
    }
}

#[test]
fn a_range_touching_a_downsampled_window_gets_its_whole_span() {
    let store = SketchStore::new(windowed_cfg(2, 8, 120));
    for w in 0..=7u64 {
        store.update_at("k", w * WIDTH_MS, &[w as f64]);
    }
    store.cool_down(); // promotes the oldest windows past the 2-window fresh band
    let snap = store.window_snapshot("k").unwrap();
    let (start, level, weight) = snap
        .sealed
        .iter()
        .find(|(_, level, _)| *level > 0)
        .map(|(s, l, sum)| (*s, *l, sum.stream_len()))
        .expect("the sweep produced a coarse window");
    assert!(weight > 1, "a coarse window holds more than one source window's weight");
    // A 1 ms probe into the coarse window returns its entire merged span:
    // the granularity contract downsampling trades for memory.
    let t_probe = start * WIDTH_MS + (u64::from(level)) * WIDTH_MS / 2;
    let got = store.range_summary("k", t_probe, t_probe + 1).unwrap().stream_len();
    assert_eq!(got, weight, "coarse windows are merged whole");
}

// ---------------------------------------------------------------------------
// Property test: the windowed state machine is exactly predictable.
// ---------------------------------------------------------------------------

const KEYS: usize = 2;

fn key_name(i: usize) -> String {
    format!("key-{i}")
}

#[derive(Clone, Debug)]
enum Op {
    /// `update_at` of `n` values stamped inside window `wid`.
    UpdateAt { key: usize, wid: u64, n: usize },
    /// Plain (untimestamped) `update_many`: lands in the active window.
    Update { key: usize, n: usize },
    /// One housekeeping sweep: downsample + evict.
    CoolDown,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..KEYS, 0u64..16, 1usize..8).prop_map(|(key, wid, n)| Op::UpdateAt { key, wid, n }),
        (0..KEYS, 0u64..16, 1usize..8).prop_map(|(key, wid, n)| Op::UpdateAt { key, wid, n }),
        (0..KEYS, 1usize..8).prop_map(|(key, n)| Op::Update { key, n }),
        Just(Op::CoolDown),
    ]
}

/// Reference model of one key's windowed state under a zero-downsampling
/// plan: window weights by id, plus the active id and watermark. Mirrors
/// the documented transition rules, independently re-implemented.
#[derive(Default)]
struct KeyModel {
    present: bool,
    active_id: u64,
    watermark: u64,
    /// Weight per window id (the active window's weight lives here too).
    weights: std::collections::BTreeMap<u64, u64>,
    /// Batches (not values) dropped past the lateness bound — the
    /// store's counter is per dropped `update_at` call.
    dropped_batches: u64,
}

impl KeyModel {
    fn write(&mut self, wid: u64, n: u64, lateness_windows: u64) {
        if !self.present {
            self.present = true;
            self.active_id = wid;
            self.watermark = wid;
            *self.weights.entry(wid).or_insert(0) += n;
            return;
        }
        if wid >= self.active_id {
            // Roll (or stay): the active window follows the newest write.
            self.active_id = wid;
            self.watermark = self.watermark.max(wid);
            *self.weights.entry(wid).or_insert(0) += n;
        } else if self.watermark - wid <= lateness_windows {
            *self.weights.entry(wid).or_insert(0) += n;
        } else {
            self.dropped_batches += 1;
        }
    }

    fn update_plain(&mut self, n: u64) {
        if !self.present {
            self.present = true; // created at window 0
        }
        *self.weights.entry(self.active_id).or_insert(0) += n;
    }

    fn cool_down(&mut self, retention_windows: u64) {
        if !self.present {
            return;
        }
        let floor = (self.watermark + 1).saturating_sub(retention_windows);
        // Only sealed windows evict; the active one survives regardless.
        let active = self.active_id;
        self.weights.retain(|&wid, _| wid >= floor || wid == active);
    }

    fn total_weight(&self) -> u64 {
        self.weights.values().sum()
    }

    /// Expected sealed set: every window holding weight except the active.
    fn sealed_ids(&self) -> Vec<u64> {
        self.weights.keys().copied().filter(|&w| w != self.active_id).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero downsampling: the full state — active id, watermark, sealed
    /// window ids, per-key total weight, store-wide drop counter — must
    /// match the model after every operation.
    #[test]
    fn windowed_state_is_exactly_predictable(
        ops in prop::collection::vec(op_strategy(), 1..32)
    ) {
        const RETENTION: u64 = 6;
        const LATENESS: u64 = 3;
        let store = SketchStore::new(windowed_cfg(0, RETENTION, LATENESS));
        let mut models: Vec<KeyModel> = (0..KEYS).map(|_| KeyModel::default()).collect();
        for op in &ops {
            match *op {
                Op::UpdateAt { key, wid, n } => {
                    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
                    store.update_at(&key_name(key), wid * WIDTH_MS + 1, &values);
                    models[key].write(wid, n as u64, LATENESS);
                }
                Op::Update { key, n } => {
                    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
                    store.update_many(&key_name(key), &values);
                    models[key].update_plain(n as u64);
                }
                Op::CoolDown => {
                    store.cool_down();
                    for model in &mut models {
                        model.cool_down(RETENTION);
                    }
                }
            }
            for (key, model) in models.iter().enumerate() {
                let name = key_name(key);
                let snap = store.window_snapshot(&name);
                prop_assert_eq!(snap.is_some(), model.present, "presence of {} after {:?}", &name, op);
                let Some(snap) = snap else { continue };
                prop_assert_eq!(snap.active_id, model.active_id, "active of {} after {:?}", &name, op);
                prop_assert_eq!(snap.watermark, model.watermark, "watermark of {} after {:?}", &name, op);
                prop_assert_eq!(
                    snap.total_weight(), model.total_weight(),
                    "total weight of {} after {:?}", &name, op
                );
                let sealed: Vec<u64> = snap.sealed.iter().map(|(s, _, _)| *s).collect();
                prop_assert_eq!(sealed, model.sealed_ids(), "sealed set of {} after {:?}", &name, op);
            }
            let expected_drops: u64 = models.iter().map(|m| m.dropped_batches).sum();
            prop_assert_eq!(store.stats().window_late_drops, expected_drops);
        }
    }

    /// With downsampling on and retention far beyond reach, no weight can
    /// ever leave: any interleaving of writes, seals, promotions, and
    /// sweeps conserves each key's admitted weight exactly.
    #[test]
    fn downsampling_interleavings_conserve_weight(
        ops in prop::collection::vec(op_strategy(), 1..32)
    ) {
        const LATENESS: u64 = 3;
        let store = SketchStore::new(windowed_cfg(2, 3600, LATENESS));
        let mut models: Vec<KeyModel> = (0..KEYS).map(|_| KeyModel::default()).collect();
        for op in &ops {
            match *op {
                Op::UpdateAt { key, wid, n } => {
                    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
                    store.update_at(&key_name(key), wid * WIDTH_MS + 1, &values);
                    models[key].write(wid, n as u64, LATENESS);
                }
                Op::Update { key, n } => {
                    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
                    store.update_many(&key_name(key), &values);
                    models[key].update_plain(n as u64);
                }
                Op::CoolDown => {
                    store.cool_down();
                    // 3600-window retention, ids < 16: nothing evicts.
                }
            }
            for (key, model) in models.iter().enumerate() {
                if !model.present {
                    continue;
                }
                let snap = store.window_snapshot(&key_name(key)).expect("present key");
                prop_assert_eq!(
                    snap.total_weight(), model.total_weight(),
                    "weight of {} after {:?}", key_name(key), op
                );
            }
            prop_assert_eq!(store.stats().window_evictions, 0);
        }
    }
}
