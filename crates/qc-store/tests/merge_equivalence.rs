//! Merge-equivalence: merging **serialized snapshots** of two sketches fed
//! disjoint streams answers quantiles within the combined error bound of a
//! single sketch over the concatenated stream (the mergeability property of
//! Agarwal et al. that makes distributed deployment sound).
//!
//! Error budget per φ, following §4.2 of the paper and `qc_common::error`:
//! each input sketch contributes ε_c(k) rank error over its own substream,
//! merging compacts once more (another ε_c(k)-class term), and unflushed
//! buffers contribute at most r/n. We assert against
//! `3·ε_c(k) + r/n + slack` where slack covers the discreteness of small
//! streams — comfortably tighter than the trivial bound and far tighter
//! than what a broken merge (dropped weight, biased compaction) could pass.

use qc_common::error::sequential_epsilon;
use qc_common::Summary;
use qc_store::merge_summaries;
use qc_store::wire::{decode_summary, encode_summary};
use qc_workloads::exact::ExactOracle;
use quancurrent::Quancurrent;

fn fill(sketch: &Quancurrent<f64>, values: &[f64]) {
    let mut updater = sketch.updater();
    for &v in values {
        updater.update(v);
    }
}

/// Interleaved odd/even split so both substreams span the full value range
/// (harder on the merge than contiguous halves: every rank mixes weight
/// from both inputs).
fn disjoint_streams(n: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let all: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let a: Vec<f64> = all.iter().copied().filter(|v| (*v as u64).is_multiple_of(2)).collect();
    let b: Vec<f64> = all.iter().copied().filter(|v| (*v as u64) % 2 == 1).collect();
    (a, b, all)
}

#[test]
fn merged_serialized_snapshots_match_concatenated_stream() {
    let k = 256;
    let n = 200_000u64;
    let (stream_a, stream_b, combined) = disjoint_streams(n);

    let sketch_a = Quancurrent::<f64>::builder().k(k).b(16).seed(11).build();
    let sketch_b = Quancurrent::<f64>::builder().k(k).b(16).seed(22).build();
    fill(&sketch_a, &stream_a);
    fill(&sketch_b, &stream_b);

    // Through the wire: snapshot -> bytes -> summary, then merge.
    let frame_a = encode_summary(&sketch_a.quiescent_summary());
    let frame_b = encode_summary(&sketch_b.quiescent_summary());
    let remote_a = decode_summary(&frame_a).expect("frame A decodes");
    let remote_b = decode_summary(&frame_b).expect("frame B decodes");
    let merged = merge_summaries(&[remote_a, remote_b], k, 33);

    let oracle = ExactOracle::from_values(&combined);
    let eps = sequential_epsilon(k);
    // Thread-local updater buffers (b=16 per sketch) never flushed.
    let unflushed = 2.0 * 16.0 / n as f64;
    let budget = 3.0 * eps + unflushed + 0.005;

    let visible = merged.stream_len();
    assert!(
        n - visible <= 2 * 16,
        "merged summary lost more than the unflushed buffers: {visible}/{n}"
    );

    for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let estimate = merged.quantile_bits(phi).expect("non-empty");
        let err = oracle.rank_error(phi, estimate);
        assert!(
            err <= budget,
            "phi={phi}: normalized rank error {err:.5} exceeds budget {budget:.5}"
        );
    }
}

#[test]
fn merge_equivalence_holds_across_k() {
    // The bound must scale with k, not just pass at one operating point.
    for (k, seed) in [(64usize, 1u64), (512, 2)] {
        let n = 60_000u64;
        let (stream_a, stream_b, combined) = disjoint_streams(n);
        let sketch_a = Quancurrent::<f64>::builder().k(k).b(8).seed(seed).build();
        let sketch_b = Quancurrent::<f64>::builder().k(k).b(8).seed(seed + 100).build();
        fill(&sketch_a, &stream_a);
        fill(&sketch_b, &stream_b);

        let merged = merge_summaries(
            &[
                decode_summary(&encode_summary(&sketch_a.quiescent_summary())).unwrap(),
                decode_summary(&encode_summary(&sketch_b.quiescent_summary())).unwrap(),
            ],
            k,
            seed + 7,
        );
        let oracle = ExactOracle::from_values(&combined);
        let budget = 3.0 * sequential_epsilon(k) + 2.0 * 8.0 / n as f64 + 0.005;
        for phi in [0.1, 0.5, 0.9] {
            let err = oracle.rank_error(phi, merged.quantile_bits(phi).unwrap());
            assert!(err <= budget, "k={k} phi={phi}: err {err:.5} > budget {budget:.5}");
        }
    }
}
