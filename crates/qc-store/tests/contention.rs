//! Contention regression: hammer `update_many`/`snapshot_bytes`/`remove`
//! on keys that all collide in a single stripe, from many threads at once.
//!
//! With `stripes: 1` every key maps to the same mutex, so this is the
//! worst case the striping design ever faces: all writers, snapshotters,
//! and removers serialize on one lock. The invariants under that load:
//!
//! * no deadlock (the suite finishes; CI adds an external timeout);
//! * exact total-weight conservation for surviving keys — every element
//!   handed to `update_many` is represented in the final summaries;
//! * snapshots taken mid-hammer are always decodable and their stream
//!   lengths per key never decrease (a key only ever gains weight);
//! * `merged_summary` consistently skips missing and removed keys, while
//!   counting every survivor exactly once.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use qc_common::Summary;
use qc_store::wire::decode_summary;
use qc_store::{SketchStore, StoreConfig};

const HOT_KEYS: usize = 4;
const WRITERS_PER_KEY: usize = 2;
const BATCHES: usize = 60;
const BATCH: usize = 200;

fn hot_key(i: usize) -> String {
    format!("hot-{i}")
}

#[test]
fn single_stripe_hammer_conserves_weight_and_skips_removed_keys() {
    // One stripe: every key collides by construction.
    let store = Arc::new(SketchStore::new(StoreConfig::default().stripes(1).k(128).b(4).seed(9)));
    assert_eq!(store.num_stripes(), 1);

    let stop = Arc::new(AtomicBool::new(false));
    let doomed_rounds = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Writers: two per hot key, fixed element budget each.
        for key_idx in 0..HOT_KEYS {
            for w in 0..WRITERS_PER_KEY {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let key = hot_key(key_idx);
                    let base = ((key_idx * WRITERS_PER_KEY + w) * 1_000_000) as f64;
                    for batch in 0..BATCHES {
                        let values: Vec<f64> =
                            (0..BATCH).map(|i| base + (batch * BATCH + i) as f64).collect();
                        store.update_many(&key, &values);
                    }
                });
            }
        }

        // Snapshotters: continuously serialize hot keys; every frame must
        // decode, and per-key stream length must be monotone.
        for reader in 0..2 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let key = hot_key(reader % HOT_KEYS);
                let mut last_len = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if let Some(frame) = store.snapshot_bytes(&key) {
                        let summary = decode_summary(&frame)
                            .expect("mid-hammer snapshot frames always decode");
                        let len = summary.stream_len();
                        assert!(
                            len >= last_len,
                            "stream length went backwards on {key}: {last_len} -> {len}"
                        );
                        last_len = len;
                    }
                }
            });
        }

        // Remover: churns short-lived keys in the same (only) stripe —
        // create, fill, snapshot, remove — interleaved with the writers.
        {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let doomed_rounds = Arc::clone(&doomed_rounds);
            s.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("doomed-{}", round % 3);
                    store.update_many(&key, &[1.0, 2.0, 3.0]);
                    let frame = store.snapshot_bytes(&key).expect("just created");
                    assert!(decode_summary(&frame).is_ok());
                    assert!(store.remove(&key), "own key must be removable");
                    round += 1;
                }
                doomed_rounds.store(round, Ordering::Relaxed);
            });
        }

        // Let the writers finish, then release the loops.
        // (Scoped threads: writers joined implicitly when the closure-only
        // threads see `stop`; we flip it from a monitor watching progress.)
        let store_monitor = Arc::clone(&store);
        let stop_setter = Arc::clone(&stop);
        s.spawn(move || {
            let hot_total = (HOT_KEYS * WRITERS_PER_KEY * BATCHES * BATCH) as u64;
            loop {
                // Counter invariant, asserted *mid-flight*: the `updates`
                // counter is bumped under the same stripe lock as the
                // engine mutation, so a stats sweep can never observe
                // resident weight that is not yet counted. (This is an
                // ingest-free workload; removes only ever discard weight,
                // so `stream_len <= updates` must hold at every instant.)
                let stats = store_monitor.stats();
                assert!(
                    stats.stream_len <= stats.updates,
                    "stats observed uncounted weight: stream_len {} > updates {}",
                    stats.stream_len,
                    stats.updates
                );
                // Cross-field consistency model (documented per field on
                // `StoreStats`), asserted mid-flight: read classification
                // (hits + misses >= reads), batch accounting, and the
                // tier partition must hold for *any* sample, not just at
                // quiescence.
                assert!(stats.consistency(), "mid-flight stats sample inconsistent: {stats:?}");
                let keys: Vec<String> = (0..HOT_KEYS).map(hot_key).collect();
                let resident: u64 = keys
                    .iter()
                    .filter_map(|k| store_monitor.summary_of(k))
                    .map(|s| s.stream_len())
                    .sum();
                if resident >= hot_total {
                    break;
                }
                std::thread::yield_now();
            }
            stop_setter.store(true, Ordering::Relaxed);
        });
    });

    // ---- Quiescent invariants ----
    let hot_total = (HOT_KEYS * WRITERS_PER_KEY * BATCHES * BATCH) as u64;

    // Exact conservation per key and in aggregate.
    let mut sum = 0u64;
    for i in 0..HOT_KEYS {
        let summary = store.summary_of(&hot_key(i)).expect("hot key survives");
        let expected = (WRITERS_PER_KEY * BATCHES * BATCH) as u64;
        assert_eq!(
            summary.stream_len(),
            expected,
            "{}: weight not conserved under contention",
            hot_key(i)
        );
        sum += summary.stream_len();
    }
    assert_eq!(sum, hot_total);

    // All doomed keys are gone; the store holds exactly the hot keys.
    let mut keys = store.keys();
    keys.sort();
    let mut expected_keys: Vec<String> = (0..HOT_KEYS).map(hot_key).collect();
    expected_keys.sort();
    assert_eq!(keys, expected_keys, "removed keys must not linger");

    // Store-level accounting agrees with the per-key sweep: total updates
    // include the doomed churn (3 per round), resident weight does not.
    let stats = store.stats();
    let churn = doomed_rounds.load(Ordering::Relaxed) * 3;
    assert_eq!(stats.updates, hot_total + churn, "update counter lost increments");
    assert_eq!(stats.stream_len, hot_total, "resident weight disagrees with summaries");
    assert!(stats.consistency(), "quiescent stats inconsistent: {stats:?}");

    // merged_summary skips missing and removed keys and counts every
    // survivor exactly once — including duplicates in the key list? No:
    // each listed key contributes its summary each time it appears, so
    // pass each once; absent keys contribute nothing.
    let mut probe: Vec<String> = (0..HOT_KEYS).map(hot_key).collect();
    probe.push("doomed-0".into()); // removed
    probe.push("doomed-1".into()); // removed
    probe.push("never-existed".into()); // missing
    let merged = store.merged_summary(&probe);
    assert_eq!(
        merged.stream_len(),
        hot_total,
        "merged_summary must skip removed/missing keys and count survivors once"
    );

    // And the merged quantiles stay inside the written range.
    let lo = merged.quantile::<f64>(0.01).unwrap();
    let hi = merged.quantile::<f64>(0.99).unwrap();
    let max_written = ((HOT_KEYS * WRITERS_PER_KEY - 1) * 1_000_000 + BATCHES * BATCH) as f64;
    assert!(lo >= 0.0 && hi <= max_written, "merged quantiles [{lo}, {hi}] escape written range");
}

#[test]
fn concurrent_remove_and_update_on_one_key_never_lose_the_lock() {
    // Tight remove/update race on a single key in a single stripe: the
    // key flickers in and out of existence; the store must neither
    // deadlock nor corrupt its accounting. Re-creation after removal
    // starts a fresh sketch, so the only invariant on stream length is
    // consistency with what the final summary reports.
    let store = Arc::new(SketchStore::new(StoreConfig::default().stripes(1).k(64).b(4).seed(5)));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..3 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    store.update("flicker", (t * 1000 + i) as f64);
                    i += 1;
                }
            });
        }
        {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for _ in 0..500 {
                    store.remove("flicker");
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });

    // Whatever survived is internally consistent.
    let stats = store.stats();
    assert!(stats.consistency(), "post-race stats inconsistent: {stats:?}");
    match store.summary_of("flicker") {
        Some(summary) => assert_eq!(stats.stream_len, summary.stream_len()),
        None => assert_eq!(stats.stream_len, 0),
    }
    // merged_summary over the flickering key plus garbage stays sound.
    let merged = store.merged_summary(&["flicker", "ghost"]);
    assert_eq!(merged.stream_len(), stats.stream_len);
}
