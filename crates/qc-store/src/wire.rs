//! Versioned, endian-stable binary encoding of [`WeightedSummary`].
//!
//! This is the interchange seam of the workspace: any process can snapshot a
//! sketch, move the bytes over a socket or a file, and another process can
//! [`merge`](crate::merge) the decoded summary into its own aggregate. The
//! paper's sketch is an in-process object; mergeable *serialized* summaries
//! are what make it deployable across processes (Agarwal et al., *Mergeable
//! Summaries*).
//!
//! # Layout (version 1)
//!
//! All multi-byte integers are little-endian; varints are LEB128 (7 bits per
//! byte, low group first, at most 10 bytes for a `u64`).
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"QCWS"
//! 4       2     version = 1            (u16 LE)
//! 6       2     flags   = 0            (u16 LE, reserved — must be zero)
//! 8       var   item count `n`         (varint)
//! ·       var   n value deltas         (varint; first is absolute, the
//!                                       rest are gaps between consecutive
//!                                       sorted `value_bits`)
//! ·       var   n weights              (varint, each ≥ 1)
//! end-4   4     CRC-32 (IEEE)          (u32 LE, over all preceding bytes)
//! ```
//!
//! Delta-coding the sorted value bits keeps snapshots compact (consecutive
//! summary points are near each other in ordered-bit space), and the trailing
//! CRC turns random corruption into a typed [`WireError`] instead of a
//! garbage summary. Decoding never panics on arbitrary input — every
//! arithmetic step is checked.

use qc_common::summary::{WeightedItem, WeightedSummary};

/// First four bytes of every encoded summary.
pub const MAGIC: [u8; 4] = *b"QCWS";

/// The wire version this module encodes (and the highest it decodes).
pub const VERSION: u16 = 1;

/// Fixed header length in bytes (magic + version + flags).
pub const HEADER_LEN: usize = 8;

/// Trailing checksum length in bytes.
pub const CHECKSUM_LEN: usize = 4;

/// Typed decode failures. Every malformed input maps to one of these —
/// decoding must never panic, whatever the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a well-formed frame can occupy.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// Version newer than this decoder understands.
    UnsupportedVersion {
        /// Version in the header.
        found: u16,
        /// Highest version this build decodes.
        supported: u16,
    },
    /// Reserved flag bits were set (v1 defines none).
    ReservedFlags {
        /// The flag word found.
        found: u16,
    },
    /// The trailing CRC-32 does not match the frame contents.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// A varint ran past 64 bits or past the end of the payload.
    MalformedVarint {
        /// Byte offset of the varint's first byte.
        offset: usize,
    },
    /// Accumulated value bits overflowed `u64` (corrupt delta stream).
    ValueOverflow {
        /// Index of the offending item.
        index: usize,
    },
    /// An item with weight zero (v1 forbids them).
    ZeroWeight {
        /// Index of the offending item.
        index: usize,
    },
    /// Total weight overflowed `u64` (corrupt weight stream).
    WeightOverflow,
    /// Well-formed frame followed by unexpected extra bytes.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            WireError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported wire version {found} (decoder supports <= {supported})")
            }
            WireError::ReservedFlags { found } => {
                write!(f, "reserved flag bits set: {found:#06x}")
            }
            WireError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            WireError::MalformedVarint { offset } => {
                write!(f, "malformed varint at byte {offset}")
            }
            WireError::ValueOverflow { index } => {
                write!(f, "value bits overflow at item {index}")
            }
            WireError::ZeroWeight { index } => write!(f, "zero weight at item {index}"),
            WireError::WeightOverflow => write!(f, "total weight overflows u64"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the same
/// polynomial zlib and PNG use, implemented bitwise to stay table-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Append a LEB128 varint (the wire format's integer encoding, also reused
/// by `qc-server`'s request/response frames).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint starting at `*pos`, advancing `*pos` past it.
/// Rejects encodings longer than a `u64` with a typed error and never reads
/// past `buf`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let start = *pos;
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(WireError::MalformedVarint { offset: start });
        };
        *pos += 1;
        let group = (byte & 0x7f) as u64;
        // The 10th byte of a u64 varint may only carry the final bit.
        if shift == 63 && group > 1 {
            return Err(WireError::MalformedVarint { offset: start });
        }
        if shift >= 64 {
            return Err(WireError::MalformedVarint { offset: start });
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Encode a summary into a fresh byte frame.
pub fn encode_summary(summary: &WeightedSummary) -> Vec<u8> {
    let items = summary.items();
    // Items are sorted; deltas are small, so ~2 bytes/varint is typical.
    let mut out = Vec::with_capacity(HEADER_LEN + CHECKSUM_LEN + 4 + items.len() * 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags
    put_varint(&mut out, items.len() as u64);
    let mut prev = 0u64;
    for (i, item) in items.iter().enumerate() {
        let delta = if i == 0 { item.value_bits } else { item.value_bits - prev };
        put_varint(&mut out, delta);
        prev = item.value_bits;
    }
    for item in items {
        put_varint(&mut out, item.weight);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a frame produced by [`encode_summary`] (any supported version).
///
/// The whole buffer must be exactly one frame; surplus bytes are a
/// [`WireError::TrailingBytes`] so framing bugs surface loudly.
pub fn decode_summary(buf: &[u8]) -> Result<WeightedSummary, WireError> {
    let min = HEADER_LEN + 1 + CHECKSUM_LEN; // header + count varint + crc
    if buf.len() < min {
        return Err(WireError::Truncated { needed: min, have: buf.len() });
    }
    if buf[0..4] != MAGIC {
        return Err(WireError::BadMagic { found: [buf[0], buf[1], buf[2], buf[3]] });
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version == 0 || version > VERSION {
        return Err(WireError::UnsupportedVersion { found: version, supported: VERSION });
    }
    let flags = u16::from_le_bytes([buf[6], buf[7]]);
    if flags != 0 {
        return Err(WireError::ReservedFlags { found: flags });
    }
    // Validate the checksum before trusting any payload varint.
    let body_end = buf.len() - CHECKSUM_LEN;
    let stored = u32::from_le_bytes([
        buf[body_end],
        buf[body_end + 1],
        buf[body_end + 2],
        buf[body_end + 3],
    ]);
    let computed = crc32(&buf[..body_end]);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }

    let payload = &buf[..body_end];
    let mut pos = HEADER_LEN;
    let count = get_varint(payload, &mut pos)?;
    // A delta and a weight are at least one byte each: cheap sanity bound
    // that rejects absurd counts before any allocation.
    let remaining = body_end - pos;
    if count > remaining as u64 / 2 + 1 {
        // Saturate: a crafted count near u64::MAX must yield this error,
        // not an arithmetic overflow while describing it.
        let needed = usize::try_from(count)
            .ok()
            .and_then(|c| c.checked_mul(2))
            .and_then(|c| c.checked_add(pos + CHECKSUM_LEN))
            .unwrap_or(usize::MAX);
        return Err(WireError::Truncated { needed, have: buf.len() });
    }
    let count = count as usize;

    let mut values = Vec::with_capacity(count);
    let mut acc = 0u64;
    for i in 0..count {
        let delta = get_varint(payload, &mut pos)?;
        acc = if i == 0 {
            delta
        } else {
            acc.checked_add(delta).ok_or(WireError::ValueOverflow { index: i })?
        };
        values.push(acc);
    }

    let mut items = Vec::with_capacity(count);
    let mut total = 0u64;
    for (i, &value_bits) in values.iter().enumerate() {
        let weight = get_varint(payload, &mut pos)?;
        if weight == 0 {
            return Err(WireError::ZeroWeight { index: i });
        }
        total = total.checked_add(weight).ok_or(WireError::WeightOverflow)?;
        items.push(WeightedItem { value_bits, weight });
    }

    if pos != body_end {
        return Err(WireError::TrailingBytes { extra: body_end - pos });
    }
    Ok(WeightedSummary::from_items(items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_common::summary::Summary;

    fn sample_summary() -> WeightedSummary {
        WeightedSummary::from_items(vec![
            WeightedItem { value_bits: 3, weight: 1 },
            WeightedItem { value_bits: 90, weight: 4 },
            WeightedItem { value_bits: 91, weight: 2 },
            WeightedItem { value_bits: u64::MAX, weight: 8 },
        ])
    }

    #[test]
    fn roundtrip_preserves_items_and_queries() {
        let s = sample_summary();
        let bytes = encode_summary(&s);
        let back = decode_summary(&bytes).unwrap();
        assert_eq!(back.items(), s.items());
        assert_eq!(back.stream_len(), s.stream_len());
        for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(back.quantile_bits(phi), s.quantile_bits(phi));
        }
    }

    #[test]
    fn empty_summary_roundtrips() {
        let bytes = encode_summary(&WeightedSummary::empty());
        assert_eq!(bytes.len(), HEADER_LEN + 1 + CHECKSUM_LEN);
        let back = decode_summary(&bytes).unwrap();
        assert_eq!(back.stream_len(), 0);
        assert_eq!(back.num_retained(), 0);
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = encode_summary(&sample_summary());
        for len in 0..bytes.len() {
            let err = decode_summary(&bytes[..len]).unwrap_err();
            match err {
                WireError::Truncated { .. }
                | WireError::ChecksumMismatch { .. }
                | WireError::MalformedVarint { .. } => {}
                other => panic!("unexpected error at len {len}: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode_summary(&sample_summary());
        bytes[0] = b'X';
        assert!(matches!(decode_summary(&bytes), Err(WireError::BadMagic { .. })));
    }

    #[test]
    fn version_skew_detected() {
        let mut bytes = encode_summary(&sample_summary());
        bytes[4] = 0x2a;
        // Header edits must also fail the CRC unless re-signed; re-sign to
        // test the version check in isolation.
        let body_end = bytes.len() - CHECKSUM_LEN;
        let crc = crc32(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_summary(&bytes),
            Err(WireError::UnsupportedVersion { found: 0x2a, supported: VERSION })
        );
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut bytes = encode_summary(&sample_summary());
        let mid = HEADER_LEN + 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(decode_summary(&bytes), Err(WireError::ChecksumMismatch { .. })));
    }

    #[test]
    fn zero_weight_rejected() {
        // Hand-build a frame with a zero weight and a valid CRC.
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC);
        f.extend_from_slice(&VERSION.to_le_bytes());
        f.extend_from_slice(&0u16.to_le_bytes());
        put_varint(&mut f, 1); // one item
        put_varint(&mut f, 7); // value
        put_varint(&mut f, 0); // weight 0 — invalid
        let crc = crc32(&f);
        f.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_summary(&f), Err(WireError::ZeroWeight { index: 0 }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC);
        f.extend_from_slice(&VERSION.to_le_bytes());
        f.extend_from_slice(&0u16.to_le_bytes());
        put_varint(&mut f, 0); // zero items
        f.push(0x00); // stray payload byte
        let crc = crc32(&f);
        f.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_summary(&f), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX / 2, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn absurd_count_with_valid_crc_is_typed_not_panic() {
        // A frame whose count varint claims u64::MAX items but whose CRC is
        // valid (the checksum is unkeyed, so anyone can compute it) must
        // come back as Truncated — including in debug builds, where naive
        // size arithmetic would overflow-panic.
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC);
        f.extend_from_slice(&VERSION.to_le_bytes());
        f.extend_from_slice(&0u16.to_le_bytes());
        put_varint(&mut f, u64::MAX);
        let crc = crc32(&f);
        f.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_summary(&f), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes cannot encode a u64.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert!(matches!(get_varint(&buf, &mut pos), Err(WireError::MalformedVarint { .. })));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xcbf43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn delta_coding_is_compact_for_clustered_values() {
        let items: Vec<WeightedItem> =
            (0..1000).map(|i| WeightedItem { value_bits: 1_000_000 + i * 3, weight: 1 }).collect();
        let s = WeightedSummary::from_items(items);
        let bytes = encode_summary(&s);
        // 1 byte per delta + 1 per weight + small header/first-value cost.
        assert!(bytes.len() < 1000 * 2 + 32, "frame unexpectedly large: {}", bytes.len());
    }
}
