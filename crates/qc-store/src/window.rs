//! Time-windowed sub-sketches: window-aligned partitioning of a key's
//! stream, with downsampling into coarser windows and retention eviction.
//!
//! Real metric traffic is `(key, time window)` — "p99 of `latency.api`
//! over the last 5 minutes" — which an unbounded per-key sketch cannot
//! answer. This module holds the *bookkeeping* for the windowed layer the
//! store composes over its engines:
//!
//! * the **active window** of a key is its live engine (the full
//!   shared-lock leased write path and summary cache apply unchanged);
//! * **sealed windows** are immutable [`WeightedSummary`] snapshots,
//!   keyed by their level-0 start id in a [`BTreeMap`] so time-range
//!   reads walk them in order without any lock beyond the shared stripe
//!   hold;
//! * old sealed windows **downsample** into coarser ones (a level-`l`
//!   window spans `2^l` level-0 widths) by exact-weight
//!   [`crate::merge::merge_summaries`], so total weight is conserved
//!   through every seal → downsample → range-merge chain;
//! * windows older than the retention horizon are **evicted** — the one
//!   transition that deliberately lets weight leave the store.
//!
//! Everything here is integer window-id arithmetic on caller-supplied
//! event timestamps (milliseconds). There is **no wall clock**: the
//! per-key *watermark* (highest level-0 window id seen via a timestamped
//! update) drives lateness admission, downsampling, and eviction, which
//! makes every transition deterministic from the update stream alone —
//! the same clock-injection discipline as `qc-ingest`'s breaker.
//!
//! The id math: a timestamp `ts` (ms) lands in level-0 window
//! `ts / width_ms` (start-inclusive, end-exclusive). A level-`l` window
//! starting at id `s` covers ids `[s, s + 2^l)`; its parent at level
//! `l+1` starts at `s` rounded down to a multiple of `2^(l+1)`, so
//! sibling promotions always meet in the same slot and merge.
//!
//! Durability rides the store's split append/sync path unchanged:
//! windowed records (v2 frames carrying the window id) are appended and
//! LSN-sequenced under the stripe-lock hold, and the writer then waits
//! on the group-commit watermark with no lock held — active-window
//! writes, late merges, and window rolls all share fsyncs with every
//! other concurrent durable writer (see `qc_store::persist`).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use qc_common::summary::{Summary, WeightedSummary};

/// Configuration for the time-windowed layer, set via
/// [`crate::StoreConfig::window`]. All durations are normalized to whole
/// milliseconds; sub-window durations round **up** to whole windows where
/// a bound is derived (lateness, retention).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one level-0 window. Clamped to at least 1 ms.
    pub width: Duration,
    /// How many downsampling levels sealed windows may climb. Level `l`
    /// spans `2^l` level-0 windows; `0` disables downsampling entirely.
    pub downsample_levels: u8,
    /// How long sealed data is kept, measured against the key's
    /// watermark. Rounds up to whole windows, clamped to at least one
    /// window. Windows wholly older than the horizon are evicted by the
    /// housekeeping sweep — their weight leaves the store.
    pub retention: Duration,
    /// How far behind the key's watermark a timestamped value may land
    /// and still be admitted (merged into the sealed window covering
    /// it). Values later than this are dropped and counted
    /// (`store_window_late_drops`). Rounds up to whole windows.
    pub lateness: Duration,
}

impl Default for WindowConfig {
    /// One-minute windows, two downsample levels, one hour of retention,
    /// two minutes of lateness.
    fn default() -> Self {
        WindowConfig {
            width: Duration::from_secs(60),
            downsample_levels: 2,
            retention: Duration::from_secs(3600),
            lateness: Duration::from_secs(120),
        }
    }
}

impl WindowConfig {
    /// Set the level-0 window width.
    pub fn width(mut self, width: Duration) -> Self {
        self.width = width;
        self
    }

    /// Set how many downsampling levels sealed windows may climb.
    pub fn downsample_levels(mut self, levels: u8) -> Self {
        self.downsample_levels = levels;
        self
    }

    /// Set the retention horizon.
    pub fn retention(mut self, retention: Duration) -> Self {
        self.retention = retention;
        self
    }

    /// Set the lateness bound.
    pub fn lateness(mut self, lateness: Duration) -> Self {
        self.lateness = lateness;
        self
    }
}

/// [`WindowConfig`] normalized into integer window-id space: every
/// decision the store makes is arithmetic on these four numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct WindowPlan {
    /// Level-0 window width in milliseconds (>= 1).
    pub(crate) width_ms: u64,
    /// Downsampling levels (capped so `1 << level` cannot overflow).
    pub(crate) levels: u8,
    /// Retention horizon in whole level-0 windows (>= 1).
    pub(crate) retention_windows: u64,
    /// Lateness bound in whole level-0 windows.
    pub(crate) lateness_windows: u64,
}

impl WindowPlan {
    pub(crate) fn new(cfg: &WindowConfig) -> Self {
        let width_ms = (cfg.width.as_millis() as u64).max(1);
        let in_windows = |d: Duration| (d.as_millis() as u64).div_ceil(width_ms);
        WindowPlan {
            width_ms,
            levels: cfg.downsample_levels.min(32),
            retention_windows: in_windows(cfg.retention).max(1),
            lateness_windows: in_windows(cfg.lateness),
        }
    }

    /// Level-0 window id holding timestamp `ts_ms`.
    pub(crate) fn window_id(&self, ts_ms: u64) -> u64 {
        ts_ms / self.width_ms
    }

    /// Half-open window-id range `[w0, w1)` overlapped by the half-open
    /// time range `[t0_ms, t1_ms)`. Empty input yields an empty range.
    pub(crate) fn range_windows(&self, t0_ms: u64, t1_ms: u64) -> (u64, u64) {
        let w0 = t0_ms / self.width_ms;
        if t1_ms <= t0_ms {
            return (w0, w0);
        }
        (w0, t1_ms.div_ceil(self.width_ms))
    }

    /// Whether a value landing in window `wid` is still admissible when
    /// the key's watermark stands at `watermark`.
    pub(crate) fn admissible(&self, watermark: u64, wid: u64) -> bool {
        watermark.saturating_sub(wid) <= self.lateness_windows
    }

    /// How many level-0 windows a sealed window stays "fresh" (immune to
    /// downsampling) at level 0. Level `l` scales this by `2^l`, so each
    /// level holds roughly equal calendar time before promoting.
    pub(crate) fn fresh_windows(&self) -> u64 {
        (self.retention_windows >> self.levels).max(1)
    }

    /// First window id still inside the retention horizon: windows whose
    /// *end* is `<=` this are evicted.
    pub(crate) fn evict_floor(&self, watermark: u64) -> u64 {
        (watermark + 1).saturating_sub(self.retention_windows)
    }
}

/// Number of level-0 windows a level-`level` window spans.
pub(crate) fn span(level: u8) -> u64 {
    1u64 << level.min(63)
}

/// Start id of the level-`level + 1` parent slot for a level-`level`
/// window starting at `start`.
pub(crate) fn parent_start(start: u64, level: u8) -> u64 {
    start & !(span(level + 1) - 1)
}

/// One sealed (immutable) window: its downsampling level and summary.
#[derive(Clone, Debug)]
pub(crate) struct SealedWindow {
    pub(crate) level: u8,
    pub(crate) summary: Arc<WeightedSummary>,
}

/// Per-key window bookkeeping, held behind the key's stripe lock.
#[derive(Clone, Debug, Default)]
pub(crate) struct WindowState {
    /// Level-0 id of the window the live engine currently accumulates.
    pub(crate) active_id: u64,
    /// Highest level-0 id seen via a timestamped update (>= `active_id`).
    pub(crate) watermark: u64,
    /// Sealed windows, keyed by level-0 start id. Non-overlapping by
    /// construction; the map order is time order.
    pub(crate) sealed: BTreeMap<u64, SealedWindow>,
}

impl WindowState {
    /// Start id of the sealed window covering `wid`, if any (a coarse
    /// window covers every level-0 id in its span).
    pub(crate) fn covering(&self, wid: u64) -> Option<u64> {
        let (&start, win) = self.sealed.range(..=wid).next_back()?;
        (start + span(win.level) > wid).then_some(start)
    }

    /// Sealed summaries overlapping the half-open id range `[w0, w1)`,
    /// in time order.
    pub(crate) fn overlapping(&self, w0: u64, w1: u64) -> Vec<Arc<WeightedSummary>> {
        self.sealed
            .range(..w1)
            .filter(|(&start, win)| start + span(win.level) > w0)
            .map(|(_, win)| Arc::clone(&win.summary))
            .collect()
    }

    /// Total weight resident in sealed windows.
    pub(crate) fn sealed_weight(&self) -> u64 {
        self.sealed.values().map(|w| w.summary.stream_len()).sum()
    }
}

/// One housekeeping downsample pass: every sealed window at level
/// `l < plan.levels` whose age (in level-0 windows past its end, against
/// the watermark) exceeds `fresh << l` promotes one level, merging into
/// its parent slot via `merge` (exact weight conservation is the
/// caller's contract — the store passes [`crate::merge::merge_summaries`]).
/// Candidates are processed in ascending start order so the older
/// sibling always lands in the parent slot first and the younger merges
/// into it. One level per pass per window; repeated sweeps converge.
/// Returns the number of promotions.
pub(crate) fn downsample_sweep(
    state: &mut WindowState,
    plan: &WindowPlan,
    mut merge: impl FnMut(&WeightedSummary, &WeightedSummary) -> WeightedSummary,
) -> u64 {
    if plan.levels == 0 {
        return 0;
    }
    let fresh = plan.fresh_windows();
    let horizon = state.watermark + 1;
    let candidates: Vec<(u64, u8)> = state
        .sealed
        .iter()
        .filter(|&(&start, win)| {
            win.level < plan.levels
                && horizon.saturating_sub(start + span(win.level)) > fresh << win.level
        })
        .map(|(&start, win)| (start, win.level))
        .collect();
    let mut promotions = 0u64;
    for (start, level) in candidates {
        // The slot may have been consumed (or bumped in place) by an
        // earlier promotion in this same pass.
        match state.sealed.get(&start) {
            Some(win) if win.level == level => {}
            _ => continue,
        }
        let win = state.sealed.remove(&start).expect("candidate just observed");
        let parent = parent_start(start, level);
        let promoted = level + 1;
        match state.sealed.get_mut(&parent) {
            Some(existing) => {
                existing.summary = Arc::new(merge(&existing.summary, &win.summary));
                existing.level = existing.level.max(promoted);
            }
            None => {
                state.sealed.insert(parent, SealedWindow { level: promoted, summary: win.summary });
            }
        }
        promotions += 1;
    }
    promotions
}

/// One housekeeping eviction pass: drop sealed windows wholly past the
/// retention horizon. Returns how many were evicted — the only
/// transition where weight leaves the store, by design.
pub(crate) fn evict_sweep(state: &mut WindowState, plan: &WindowPlan) -> u64 {
    let floor = plan.evict_floor(state.watermark);
    if floor == 0 {
        return 0;
    }
    let doomed: Vec<u64> = state
        .sealed
        .iter()
        .filter(|&(&start, win)| start + span(win.level) <= floor)
        .map(|(&start, _)| start)
        .collect();
    for start in &doomed {
        state.sealed.remove(start);
    }
    doomed.len() as u64
}

/// A key's windowed state, exposed for diagnostics and the exact-oracle
/// tests: the active window id and summary plus every sealed window as
/// `(start id, level, summary)` in time order.
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// Level-0 id of the active window.
    pub active_id: u64,
    /// The key's watermark (highest level-0 id seen).
    pub watermark: u64,
    /// Summary of the active window's live engine.
    pub active: Arc<WeightedSummary>,
    /// Sealed windows as `(start id, level, summary)`, ascending by start.
    pub sealed: Vec<(u64, u8, Arc<WeightedSummary>)>,
}

impl WindowSnapshot {
    /// Total weight across the active and all sealed windows.
    pub fn total_weight(&self) -> u64 {
        self.active.stream_len() + self.sealed.iter().map(|(_, _, s)| s.stream_len()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(range: std::ops::Range<u64>) -> Arc<WeightedSummary> {
        let bits: Vec<u64> = range.collect();
        Arc::new(WeightedSummary::from_parts([(&bits[..], 1u64)]))
    }

    fn plan(width_ms: u64, levels: u8, retention: u64, lateness: u64) -> WindowPlan {
        WindowPlan { width_ms, levels, retention_windows: retention, lateness_windows: lateness }
    }

    #[test]
    fn window_ids_are_start_inclusive_end_exclusive() {
        let p = plan(1000, 0, 10, 0);
        assert_eq!(p.window_id(0), 0);
        assert_eq!(p.window_id(999), 0);
        assert_eq!(p.window_id(1000), 1);
        assert_eq!(p.range_windows(0, 1000), (0, 1));
        assert_eq!(p.range_windows(0, 1001), (0, 2));
        assert_eq!(p.range_windows(999, 1000), (0, 1));
        assert_eq!(p.range_windows(500, 500), (0, 0));
        assert_eq!(p.range_windows(700, 300), (0, 0));
    }

    #[test]
    fn plan_normalization_rounds_up_and_clamps() {
        let p = WindowPlan::new(&WindowConfig {
            width: Duration::from_millis(250),
            downsample_levels: 3,
            retention: Duration::from_millis(1100),
            lateness: Duration::from_millis(1),
        });
        assert_eq!(p.width_ms, 250);
        assert_eq!(p.retention_windows, 5); // ceil(1100/250)
        assert_eq!(p.lateness_windows, 1); // ceil(1/250)
        let zero = WindowPlan::new(&WindowConfig {
            width: Duration::ZERO,
            downsample_levels: 0,
            retention: Duration::ZERO,
            lateness: Duration::ZERO,
        });
        assert_eq!(zero.width_ms, 1);
        assert_eq!(zero.retention_windows, 1);
        assert_eq!(zero.lateness_windows, 0);
    }

    #[test]
    fn covering_respects_coarse_spans() {
        let mut state = WindowState::default();
        state.sealed.insert(4, SealedWindow { level: 2, summary: unit(0..4) });
        state.sealed.insert(8, SealedWindow { level: 0, summary: unit(4..5) });
        assert_eq!(state.covering(3), None);
        assert_eq!(state.covering(4), Some(4));
        assert_eq!(state.covering(7), Some(4));
        assert_eq!(state.covering(8), Some(8));
        assert_eq!(state.covering(9), None);
    }

    #[test]
    fn overlapping_includes_partial_coarse_windows() {
        let mut state = WindowState::default();
        state.sealed.insert(0, SealedWindow { level: 2, summary: unit(0..4) });
        state.sealed.insert(4, SealedWindow { level: 0, summary: unit(4..5) });
        // [3, 5) clips the level-2 window — it is still merged whole.
        assert_eq!(state.overlapping(3, 5).len(), 2);
        assert_eq!(state.overlapping(4, 5).len(), 1);
        assert_eq!(state.overlapping(5, 9).len(), 0);
    }

    #[test]
    fn downsample_merges_siblings_and_conserves_weight() {
        let p = plan(1, 2, 16, 0);
        let mut state = WindowState { watermark: 40, ..Default::default() };
        state.sealed.insert(0, SealedWindow { level: 0, summary: unit(0..3) });
        state.sealed.insert(1, SealedWindow { level: 0, summary: unit(3..8) });
        let before = state.sealed_weight();
        let merge =
            |a: &WeightedSummary, b: &WeightedSummary| crate::merge::merge_summaries([a, b], 64, 7);
        let promoted = downsample_sweep(&mut state, &p, merge);
        assert_eq!(promoted, 2);
        assert_eq!(state.sealed.len(), 1);
        let win = &state.sealed[&0];
        assert_eq!(win.level, 1);
        assert_eq!(state.sealed_weight(), before);
        // A second sweep promotes the level-1 window to level 2 (age 39
        // > fresh(4) << 1), then it is terminal at plan.levels.
        let promoted = downsample_sweep(&mut state, &p, merge);
        assert_eq!(promoted, 1);
        assert_eq!(state.sealed[&0].level, 2);
        assert_eq!(downsample_sweep(&mut state, &p, merge), 0);
        assert_eq!(state.sealed_weight(), before);
    }

    #[test]
    fn fresh_windows_hold_their_level() {
        let p = plan(1, 2, 16, 0); // fresh = 16 >> 2 = 4
        let mut state = WindowState { watermark: 4, ..Default::default() };
        state.sealed.insert(0, SealedWindow { level: 0, summary: unit(0..1) });
        // age = 5 - 1 = 4, not > 4: stays put.
        let n =
            downsample_sweep(&mut state, &p, |a, b| crate::merge::merge_summaries([a, b], 64, 7));
        assert_eq!(n, 0);
        assert_eq!(state.sealed[&0].level, 0);
    }

    #[test]
    fn eviction_drops_only_windows_wholly_past_the_horizon() {
        let p = plan(1, 0, 4, 0);
        let mut state = WindowState { watermark: 9, ..Default::default() }; // floor = 10 - 4 = 6
        state.sealed.insert(2, SealedWindow { level: 1, summary: unit(0..1) }); // end 4 <= 6
        state.sealed.insert(4, SealedWindow { level: 1, summary: unit(1..2) }); // end 6 <= 6
        state.sealed.insert(5, SealedWindow { level: 0, summary: unit(2..3) }); // end 6 <= 6
        state.sealed.insert(6, SealedWindow { level: 0, summary: unit(3..4) }); // end 7 > 6
        assert_eq!(evict_sweep(&mut state, &p), 3);
        assert_eq!(state.sealed.keys().copied().collect::<Vec<_>>(), vec![6]);
        // A young watermark evicts nothing (floor saturates to 0).
        let mut young = WindowState { watermark: 1, ..Default::default() };
        young.sealed.insert(0, SealedWindow { level: 0, summary: unit(0..1) });
        assert_eq!(evict_sweep(&mut young, &p), 0);
    }

    #[test]
    fn parent_slots_align_and_nest() {
        assert_eq!(parent_start(0, 0), 0);
        assert_eq!(parent_start(1, 0), 0);
        assert_eq!(parent_start(6, 0), 6);
        assert_eq!(parent_start(6, 1), 4);
        assert_eq!(parent_start(13, 2), 8);
        assert_eq!(span(0), 1);
        assert_eq!(span(3), 8);
    }

    #[test]
    fn admissibility_is_watermark_relative() {
        let p = plan(1000, 0, 10, 2);
        assert!(p.admissible(5, 5));
        assert!(p.admissible(5, 3));
        assert!(!p.admissible(5, 2));
        assert!(p.admissible(1, 5)); // ahead of the watermark is never late
    }
}
