//! Store engines: the pluggable per-key backends of [`crate::SketchStore`].
//!
//! A [`StoreEngine`] is a [`SketchEngine`] the store knows how to
//! construct, place in a memory tier, and maintain. Three engines ship:
//!
//! * [`SequentialEngine`] — the Agarwal et al. sketch. Cheapest per key
//!   (`O(k log(n/k))` retained elements, nothing preallocated), exact
//!   accounting on every update, but single-writer by nature.
//! * [`ConcurrentEngine`] — a [`Quancurrent`] sketch bundled with a
//!   resident [`Updater`] and an *absorbed* side summary for remote
//!   state. Highest hot-key throughput; pays a fixed Gather&Sort
//!   footprint (`~8k` words) per key the moment it is created.
//! * [`TieredEngine`] — the default: every key starts as a compact
//!   sequential sketch and **promotes in place** to a full Quancurrent
//!   once its cumulative update pressure crosses
//!   [`crate::StoreConfig::promotion_threshold`]; idle hot keys demote
//!   back via an exact summary round-trip on cool-down sweeps
//!   ([`crate::SketchStore::cool_down`]). Cold keys cost an order of
//!   magnitude less memory than concurrent ones while hot keys keep the
//!   concurrent ingestion path.
//!
//! Tier migration in both directions is a summary round-trip
//! ([`MergeableSketch::to_summary`] → [`MergeableSketch::absorb_summary`])
//! and conserves total stream weight **exactly** — the store's
//! conservation invariants hold across any number of promotions and
//! demotions.

use qc_common::bits::OrderedBits;
use qc_common::engine::{MergeableSketch, QuantileEstimator, SketchEngine, StreamIngest};
use qc_common::summary::{Summary, WeightedSummary};
use quancurrent::{Quancurrent, Updater};

use crate::merge::merge_summaries;
use crate::store::StoreConfig;

/// The memory tier an engine currently occupies (reported per key in
/// [`crate::StoreStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Compact sequential sketch: minimal memory, single-writer.
    Sequential,
    /// Full concurrent sketch: fixed Gather&Sort buffers, multi-writer
    /// ingestion path.
    Concurrent,
}

/// A sketch engine the store can construct and maintain — the bound of
/// [`crate::SketchStore`]'s engine parameter.
pub trait StoreEngine<T: OrderedBits>: SketchEngine<T> + Send + 'static {
    /// Build a fresh engine for one key. `seed` is the key's
    /// deterministic sampling seed (derived from the store seed and the
    /// key bytes).
    fn build(cfg: &StoreConfig, seed: u64) -> Self
    where
        Self: Sized;

    /// The tier this engine currently occupies.
    fn tier(&self) -> Tier;

    /// Retained 64-bit words (summary points, buffers, preallocations) —
    /// the store's memory proxy.
    fn footprint(&self) -> usize;

    /// End a cool-down epoch: perform tier maintenance (e.g. demote an
    /// idle hot key). Returns `true` if the engine changed tier. Called
    /// under the key's stripe lock by [`crate::SketchStore::cool_down`].
    fn maintain(&mut self) -> bool {
        false
    }
}

/// The sequential per-key engine: [`qc_sequential::Sketch`] verbatim.
pub type SequentialEngine<T = f64> = qc_sequential::Sketch<T>;

impl<T: OrderedBits> StoreEngine<T> for SequentialEngine<T> {
    fn build(cfg: &StoreConfig, seed: u64) -> Self {
        qc_sequential::Sketch::with_seed(cfg.k, seed)
    }

    fn tier(&self) -> Tier {
        Tier::Sequential
    }

    fn footprint(&self) -> usize {
        self.num_retained()
    }
}

/// A concurrent per-key engine: a [`Quancurrent`] sketch, one resident
/// [`Updater`] (all store updates for a key run under its stripe lock, so
/// a single handle is exactly the single-writer discipline the local
/// buffer expects), and an *absorbed* summary holding everything merged in
/// from other sketches.
///
/// Reads compose the sketch's quiescent state, the updater's unflushed
/// tail, and the absorbed summary with [`merge_summaries`], so queries see
/// **every** element ever handed to the engine — exactly the keyed-store
/// read semantics.
pub struct ConcurrentEngine<T: OrderedBits = f64> {
    sketch: Quancurrent<T>,
    writer: Updater<T>,
    absorbed: WeightedSummary,
    k: usize,
    merge_seed: u64,
}

impl<T: OrderedBits> ConcurrentEngine<T> {
    /// Build an engine with level size `k`, local buffer size `b`, and a
    /// deterministic seed.
    pub fn new(k: usize, b: usize, seed: u64) -> Self {
        let sketch = Quancurrent::<T>::builder().k(k).b(b).seed(seed).build();
        let writer = sketch.updater();
        Self { sketch, writer, absorbed: WeightedSummary::empty(), k, merge_seed: seed | 1 }
    }

    /// The engine's full resident summary: shared levels + Gather&Sort
    /// buffers + unflushed writer tail + absorbed remote weight. Exact
    /// when no concurrent writers exist — which the store guarantees by
    /// funneling all of a key's operations through its stripe lock.
    pub fn resident_summary(&self) -> WeightedSummary {
        let quiescent = self.sketch.quiescent_summary();
        let mut bits: Vec<u64> =
            self.writer.pending().iter().map(|v| v.to_ordered_bits()).collect();
        bits.sort_unstable();
        let pending = if bits.is_empty() {
            WeightedSummary::empty()
        } else {
            WeightedSummary::from_parts([(&bits[..], 1u64)])
        };
        merge_summaries(&[quiescent, pending, self.absorbed.clone()], self.k, self.merge_seed)
    }

    /// The underlying concurrent sketch (diagnostics).
    pub fn sketch(&self) -> &Quancurrent<T> {
        &self.sketch
    }
}

impl<T: OrderedBits> QuantileEstimator<T> for ConcurrentEngine<T> {
    fn stream_len(&self) -> u64 {
        // Cheap exact form of `resident_summary().stream_len()`: merge
        // conserves weight, so the parts can be summed directly.
        self.sketch.stream_len()
            + self.sketch.buffered_len() as u64
            + self.writer.pending().len() as u64
            + self.absorbed.stream_len()
    }

    fn query(&self, phi: f64) -> Option<T> {
        self.resident_summary().quantile_bits(phi).map(T::from_ordered_bits)
    }

    fn rank_weight(&self, x: T) -> u64 {
        self.resident_summary().rank_bits(x.to_ordered_bits())
    }

    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        let bits: Vec<u64> = split_points.iter().map(|x| x.to_ordered_bits()).collect();
        self.resident_summary().cdf_bits(&bits)
    }

    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        let summary = self.resident_summary();
        phis.iter().map(|&phi| summary.quantile_bits(phi).map(T::from_ordered_bits)).collect()
    }

    fn error_bound(&self) -> f64 {
        qc_common::error::sequential_epsilon(self.k)
    }
}

impl<T: OrderedBits> StreamIngest<T> for ConcurrentEngine<T> {
    fn update(&mut self, x: T) {
        self.writer.update(x);
    }

    // `update_many` keeps the trait default (a per-element loop); `flush`
    // is the default no-op: the unflushed tail is composed into
    // every read by `resident_summary`, so nothing is ever invisible.
}

impl<T: OrderedBits> MergeableSketch<T> for ConcurrentEngine<T> {
    fn to_summary(&self) -> WeightedSummary {
        self.resident_summary()
    }

    fn absorb_summary(&mut self, summary: &WeightedSummary) {
        let absorbed = std::mem::take(&mut self.absorbed);
        self.absorbed = merge_summaries(&[absorbed, summary.clone()], self.k, self.merge_seed);
    }
}

impl<T: OrderedBits> StoreEngine<T> for ConcurrentEngine<T> {
    fn build(cfg: &StoreConfig, seed: u64) -> Self {
        Self::new(cfg.k, cfg.b, seed)
    }

    fn tier(&self) -> Tier {
        Tier::Concurrent
    }

    fn footprint(&self) -> usize {
        // Fixed Gather&Sort allocation (2 buffers × 2k slot/stamp pairs)
        // plus live level arrays and side state.
        8 * self.k
            + self.sketch.levels_retained()
            + self.writer.pending().len()
            + self.absorbed.num_retained()
    }
}

impl<T: OrderedBits> std::fmt::Debug for ConcurrentEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentEngine")
            .field("k", &self.k)
            .field("stream_len", &QuantileEstimator::stream_len(self))
            .field("absorbed", &self.absorbed.stream_len())
            .finish()
    }
}

enum TierState<T: OrderedBits> {
    Cold(SequentialEngine<T>),
    Hot(ConcurrentEngine<T>),
}

/// The default store engine: starts every key as a compact sequential
/// sketch and moves it between tiers as update pressure changes. See the
/// [module docs](self) for the full tiering story.
///
/// * **Promotion** (cold → hot) happens inline in `update`/`update_many`
///   once cumulative updates reach the configured threshold: the cold
///   sketch's summary is absorbed into a fresh [`ConcurrentEngine`], so
///   not a single unit of weight is lost.
/// * **Demotion** (hot → cold) happens on [`StoreEngine::maintain`] when
///   an entire epoch passed without updates: the hot engine's resident
///   summary round-trips into a fresh sequential sketch, releasing the
///   Gather&Sort buffers.
pub struct TieredEngine<T: OrderedBits = f64> {
    state: TierState<T>,
    k: usize,
    b: usize,
    seed: u64,
    promotion_threshold: u64,
    /// Updates since creation or last demotion (promotion pressure).
    pressure: u64,
    /// Updates in the current cool-down epoch.
    epoch_updates: u64,
}

impl<T: OrderedBits> TieredEngine<T> {
    /// Build a cold engine. `promotion_threshold` is the cumulative
    /// update count **past which** the key promotes — the first update
    /// beyond it fires the promotion (`0` promotes on the first update,
    /// `u64::MAX` pins the key cold).
    pub fn new(k: usize, b: usize, seed: u64, promotion_threshold: u64) -> Self {
        Self {
            state: TierState::Cold(qc_sequential::Sketch::with_seed(k, seed)),
            k,
            b,
            seed,
            promotion_threshold,
            pressure: 0,
            epoch_updates: 0,
        }
    }

    /// Is the key currently on the concurrent tier?
    pub fn is_hot(&self) -> bool {
        matches!(self.state, TierState::Hot(_))
    }

    /// Force promotion to the concurrent tier (no-op if already hot).
    pub fn promote_now(&mut self) {
        if let TierState::Cold(cold) = &self.state {
            let summary = MergeableSketch::to_summary(cold);
            let mut hot =
                ConcurrentEngine::new(self.k, self.b, self.seed.wrapping_mul(0x9E37_79B9) | 1);
            hot.absorb_summary(&summary);
            self.state = TierState::Hot(hot);
        }
    }

    /// Force demotion to the sequential tier via an exact summary
    /// round-trip (no-op if already cold). Resets promotion pressure.
    pub fn demote_now(&mut self) {
        if let TierState::Hot(hot) = &self.state {
            let summary = hot.to_summary();
            let mut cold = qc_sequential::Sketch::with_seed(self.k, self.seed.rotate_left(11));
            MergeableSketch::absorb_summary(&mut cold, &summary);
            self.state = TierState::Cold(cold);
            self.pressure = 0;
        }
    }

    /// The current tier's engine as a read-side trait object.
    fn inner(&self) -> &dyn SketchEngine<T> {
        match &self.state {
            TierState::Cold(e) => e,
            TierState::Hot(e) => e,
        }
    }

    /// The current tier's engine as a write-side trait object.
    fn inner_mut(&mut self) -> &mut dyn SketchEngine<T> {
        match &mut self.state {
            TierState::Cold(e) => e,
            TierState::Hot(e) => e,
        }
    }

    fn after_updates(&mut self, n: u64) {
        self.pressure = self.pressure.saturating_add(n);
        self.epoch_updates = self.epoch_updates.saturating_add(n);
        if !self.is_hot() && self.pressure > self.promotion_threshold {
            self.promote_now();
        }
    }
}

impl<T: OrderedBits> QuantileEstimator<T> for TieredEngine<T> {
    fn stream_len(&self) -> u64 {
        self.inner().stream_len()
    }

    fn query(&self, phi: f64) -> Option<T> {
        self.inner().query(phi)
    }

    fn rank_weight(&self, x: T) -> u64 {
        self.inner().rank_weight(x)
    }

    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        self.inner().cdf(split_points)
    }

    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        self.inner().quantiles(phis)
    }

    fn error_bound(&self) -> f64 {
        qc_common::error::sequential_epsilon(self.k)
    }
}

impl<T: OrderedBits> StreamIngest<T> for TieredEngine<T> {
    fn update(&mut self, x: T) {
        self.inner_mut().update(x);
        self.after_updates(1);
    }

    /// Overridden (unlike the other engines, whose default suffices) so
    /// promotion pressure is accounted once per batch.
    fn update_many(&mut self, xs: &[T]) {
        self.inner_mut().update_many(xs);
        self.after_updates(xs.len() as u64);
    }
}

impl<T: OrderedBits> MergeableSketch<T> for TieredEngine<T> {
    fn to_summary(&self) -> WeightedSummary {
        self.inner().to_summary()
    }

    fn absorb_summary(&mut self, summary: &WeightedSummary) {
        self.inner_mut().absorb_summary(summary);
    }
}

impl<T: OrderedBits> StoreEngine<T> for TieredEngine<T> {
    fn build(cfg: &StoreConfig, seed: u64) -> Self {
        Self::new(cfg.k, cfg.b, seed, cfg.promotion_threshold)
    }

    fn tier(&self) -> Tier {
        match self.state {
            TierState::Cold(_) => Tier::Sequential,
            TierState::Hot(_) => Tier::Concurrent,
        }
    }

    fn footprint(&self) -> usize {
        // `footprint` lives on `StoreEngine` (not object-safe), so this
        // one delegation keeps the two-arm match.
        match &self.state {
            TierState::Cold(e) => StoreEngine::<T>::footprint(e),
            TierState::Hot(e) => StoreEngine::<T>::footprint(e),
        }
    }

    /// Demotes the key iff the entire epoch since the previous `maintain`
    /// call saw no updates.
    fn maintain(&mut self) -> bool {
        let idle = self.epoch_updates == 0;
        self.epoch_updates = 0;
        if idle && self.is_hot() {
            self.demote_now();
            true
        } else {
            false
        }
    }
}

impl<T: OrderedBits> std::fmt::Debug for TieredEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredEngine")
            .field("tier", &StoreEngine::<T>::tier(self))
            .field("pressure", &self.pressure)
            .field("stream_len", &QuantileEstimator::stream_len(self))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::default().k(64).b(4).promotion_threshold(256)
    }

    #[test]
    fn tiered_starts_cold_and_promotes_under_pressure() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 7);
        assert_eq!(StoreEngine::<f64>::tier(&e), Tier::Sequential);
        for i in 0..256 {
            e.update(i as f64);
        }
        assert!(!e.is_hot(), "at the threshold the key is still cold");
        e.update(256.0);
        assert!(e.is_hot(), "crossing the threshold promotes");
        assert_eq!(QuantileEstimator::stream_len(&e), 257, "promotion conserves weight exactly");
        assert_eq!(e.to_summary().stream_len(), 257);
    }

    #[test]
    fn tiered_update_many_promotes_once_per_batch() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 8);
        let batch: Vec<f64> = (0..1000).map(f64::from).collect();
        e.update_many(&batch);
        assert!(e.is_hot());
        assert_eq!(QuantileEstimator::stream_len(&e), 1000);
        let median = QuantileEstimator::query(&e, 0.5).unwrap();
        assert!((300.0..700.0).contains(&median), "median {median}");
    }

    #[test]
    fn idle_hot_key_demotes_on_second_sweep() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 9);
        e.update_many(&(0..500).map(f64::from).collect::<Vec<_>>());
        assert!(e.is_hot());
        // First sweep: the busy epoch just ended — no demotion.
        assert!(!StoreEngine::<f64>::maintain(&mut e));
        assert!(e.is_hot());
        // Second sweep with zero updates in between: demote.
        assert!(StoreEngine::<f64>::maintain(&mut e));
        assert!(!e.is_hot());
        assert_eq!(QuantileEstimator::stream_len(&e), 500, "demotion conserves weight exactly");
    }

    #[test]
    fn demoted_key_can_repromote() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 10);
        e.update_many(&(0..500).map(f64::from).collect::<Vec<_>>());
        StoreEngine::<f64>::maintain(&mut e);
        StoreEngine::<f64>::maintain(&mut e);
        assert!(!e.is_hot());
        e.update_many(&(0..300).map(f64::from).collect::<Vec<_>>());
        assert!(e.is_hot(), "fresh pressure after demotion re-promotes");
        assert_eq!(QuantileEstimator::stream_len(&e), 800);
    }

    #[test]
    fn cold_footprint_is_an_order_of_magnitude_below_hot() {
        let cfg = StoreConfig::default().k(256).b(4).promotion_threshold(u64::MAX);
        let mut cold = TieredEngine::<f64>::build(&cfg, 1);
        let mut hot = ConcurrentEngine::<f64>::new(256, 4, 1);
        for i in 0..64 {
            cold.update(i as f64);
            hot.update(i as f64);
        }
        let (c, h) = (StoreEngine::<f64>::footprint(&cold), StoreEngine::<f64>::footprint(&hot));
        assert!(c * 10 <= h, "cold {c} words vs hot {h} words");
    }

    #[test]
    fn concurrent_engine_composes_absorbed_and_pending() {
        let mut e = ConcurrentEngine::<f64>::new(64, 4, 3);
        e.update_many(&(0..1001).map(f64::from).collect::<Vec<_>>());
        assert_eq!(QuantileEstimator::stream_len(&e), 1001);
        let snapshot = e.to_summary();
        assert_eq!(snapshot.stream_len(), 1001);

        let mut other = ConcurrentEngine::<f64>::new(64, 4, 4);
        other.absorb_summary(&snapshot);
        assert_eq!(QuantileEstimator::stream_len(&other), 1001);
        assert!(other.query(0.5).is_some());
    }

    #[test]
    fn tier_migration_preserves_quantile_accuracy() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 11);
        e.update_many(&(0..10_000).map(f64::from).collect::<Vec<_>>());
        assert!(e.is_hot());
        let before = QuantileEstimator::query(&e, 0.5).unwrap();
        e.demote_now();
        let after = QuantileEstimator::query(&e, 0.5).unwrap();
        let eps = QuantileEstimator::error_bound(&e);
        assert!(
            (before - after).abs() / 10_000.0 < 8.0 * eps,
            "median moved {before} -> {after} across demotion"
        );
    }
}
