//! Store engines: the pluggable per-key backends of [`crate::SketchStore`].
//!
//! A [`StoreEngine`] is a [`SketchEngine`] the store knows how to
//! construct, place in a memory tier, and maintain. Three engines ship:
//!
//! * [`SequentialEngine`] — the Agarwal et al. sketch. Cheapest per key
//!   (`O(k log(n/k))` retained elements, nothing preallocated), exact
//!   accounting on every update, but single-writer by nature.
//! * [`ConcurrentEngine`] — a [`Quancurrent`] sketch bundled with a
//!   resident [`Updater`] and an *absorbed* side summary for remote
//!   state. Highest hot-key throughput; pays a fixed Gather&Sort
//!   footprint (`~8k` words) per key the moment it is created.
//! * [`TieredEngine`] — the default: every key starts as a compact
//!   sequential sketch and **promotes in place** to a full Quancurrent
//!   once its cumulative update pressure crosses
//!   [`crate::StoreConfig::promotion_threshold`]; idle hot keys demote
//!   back via an exact summary round-trip on cool-down sweeps
//!   ([`crate::SketchStore::cool_down`]). Cold keys cost an order of
//!   magnitude less memory than concurrent ones while hot keys keep the
//!   concurrent ingestion path.
//!
//! Tier migration in both directions is a summary round-trip
//! ([`MergeableSketch::to_summary`] → [`MergeableSketch::absorb_summary`])
//! and conserves total stream weight **exactly** — the store's
//! conservation invariants hold across any number of promotions and
//! demotions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qc_common::bits::OrderedBits;
use qc_common::engine::{
    InstrumentedSketch, MergeableSketch, QuantileEstimator, SharedIngest, SketchEngine,
    StreamIngest, VersionedSketch,
};
use qc_common::rng::SplitMix64;
use qc_common::summary::{Summary, WeightedSummary};
use quancurrent::{Quancurrent, Updater};

use crate::merge::merge_summaries;
use crate::store::StoreConfig;

/// The memory tier an engine currently occupies (reported per key in
/// [`crate::StoreStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Compact sequential sketch: minimal memory, single-writer.
    Sequential,
    /// Full concurrent sketch: fixed Gather&Sort buffers, multi-writer
    /// ingestion path.
    Concurrent,
}

/// A sketch engine the store can construct and maintain — the bound of
/// [`crate::SketchStore`]'s engine parameter.
///
/// `Sync` because the store's read path materializes summaries under a
/// **shared** stripe lock: any number of reader threads may call the
/// engine's `&self` methods (`version`, `to_summary`, `stream_len`)
/// concurrently, while every `&mut self` mutation stays exclusive behind
/// the stripe's write lock.
pub trait StoreEngine<T: OrderedBits>: SketchEngine<T> + Send + Sync + 'static {
    /// Build a fresh engine for one key. `seed` is the key's
    /// deterministic sampling seed (derived from the store seed and the
    /// key bytes).
    fn build(cfg: &StoreConfig, seed: u64) -> Self
    where
        Self: Sized;

    /// The tier this engine currently occupies.
    fn tier(&self) -> Tier;

    /// Retained 64-bit words (summary points, buffers, preallocations) —
    /// the store's memory proxy.
    fn footprint(&self) -> usize;

    /// End a cool-down epoch: perform tier maintenance (e.g. demote an
    /// idle hot key). Returns `true` if the engine changed tier. Called
    /// under the key's stripe lock by [`crate::SketchStore::cool_down`].
    fn maintain(&mut self) -> bool {
        false
    }
}

/// The sequential per-key engine: [`qc_sequential::Sketch`] verbatim.
pub type SequentialEngine<T = f64> = qc_sequential::Sketch<T>;

impl<T: OrderedBits> StoreEngine<T> for SequentialEngine<T> {
    fn build(cfg: &StoreConfig, seed: u64) -> Self {
        qc_sequential::Sketch::with_seed(cfg.k, seed)
    }

    fn tier(&self) -> Tier {
        Tier::Sequential
    }

    fn footprint(&self) -> usize {
        self.num_retained()
    }
}

/// A concurrent per-key engine: a [`Quancurrent`] sketch, one resident
/// [`Updater`] (all store updates for a key run under its stripe lock, so
/// a single handle is exactly the single-writer discipline the local
/// buffer expects), and an *absorbed* summary holding everything merged in
/// from other sketches.
///
/// Reads compose the sketch's quiescent state, the updater's unflushed
/// tail, and the absorbed summary with [`merge_summaries`], so queries see
/// **every** element ever handed to the engine — exactly the keyed-store
/// read semantics.
pub struct ConcurrentEngine<T: OrderedBits = f64> {
    sketch: Quancurrent<T>,
    /// The resident writer. The mutex exists purely so the engine is
    /// `Sync` without unsafe code: mutations go through `get_mut` (no
    /// locking — the store's stripe write lock is the real exclusion),
    /// and concurrent readers take the uncontended lock just long enough
    /// to copy the sub-`b` pending tail.
    writer: Mutex<Updater<T>>,
    /// Compacted bulk of absorbed remote weight.
    absorbed: WeightedSummary,
    /// Recently absorbed summaries, buffered **uncompacted**: folding each
    /// small ingest straight into `absorbed` would re-run randomized
    /// compaction on every call, compounding its rank perturbation across
    /// N ingests. Folded into `absorbed` in one pass per
    /// [`ABSORB_COMPACT_FACTOR`]`·k` retained elements instead.
    absorb_buffer: Vec<WeightedSummary>,
    k: usize,
    merge_seed: u64,
    /// Advancing seed source for absorb-buffer compactions — each epoch
    /// flips fresh coins (reusing one sequence would correlate repeated
    /// halvings of the same level).
    compact_rng: SplitMix64,
    version: u64,
    /// Sub-`b` tails re-homed by leased-writer flushes (a Gather&Sort
    /// placement is exactly `b` slots, so a partial tail cannot enter the
    /// sketch directly). Always shorter than `b`: a flush drains every
    /// full multiple of `b` back through its updater. Composed into every
    /// read, so leased weight is exactly visible post-flush.
    spill: Arc<Mutex<Vec<u64>>>,
    /// Leased-writer flush progress — the shared-write half of
    /// [`VersionedSketch::version`] (the `&mut self` half is `version`).
    /// `Arc`ed into every lease. A weight-moving flush bumps it with
    /// `Release` **after** the flushed weight is observable, and also
    /// **before** draining previously-visible spill weight into its
    /// local buffer (see [`LeasedWriter::flush`]) — so for any version a
    /// reader `Acquire`-loads before materializing, the final state of
    /// that version contains everything it accounts for, and any
    /// materialization that raced an in-flight flush carries a tag the
    /// flush's completion bump supersedes.
    shared_ops: Arc<AtomicU64>,
}

/// Buffered absorbed summaries fold into the compacted bulk once their
/// combined retained size exceeds this multiple of `k` (a bounded read-side
/// merge cost bought with an `N·s / (factor·k)` reduction in compaction
/// passes for N ingests of size `s`).
pub const ABSORB_COMPACT_FACTOR: usize = 4;

impl<T: OrderedBits> ConcurrentEngine<T> {
    /// Build an engine with level size `k`, local buffer size `b`, and a
    /// deterministic seed.
    pub fn new(k: usize, b: usize, seed: u64) -> Self {
        let sketch = Quancurrent::<T>::builder().k(k).b(b).seed(seed).build();
        let writer = Mutex::new(sketch.updater());
        // Decorrelate merge coins from the sketch's sampling coins with a
        // full mixer step (`seed | 1` made key seeds differing only in
        // bit 0 share their compaction randomness).
        let mut compact_rng = SplitMix64::new(seed);
        let merge_seed = compact_rng.next_u64();
        Self {
            sketch,
            writer,
            absorbed: WeightedSummary::empty(),
            absorb_buffer: Vec::new(),
            k,
            merge_seed,
            compact_rng,
            version: 0,
            spill: Arc::new(Mutex::new(Vec::new())),
            shared_ops: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The engine's full resident summary: shared levels + Gather&Sort
    /// buffers + unflushed writer tail + absorbed remote weight. Exact
    /// when no concurrent writers exist — which the store guarantees by
    /// funneling all of a key's mutations through its stripe write lock —
    /// and deterministic for a fixed state, so a cached copy is
    /// indistinguishable from a rebuild.
    pub fn resident_summary(&self) -> WeightedSummary {
        let quiescent = self.sketch.quiescent_summary();
        let mut bits: Vec<u64> =
            self.writer.lock().unwrap().pending().iter().map(|v| v.to_ordered_bits()).collect();
        bits.extend(self.spill.lock().unwrap().iter().copied());
        bits.sort_unstable();
        let pending = if bits.is_empty() {
            WeightedSummary::empty()
        } else {
            WeightedSummary::from_parts([(&bits[..], 1u64)])
        };
        let parts =
            [&quiescent, &pending, &self.absorbed].into_iter().chain(self.absorb_buffer.iter());
        merge_summaries(parts, self.k, self.merge_seed)
    }

    /// Total absorbed remote weight (compacted bulk + uncompacted buffer).
    fn absorbed_weight(&self) -> u64 {
        self.absorbed.stream_len() + self.absorb_buffer.iter().map(Summary::stream_len).sum::<u64>()
    }

    /// Fold the buffered absorbed parts into the bulk summary: one
    /// randomized compaction pass for the whole epoch, with fresh coins.
    fn compact_absorbed(&mut self) {
        let seed = self.compact_rng.next_u64();
        let parts = std::iter::once(&self.absorbed).chain(self.absorb_buffer.iter());
        self.absorbed = merge_summaries(parts, self.k, seed);
        self.absorb_buffer.clear();
    }

    /// The underlying concurrent sketch (diagnostics).
    pub fn sketch(&self) -> &Quancurrent<T> {
        &self.sketch
    }

    /// Completed shared-write flushes (the leased-writer half of the
    /// version counter). Exact under external synchronization — which is
    /// how [`TieredEngine`] folds it into its own version and epoch
    /// accounting.
    pub(crate) fn shared_writes(&self) -> u64 {
        self.shared_ops.load(Ordering::Acquire)
    }
}

/// A leased per-thread writer over a [`ConcurrentEngine`]: an owned
/// [`Updater`] (thread-local buffer → Gather&Sort → DCAS, the paper's
/// lock-free ingestion path) plus the engine's spill and version cells.
///
/// `flush` gives the exact-visibility guarantee of [`SharedIngest`]: full
/// `b`-multiples of buffered weight go through Gather&Sort placement, the
/// sub-`b` remainder is re-homed into the engine's spill (composed into
/// every read), and the shared-ops counter advances afterwards so cached
/// summaries of the pre-flush state invalidate.
struct LeasedWriter<T: OrderedBits> {
    updater: Updater<T>,
    spill: Arc<Mutex<Vec<u64>>>,
    shared_ops: Arc<AtomicU64>,
    b: usize,
    /// Elements written since the last completed flush (a flush that moved
    /// no weight must not bump the version — idle handles stay
    /// cache-neutral).
    unflushed: u64,
}

impl<T: OrderedBits> StreamIngest<T> for LeasedWriter<T> {
    fn update(&mut self, x: T) {
        self.updater.update(x);
        self.unflushed += 1;
    }

    fn update_many(&mut self, xs: &[T]) {
        for &x in xs {
            self.updater.update(x);
        }
        self.unflushed += xs.len() as u64;
    }

    fn flush(&mut self) {
        if self.unflushed == 0 {
            return;
        }
        let tail = self.updater.take_pending();
        // Park the tail in the spill, and take back out every full
        // multiple of `b` to push through the Gather&Sort path. The lock
        // scope covers only the vector surgery: placements (which can make
        // this thread a batch owner doing real merge work) run outside it.
        let refill: Vec<u64> = {
            let mut spill = self.spill.lock().unwrap();
            spill.extend(tail.iter().map(|v| v.to_ordered_bits()));
            let take = spill.len() - spill.len() % self.b;
            if take > 0 {
                // Draining moves weight that earlier versions already
                // account for (spill elements are read-visible) into this
                // writer's local buffer, where it is invisible until the
                // placements below land. Bump the version *before* the
                // removal so any summary materialized during that window
                // carries a tag the completion bump (below) supersedes —
                // a reader can transiently miss in-flight weight, but
                // never cache that miss against a final version.
                self.shared_ops.fetch_add(1, Ordering::Release);
            }
            spill.drain(..take).collect()
        };
        for bits in refill {
            self.updater.update(T::from_ordered_bits(bits));
        }
        debug_assert_eq!(self.updater.pending_len(), 0, "refill must be a multiple of b");
        self.shared_ops.fetch_add(1, Ordering::Release);
        self.unflushed = 0;
    }
}

impl<T: OrderedBits> QuantileEstimator<T> for ConcurrentEngine<T> {
    fn stream_len(&self) -> u64 {
        // Cheap exact form of `resident_summary().stream_len()`: merge
        // conserves weight, so the parts can be summed directly.
        self.sketch.stream_len()
            + self.sketch.buffered_len() as u64
            + self.writer.lock().unwrap().pending_len() as u64
            + self.spill.lock().unwrap().len() as u64
            + self.absorbed_weight()
    }

    fn query(&self, phi: f64) -> Option<T> {
        self.resident_summary().quantile_bits(phi).map(T::from_ordered_bits)
    }

    fn rank_weight(&self, x: T) -> u64 {
        self.resident_summary().rank_bits(x.to_ordered_bits())
    }

    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        let bits: Vec<u64> = split_points.iter().map(|x| x.to_ordered_bits()).collect();
        self.resident_summary().cdf_bits(&bits)
    }

    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        let summary = self.resident_summary();
        phis.iter().map(|&phi| summary.quantile_bits(phi).map(T::from_ordered_bits)).collect()
    }

    fn error_bound(&self) -> f64 {
        qc_common::error::sequential_epsilon(self.k)
    }
}

impl<T: OrderedBits> StreamIngest<T> for ConcurrentEngine<T> {
    fn update(&mut self, x: T) {
        self.writer.get_mut().unwrap().update(x);
        self.version += 1;
    }

    /// Overridden to advance the version once per batch (and to hoist the
    /// writer borrow out of the per-element loop).
    fn update_many(&mut self, xs: &[T]) {
        if xs.is_empty() {
            return;
        }
        let writer = self.writer.get_mut().unwrap();
        for &x in xs {
            writer.update(x);
        }
        self.version += 1;
    }

    // `flush` is the default no-op: the unflushed tail is composed into
    // every read by `resident_summary`, so nothing is ever invisible.
}

impl<T: OrderedBits> MergeableSketch<T> for ConcurrentEngine<T> {
    fn to_summary(&self) -> WeightedSummary {
        self.resident_summary()
    }

    fn absorb_summary(&mut self, summary: &WeightedSummary) {
        if summary.stream_len() == 0 && summary.num_retained() == 0 {
            // Nothing observable changes; keep the version (and cached
            // summaries) stable.
            return;
        }
        self.absorb_buffer.push(summary.clone());
        self.version += 1;
        let buffered: usize = self.absorb_buffer.iter().map(WeightedSummary::num_retained).sum();
        if buffered > ABSORB_COMPACT_FACTOR * self.k {
            self.compact_absorbed();
        }
    }
}

/// Version accounting in two halves: `&mut self` mutations (resident
/// writes, absorbs, compactions — exclusive under the store's stripe write
/// lock) bump the plain counter, and every leased-writer flush that moved
/// weight bumps the shared-ops cell. Both halves only grow, so the sum is
/// monotone; reading the shared half with `Acquire` *before* materializing
/// a summary guarantees the materialization sees at least everything the
/// version accounts for (in-flight leased writes may additionally be
/// visible early — they invalidate the tag when their flush lands).
impl<T: OrderedBits> VersionedSketch for ConcurrentEngine<T> {
    fn version(&self) -> u64 {
        self.version + self.shared_ops.load(Ordering::Acquire)
    }
}

/// Shared-access leases: every lease is granted — the sketch supports any
/// number of concurrent updaters; pooling/capping is the owner's concern
/// (see the store's per-key writer pool).
impl<T: OrderedBits> SharedIngest<T> for ConcurrentEngine<T> {
    fn try_writer(&self) -> Option<Box<dyn StreamIngest<T> + Send>> {
        Some(Box::new(LeasedWriter {
            updater: self.sketch.updater(),
            spill: Arc::clone(&self.spill),
            shared_ops: Arc::clone(&self.shared_ops),
            b: self.sketch.config().b,
            unflushed: 0,
        }))
    }
}

/// Forwards the wrapped Quancurrent's operation counters (DCAS retries,
/// snapshot miss rates, …) unchanged.
impl<T: OrderedBits> InstrumentedSketch for ConcurrentEngine<T> {
    fn internal_counters(&self) -> Vec<(&'static str, u64)> {
        self.sketch.internal_counters()
    }
}

impl<T: OrderedBits> StoreEngine<T> for ConcurrentEngine<T> {
    fn build(cfg: &StoreConfig, seed: u64) -> Self {
        Self::new(cfg.k, cfg.b, seed)
    }

    fn tier(&self) -> Tier {
        Tier::Concurrent
    }

    fn footprint(&self) -> usize {
        // Fixed Gather&Sort allocation (2 buffers × 2k slot/stamp pairs)
        // plus live level arrays and side state.
        8 * self.k
            + self.sketch.levels_retained()
            + self.writer.lock().unwrap().pending_len()
            + self.spill.lock().unwrap().len()
            + self.absorbed.num_retained()
            + self.absorb_buffer.iter().map(WeightedSummary::num_retained).sum::<usize>()
    }

    /// Not a tier change, but an idle moment: fold the absorb buffer into
    /// the compacted bulk so a cooled-down key stops paying the buffer's
    /// memory and read-merge overhead.
    fn maintain(&mut self) -> bool {
        if !self.absorb_buffer.is_empty() {
            self.compact_absorbed();
            self.version += 1;
        }
        false
    }
}

impl<T: OrderedBits> std::fmt::Debug for ConcurrentEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentEngine")
            .field("k", &self.k)
            .field("stream_len", &QuantileEstimator::stream_len(self))
            .field("absorbed", &self.absorbed_weight())
            .field("version", &self.version)
            .finish()
    }
}

/// The hot variant is boxed so the common case — thousands of cold keys —
/// pays the sequential sketch's size, not the concurrent engine's.
enum TierState<T: OrderedBits> {
    Cold(SequentialEngine<T>),
    Hot(Box<ConcurrentEngine<T>>),
}

/// The default store engine: starts every key as a compact sequential
/// sketch and moves it between tiers as update pressure changes. See the
/// [module docs](self) for the full tiering story.
///
/// * **Promotion** (cold → hot) happens inline in `update`/`update_many`
///   once cumulative updates reach the configured threshold: the cold
///   sketch's summary is absorbed into a fresh [`ConcurrentEngine`], so
///   not a single unit of weight is lost.
/// * **Demotion** (hot → cold) happens on [`StoreEngine::maintain`] when
///   an entire epoch passed without updates: the hot engine's resident
///   summary round-trips into a fresh sequential sketch, releasing the
///   Gather&Sort buffers.
pub struct TieredEngine<T: OrderedBits = f64> {
    state: TierState<T>,
    k: usize,
    b: usize,
    seed: u64,
    promotion_threshold: u64,
    /// Updates since creation or last demotion (promotion pressure).
    pressure: u64,
    /// Exclusive-path updates in the current cool-down epoch.
    epoch_updates: u64,
    /// The hot engine's shared-write count at the last `maintain` sweep —
    /// leased writes bypass `&mut self`, so idle detection compares this
    /// watermark instead of counting.
    epoch_shared_watermark: u64,
    version: u64,
}

impl<T: OrderedBits> TieredEngine<T> {
    /// Build a cold engine. `promotion_threshold` is the cumulative
    /// update count **past which** the key promotes — the first update
    /// beyond it fires the promotion (`0` promotes on the first update,
    /// `u64::MAX` pins the key cold).
    pub fn new(k: usize, b: usize, seed: u64, promotion_threshold: u64) -> Self {
        Self {
            state: TierState::Cold(qc_sequential::Sketch::with_seed(k, seed)),
            k,
            b,
            seed,
            promotion_threshold,
            pressure: 0,
            epoch_updates: 0,
            epoch_shared_watermark: 0,
            version: 0,
        }
    }

    /// The hot engine's completed shared-write flushes (0 while cold).
    fn shared_writes(&self) -> u64 {
        match &self.state {
            TierState::Cold(_) => 0,
            TierState::Hot(hot) => hot.shared_writes(),
        }
    }

    /// Is the key currently on the concurrent tier?
    pub fn is_hot(&self) -> bool {
        matches!(self.state, TierState::Hot(_))
    }

    /// A well-mixed seed for a freshly built tier engine. Mixing the
    /// version in makes repeated promote/demote cycles draw fresh
    /// sampling randomness instead of replaying one coin sequence.
    fn migration_seed(&self, salt: u64) -> u64 {
        let mut mixer = SplitMix64::new(self.seed ^ salt ^ self.version);
        mixer.next_u64()
    }

    /// Force promotion to the concurrent tier (no-op if already hot).
    pub fn promote_now(&mut self) {
        if let TierState::Cold(cold) = &self.state {
            let summary = MergeableSketch::to_summary(cold);
            let mut hot = ConcurrentEngine::new(self.k, self.b, self.migration_seed(0x9E37_79B9));
            hot.absorb_summary(&summary);
            self.state = TierState::Hot(Box::new(hot));
            self.epoch_shared_watermark = 0;
            self.version += 1;
        }
    }

    /// Force demotion to the sequential tier via an exact summary
    /// round-trip (no-op if already cold). Resets promotion pressure.
    ///
    /// Outstanding leased writers of the hot engine must already be
    /// invalidated by the owner (the store bumps the key's lease
    /// generation): their flushed weight rides the summary round-trip; a
    /// handle itself becomes a write into an orphaned sketch and is
    /// rejected by the generation check before it can run.
    pub fn demote_now(&mut self) {
        if let TierState::Hot(hot) = &self.state {
            let summary = hot.to_summary();
            // Fold the hot engine's shared-write half into the plain
            // counter (+1 for the migration itself) so the version never
            // regresses when the shared cell is dropped with the engine.
            self.version = self.version + hot.shared_writes() + 1;
            let mut cold = qc_sequential::Sketch::with_seed(
                self.k,
                self.migration_seed(0x6A09_E667_F3BC_C908),
            );
            MergeableSketch::absorb_summary(&mut cold, &summary);
            self.state = TierState::Cold(cold);
            self.pressure = 0;
            self.epoch_shared_watermark = 0;
        }
    }

    /// The current tier's engine as a read-side trait object.
    fn inner(&self) -> &dyn SketchEngine<T> {
        match &self.state {
            TierState::Cold(e) => e,
            TierState::Hot(e) => &**e,
        }
    }

    /// The current tier's engine as a write-side trait object.
    fn inner_mut(&mut self) -> &mut dyn SketchEngine<T> {
        match &mut self.state {
            TierState::Cold(e) => e,
            TierState::Hot(e) => &mut **e,
        }
    }

    fn after_updates(&mut self, n: u64) {
        self.pressure = self.pressure.saturating_add(n);
        self.epoch_updates = self.epoch_updates.saturating_add(n);
        if !self.is_hot() && self.pressure > self.promotion_threshold {
            self.promote_now();
        }
    }
}

impl<T: OrderedBits> QuantileEstimator<T> for TieredEngine<T> {
    fn stream_len(&self) -> u64 {
        self.inner().stream_len()
    }

    fn query(&self, phi: f64) -> Option<T> {
        self.inner().query(phi)
    }

    fn rank_weight(&self, x: T) -> u64 {
        self.inner().rank_weight(x)
    }

    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        self.inner().cdf(split_points)
    }

    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        self.inner().quantiles(phis)
    }

    fn error_bound(&self) -> f64 {
        qc_common::error::sequential_epsilon(self.k)
    }
}

impl<T: OrderedBits> StreamIngest<T> for TieredEngine<T> {
    fn update(&mut self, x: T) {
        self.inner_mut().update(x);
        self.version += 1;
        self.after_updates(1);
    }

    /// Overridden (unlike the other engines, whose default suffices) so
    /// promotion pressure — and the version — is accounted once per batch.
    fn update_many(&mut self, xs: &[T]) {
        if xs.is_empty() {
            return;
        }
        self.inner_mut().update_many(xs);
        self.version += 1;
        self.after_updates(xs.len() as u64);
    }
}

impl<T: OrderedBits> MergeableSketch<T> for TieredEngine<T> {
    fn to_summary(&self) -> WeightedSummary {
        self.inner().to_summary()
    }

    fn absorb_summary(&mut self, summary: &WeightedSummary) {
        self.inner_mut().absorb_summary(summary);
        self.version += 1;
    }
}

/// Version accounting: the wrapper's own counter covers `&mut self`
/// mutations and tier migrations in either direction (the inner engines'
/// full versions reset across migrations, so they cannot be forwarded
/// directly), plus the hot engine's shared-write half for leased writes.
/// Demotion folds the shared half into the plain counter before dropping
/// the hot engine, so the sum never regresses.
impl<T: OrderedBits> VersionedSketch for TieredEngine<T> {
    fn version(&self) -> u64 {
        self.version + self.shared_writes()
    }
}

/// Shared-access leases, tier-aware: hot keys lease the concurrent
/// engine's per-thread writers; cold keys decline, keeping callers on the
/// exclusive path that drives promotion pressure.
impl<T: OrderedBits> SharedIngest<T> for TieredEngine<T> {
    fn try_writer(&self) -> Option<Box<dyn StreamIngest<T> + Send>> {
        match &self.state {
            TierState::Cold(_) => None,
            TierState::Hot(hot) => hot.try_writer(),
        }
    }
}

/// Forwards the hot tier's counters; a cold (sequential) tier has none.
/// Values reset on demotion — see the [`InstrumentedSketch`] contract.
impl<T: OrderedBits> InstrumentedSketch for TieredEngine<T> {
    fn internal_counters(&self) -> Vec<(&'static str, u64)> {
        match &self.state {
            TierState::Cold(_) => Vec::new(),
            TierState::Hot(hot) => hot.internal_counters(),
        }
    }
}

impl<T: OrderedBits> StoreEngine<T> for TieredEngine<T> {
    fn build(cfg: &StoreConfig, seed: u64) -> Self {
        Self::new(cfg.k, cfg.b, seed, cfg.promotion_threshold)
    }

    fn tier(&self) -> Tier {
        match self.state {
            TierState::Cold(_) => Tier::Sequential,
            TierState::Hot(_) => Tier::Concurrent,
        }
    }

    fn footprint(&self) -> usize {
        // `footprint` lives on `StoreEngine` (not object-safe), so this
        // one delegation keeps the two-arm match.
        match &self.state {
            TierState::Cold(e) => StoreEngine::<T>::footprint(e),
            TierState::Hot(e) => StoreEngine::<T>::footprint(&**e),
        }
    }

    /// Demotes the key iff the entire epoch since the previous `maintain`
    /// call saw no updates — on **either** write path: exclusive-lock
    /// updates count in `epoch_updates`, leased shared writes move the
    /// hot engine's shared-write counter past the epoch watermark.
    fn maintain(&mut self) -> bool {
        let shared_now = self.shared_writes();
        let idle = self.epoch_updates == 0 && shared_now == self.epoch_shared_watermark;
        self.epoch_updates = 0;
        self.epoch_shared_watermark = shared_now;
        if idle && self.is_hot() {
            self.demote_now();
            true
        } else {
            false
        }
    }
}

impl<T: OrderedBits> std::fmt::Debug for TieredEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredEngine")
            .field("tier", &StoreEngine::<T>::tier(self))
            .field("pressure", &self.pressure)
            .field("stream_len", &QuantileEstimator::stream_len(self))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::default().k(64).b(4).promotion_threshold(256)
    }

    #[test]
    fn tiered_starts_cold_and_promotes_under_pressure() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 7);
        assert_eq!(StoreEngine::<f64>::tier(&e), Tier::Sequential);
        for i in 0..256 {
            e.update(i as f64);
        }
        assert!(!e.is_hot(), "at the threshold the key is still cold");
        e.update(256.0);
        assert!(e.is_hot(), "crossing the threshold promotes");
        assert_eq!(QuantileEstimator::stream_len(&e), 257, "promotion conserves weight exactly");
        assert_eq!(e.to_summary().stream_len(), 257);
    }

    #[test]
    fn tiered_update_many_promotes_once_per_batch() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 8);
        let batch: Vec<f64> = (0..1000).map(f64::from).collect();
        e.update_many(&batch);
        assert!(e.is_hot());
        assert_eq!(QuantileEstimator::stream_len(&e), 1000);
        let median = QuantileEstimator::query(&e, 0.5).unwrap();
        assert!((300.0..700.0).contains(&median), "median {median}");
    }

    #[test]
    fn idle_hot_key_demotes_on_second_sweep() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 9);
        e.update_many(&(0..500).map(f64::from).collect::<Vec<_>>());
        assert!(e.is_hot());
        // First sweep: the busy epoch just ended — no demotion.
        assert!(!StoreEngine::<f64>::maintain(&mut e));
        assert!(e.is_hot());
        // Second sweep with zero updates in between: demote.
        assert!(StoreEngine::<f64>::maintain(&mut e));
        assert!(!e.is_hot());
        assert_eq!(QuantileEstimator::stream_len(&e), 500, "demotion conserves weight exactly");
    }

    #[test]
    fn demoted_key_can_repromote() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 10);
        e.update_many(&(0..500).map(f64::from).collect::<Vec<_>>());
        StoreEngine::<f64>::maintain(&mut e);
        StoreEngine::<f64>::maintain(&mut e);
        assert!(!e.is_hot());
        e.update_many(&(0..300).map(f64::from).collect::<Vec<_>>());
        assert!(e.is_hot(), "fresh pressure after demotion re-promotes");
        assert_eq!(QuantileEstimator::stream_len(&e), 800);
    }

    #[test]
    fn cold_footprint_is_an_order_of_magnitude_below_hot() {
        let cfg = StoreConfig::default().k(256).b(4).promotion_threshold(u64::MAX);
        let mut cold = TieredEngine::<f64>::build(&cfg, 1);
        let mut hot = ConcurrentEngine::<f64>::new(256, 4, 1);
        for i in 0..64 {
            cold.update(i as f64);
            hot.update(i as f64);
        }
        let (c, h) = (StoreEngine::<f64>::footprint(&cold), StoreEngine::<f64>::footprint(&hot));
        assert!(c * 10 <= h, "cold {c} words vs hot {h} words");
    }

    #[test]
    fn concurrent_engine_composes_absorbed_and_pending() {
        let mut e = ConcurrentEngine::<f64>::new(64, 4, 3);
        e.update_many(&(0..1001).map(f64::from).collect::<Vec<_>>());
        assert_eq!(QuantileEstimator::stream_len(&e), 1001);
        let snapshot = e.to_summary();
        assert_eq!(snapshot.stream_len(), 1001);

        let mut other = ConcurrentEngine::<f64>::new(64, 4, 4);
        other.absorb_summary(&snapshot);
        assert_eq!(QuantileEstimator::stream_len(&other), 1001);
        assert!(other.query(0.5).is_some());
    }

    #[test]
    fn versions_advance_on_mutations_and_hold_on_reads() {
        let mut e = ConcurrentEngine::<f64>::new(64, 4, 5);
        let v0 = VersionedSketch::version(&e);
        e.update_many(&(0..100).map(f64::from).collect::<Vec<_>>());
        let v1 = VersionedSketch::version(&e);
        assert!(v1 > v0);
        let snapshot = e.to_summary();
        let _ = e.query(0.5);
        let _ = QuantileEstimator::stream_len(&e);
        assert_eq!(VersionedSketch::version(&e), v1, "reads leave the version alone");
        e.absorb_summary(&WeightedSummary::empty());
        assert_eq!(VersionedSketch::version(&e), v1, "empty absorbs change nothing");
        e.absorb_summary(&snapshot);
        assert!(VersionedSketch::version(&e) > v1);

        let mut t = TieredEngine::<f64>::build(&cfg(), 6);
        let v0 = VersionedSketch::version(&t);
        t.update(1.0);
        let v1 = VersionedSketch::version(&t);
        assert!(v1 > v0);
        t.promote_now();
        let v2 = VersionedSketch::version(&t);
        assert!(v2 > v1, "promotion is an observable state change");
        assert!(!StoreEngine::<f64>::maintain(&mut t));
        assert!(StoreEngine::<f64>::maintain(&mut t), "idle hot key demotes");
        assert!(VersionedSketch::version(&t) > v2, "demotion bumps the version");
    }

    #[test]
    fn small_absorbs_buffer_losslessly_until_threshold() {
        // 8 absorbs of 16 unit-weight elements: 128 total, below the
        // compaction threshold (4k = 256 for k = 64) — every element must
        // come through verbatim, proving no per-ingest re-compaction.
        let mut e = ConcurrentEngine::<f64>::new(64, 4, 7);
        for i in 0..8u64 {
            let bits: Vec<u64> = (0..16).map(|j| (i * 16 + j) * 3).collect();
            e.absorb_summary(&WeightedSummary::from_parts([(&bits[..], 1u64)]));
        }
        let s = e.to_summary();
        assert_eq!(s.stream_len(), 128);
        assert_eq!(s.num_retained(), 128, "sub-threshold absorbs must stay uncompacted");
    }

    #[test]
    fn absorb_buffer_compacts_past_threshold_conserving_weight() {
        let mut e = ConcurrentEngine::<f64>::new(64, 4, 9);
        for i in 0..40u64 {
            let bits: Vec<u64> = (0..8).map(|j| i * 8 + j).collect();
            e.absorb_summary(&WeightedSummary::from_parts([(&bits[..], 1u64)]));
        }
        assert_eq!(QuantileEstimator::stream_len(&e), 320);
        let s = e.to_summary();
        assert_eq!(s.stream_len(), 320, "compaction conserves weight exactly");
        assert!(s.num_retained() < 320, "crossing the threshold must compact");
        // An idle maintain sweep folds whatever is still buffered.
        let v = VersionedSketch::version(&e);
        assert!(!StoreEngine::<f64>::maintain(&mut e));
        if VersionedSketch::version(&e) > v {
            assert_eq!(e.to_summary().stream_len(), 320);
        }
    }

    #[test]
    fn leased_writer_weight_is_exact_after_flush() {
        let e = ConcurrentEngine::<f64>::new(64, 4, 21);
        let v0 = VersionedSketch::version(&e);
        let mut w = e.try_writer().expect("concurrent engine always leases");
        // 10 = 2 full Gather&Sort placements + a sub-b tail of 2.
        w.update_many(&(0..10).map(f64::from).collect::<Vec<_>>());
        w.flush();
        assert_eq!(QuantileEstimator::stream_len(&e), 10, "flushed leased weight must be exact");
        assert_eq!(e.to_summary().stream_len(), 10);
        assert!(VersionedSketch::version(&e) > v0, "a weight-moving flush must bump the version");
        assert!(e.spill.lock().unwrap().len() < 4, "spill must stay below b");
        // An idle flush is version-neutral (cached summaries stay warm).
        let v1 = VersionedSketch::version(&e);
        w.flush();
        assert_eq!(VersionedSketch::version(&e), v1);
    }

    #[test]
    fn concurrent_leases_drain_each_others_spill() {
        let e = ConcurrentEngine::<f64>::new(64, 4, 22);
        // 4 leases × 3 elements: each flush parks a sub-b tail; later
        // flushes pick up full multiples of b. Total must stay exact and
        // the spill bounded regardless of interleaving.
        let mut writers: Vec<_> = (0..4).map(|_| e.try_writer().unwrap()).collect();
        for (i, w) in writers.iter_mut().enumerate() {
            w.update_many(&[(i * 3) as f64, (i * 3 + 1) as f64, (i * 3 + 2) as f64]);
            w.flush();
        }
        assert_eq!(QuantileEstimator::stream_len(&e), 12);
        assert_eq!(e.to_summary().stream_len(), 12);
        assert!(e.spill.lock().unwrap().len() < 4);
    }

    #[test]
    fn draining_flush_brackets_the_spill_move_with_two_bumps() {
        let e = ConcurrentEngine::<f64>::new(64, 4, 25);
        let mut w = e.try_writer().unwrap();
        w.update_many(&[1.0, 2.0, 3.0]);
        w.flush(); // tail of 3 parks in the spill: no drain, one bump
        let v1 = VersionedSketch::version(&e);
        w.update_many(&[4.0, 5.0, 6.0]);
        w.flush(); // spill reaches 6, drains 4 back through Gather&Sort
        let v2 = VersionedSketch::version(&e);
        // The drain moves weight that v1 already accounted for out of the
        // spill; the extra bump before the removal is what keeps a reader
        // materializing inside that window from caching the miss against
        // a settled version.
        assert_eq!(v2 - v1, 2, "a draining flush must bump before the drain and after the land");
        assert_eq!(QuantileEstimator::stream_len(&e), 6);
        assert_eq!(e.to_summary().stream_len(), 6);
    }

    #[test]
    fn leased_and_resident_writes_compose() {
        let mut e = ConcurrentEngine::<f64>::new(64, 4, 23);
        e.update_many(&(0..100).map(f64::from).collect::<Vec<_>>());
        let mut w = e.try_writer().unwrap();
        w.update_many(&(100..200).map(f64::from).collect::<Vec<_>>());
        w.flush();
        drop(w);
        e.update_many(&(200..300).map(f64::from).collect::<Vec<_>>());
        assert_eq!(QuantileEstimator::stream_len(&e), 300);
        assert_eq!(e.to_summary().stream_len(), 300);
    }

    #[test]
    fn tiered_leases_only_when_hot_and_shared_writes_defer_demotion() {
        let mut t = TieredEngine::<f64>::build(&cfg(), 24);
        assert!(t.try_writer().is_none(), "cold keys must keep the exclusive path");
        t.update_many(&(0..500).map(f64::from).collect::<Vec<_>>());
        assert!(t.is_hot());
        let mut w = t.try_writer().expect("hot keys lease");
        // Close the busy epoch, then write through the lease only: the
        // next sweep must see the shared write and not demote.
        assert!(!StoreEngine::<f64>::maintain(&mut t));
        w.update_many(&[1.0, 2.0, 3.0]);
        w.flush();
        assert!(!StoreEngine::<f64>::maintain(&mut t), "leased writes must count as activity");
        assert!(t.is_hot());
        drop(w);
        // Two genuinely idle sweeps demote; the version stays monotone
        // across the fold and the weight stays exact.
        let v_before = VersionedSketch::version(&t);
        assert!(StoreEngine::<f64>::maintain(&mut t));
        assert!(!t.is_hot());
        assert!(VersionedSketch::version(&t) > v_before, "demotion fold must not regress");
        assert_eq!(QuantileEstimator::stream_len(&t), 503, "demotion conserves leased weight");
    }

    #[test]
    fn merge_seeds_differ_for_adjacent_key_seeds() {
        // `seed | 1` collapsed seeds differing only in bit 0; the mixed
        // derivation must not.
        let a = ConcurrentEngine::<f64>::new(64, 4, 42);
        let b = ConcurrentEngine::<f64>::new(64, 4, 43);
        assert_ne!(a.merge_seed, b.merge_seed);
    }

    #[test]
    fn tier_migration_preserves_quantile_accuracy() {
        let mut e = TieredEngine::<f64>::build(&cfg(), 11);
        e.update_many(&(0..10_000).map(f64::from).collect::<Vec<_>>());
        assert!(e.is_hot());
        let before = QuantileEstimator::query(&e, 0.5).unwrap();
        e.demote_now();
        let after = QuantileEstimator::query(&e, 0.5).unwrap();
        let eps = QuantileEstimator::error_bound(&e);
        assert!(
            (before - after).abs() / 10_000.0 < 8.0 * eps,
            "median moved {before} -> {after} across demotion"
        );
    }
}
