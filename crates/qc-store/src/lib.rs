//! **qc-store** — a sharded, keyed sketch store with a versioned wire
//! format and summary merging.
//!
//! The paper contributes a single blazing-fast in-process sketch; a serving
//! system needs many named streams, aggregation across processes, and
//! durable interchange of sketch state. This crate is that layer, in three
//! pieces:
//!
//! * [`wire`] — a compact, versioned, endian-stable binary encoding of
//!   [`qc_common::WeightedSummary`] (magic + version header, varint
//!   weights, delta-coded sorted value bits, CRC-32 trailer, typed
//!   [`wire::WireError`] decode failures — never a panic);
//! * [`merge`] — [`merge::merge_summaries`]: weight-aware merging of any
//!   number of summaries with randomized odd-or-even compaction back to a
//!   `k`-bounded summary, conserving total weight exactly;
//! * [`engine`] — the store's pluggable per-key backends behind the
//!   [`qc_common::engine`] traits: [`engine::SequentialEngine`] (compact,
//!   cold), [`engine::ConcurrentEngine`] (full Quancurrent machinery),
//!   and the default [`engine::TieredEngine`] that promotes keys from
//!   cold to hot under update pressure and demotes them on cool-down;
//! * [`store`] — [`store::SketchStore`]: a fixed-stripe, lock-per-stripe
//!   registry mapping string keys to live engines, with keyed
//!   update/query, snapshot/ingest through the wire format, and cross-key
//!   merged queries. Generic over element type and engine;
//!   `SketchStore` with default parameters is the `f64` tiered store;
//! * [`persist`] — the restart-safety layer: an append-only segment log
//!   of every mutation plus checkpoint compaction, replayed by
//!   [`store::SketchStore::recover`] with typed, clean-prefix handling
//!   of torn and corrupt files;
//! * [`window`] — the time-windowed layer: window-aligned sub-sketches
//!   per key (active window = live engine, sealed windows = immutable
//!   summaries), downsampling into coarser windows, retention eviction,
//!   and the event-time arithmetic behind
//!   [`store::SketchStore::update_at`] /
//!   [`store::SketchStore::query_range`].
//!
//! ```
//! use qc_store::{SketchStore, StoreConfig};
//!
//! let store = SketchStore::new(StoreConfig::default().stripes(8).k(128).b(4).seed(7));
//! for i in 0..10_000 {
//!     store.update("checkout", i as f64);
//!     store.update("search", (i * 2) as f64);
//! }
//!
//! // Per-key and cross-key quantiles.
//! let p99 = store.query("checkout", 0.99).unwrap();
//! assert!(p99 > 9_000.0);
//! let union_median = store.merged_query(&["checkout", "search"], 0.5).unwrap();
//! assert!(union_median > 4_000.0);
//!
//! // Snapshot one key, ship the bytes anywhere, fold them into another
//! // store (or key) later.
//! let frame = store.snapshot_bytes("search").unwrap();
//! let other: SketchStore = SketchStore::default();
//! other.ingest_bytes("search-replica", &frame).unwrap();
//! assert_eq!(other.stats().stream_len, 10_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod merge;
pub mod persist;
pub mod store;
pub mod window;
pub mod wire;

pub use engine::{ConcurrentEngine, SequentialEngine, StoreEngine, Tier, TieredEngine};
pub use merge::merge_summaries;
pub use persist::{
    CheckpointError, CheckpointStats, FsyncPolicy, PersistError, RecordError, RecoveryReport,
};
pub use store::{
    SketchStore, StaleLease, StoreConfig, StoreStats, WriterLease, DEFAULT_PROMOTION_THRESHOLD,
    DEFAULT_WRITER_POOL,
};
pub use window::{WindowConfig, WindowSnapshot};
pub use wire::{decode_summary, encode_summary, WireError};
