//! A sharded, keyed registry of live sketches.
//!
//! High-cardinality keyed aggregation is the dominant quantile-serving
//! workload (Gan et al., *Moment-Based Quantile Sketches for Efficient
//! High-Cardinality Aggregation Queries*): millions of named streams
//! ("latency by endpoint", "payload size by tenant") each need their own
//! sketch, plus cross-key and cross-process aggregation. [`SketchStore`]
//! is that layer:
//!
//! * keys are hashed onto a fixed array of stripes (power-of-two count),
//!   each stripe a mutex around its own key map — writers on different
//!   stripes never contend, and no lock is ever held across stripes;
//! * each key owns a live [`Quancurrent<f64>`] sketch (updates go through
//!   the paper's three-level ingestion path) **plus** an *absorbed*
//!   [`WeightedSummary`] holding everything merged in from remote
//!   snapshots via [`SketchStore::ingest_bytes`];
//! * reads compose the live sketch's quiescent state, its not-yet-flushed
//!   updater buffer, and the absorbed summary with
//!   [`crate::merge::merge_summaries`], so `query`/`merged_query` see every
//!   element ever handed to the store — local or ingested — with exact
//!   stream-length accounting.
//!
//! Holding the stripe lock during reads makes the per-key composition safe:
//! the sketch's quiescent summary demands no concurrent updates, and all
//! updates for a key funnel through its stripe lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

use qc_common::bits::OrderedBits;
use qc_common::summary::{Summary, WeightedSummary};
use quancurrent::{Quancurrent, Updater};

use crate::merge::merge_summaries;
use crate::wire::{decode_summary, encode_summary, WireError};

/// Store construction parameters.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of lock stripes; rounded up to a power of two, minimum 1.
    pub stripes: usize,
    /// Per-sketch level size `k` (accuracy knob; see `qc_common::error`).
    pub k: usize,
    /// Per-sketch thread-local buffer size `b`. Small values keep per-key
    /// relaxation low — a keyed store amortizes over many keys, not many
    /// threads per key.
    pub b: usize,
    /// Base seed; each key derives its own deterministic seed from it.
    pub seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { stripes: 16, k: 256, b: 4, seed: 0x5eed_5704e }
    }
}

/// Store-wide counters (monotone; sampled without locks except
/// `keys`/`stream_len`, which sweep the stripes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of resident keys.
    pub keys: usize,
    /// Number of stripes (fixed at construction).
    pub stripes: usize,
    /// Total elements ingested via `update`/`update_many`.
    pub updates: u64,
    /// Total successfully ingested remote snapshots.
    pub ingests: u64,
    /// Ingest attempts rejected with a [`WireError`].
    pub ingest_errors: u64,
    /// Total stream length across all keys (local + absorbed).
    pub stream_len: u64,
    /// Bytes produced by `snapshot_bytes`.
    pub bytes_out: u64,
    /// Bytes accepted by `ingest_bytes`.
    pub bytes_in: u64,
}

struct KeyEntry {
    sketch: Quancurrent<f64>,
    /// Per-key updater; all updates for the key run under the stripe lock,
    /// so one handle is exactly the single-writer discipline the sketch's
    /// local buffer expects.
    updater: Updater<f64>,
    /// Everything merged in from remote snapshots, pre-compacted to `2k`
    /// per level.
    absorbed: WeightedSummary,
    /// Seed for this key's merge coins (deterministic per key).
    merge_seed: u64,
}

impl KeyEntry {
    /// The key's full resident summary: shared levels + Gather&Sort
    /// buffers + unflushed updater buffer + absorbed remote weight.
    /// Caller must hold the stripe lock (it owns all update paths).
    fn resident_summary(&self, k: usize) -> WeightedSummary {
        let quiescent = self.sketch.quiescent_summary();
        let pending = self.updater.pending();
        let mut bits: Vec<u64> = pending.iter().map(|v| v.to_ordered_bits()).collect();
        bits.sort_unstable();
        let pending_summary = if bits.is_empty() {
            WeightedSummary::empty()
        } else {
            WeightedSummary::from_parts([(&bits[..], 1u64)])
        };
        merge_summaries(&[quiescent, pending_summary, self.absorbed.clone()], k, self.merge_seed)
    }
}

/// Sharded keyed sketch store; see the [module docs](self).
pub struct SketchStore {
    stripes: Box<[Mutex<HashMap<String, KeyEntry>>]>,
    mask: usize,
    cfg: StoreConfig,
    updates: AtomicU64,
    ingests: AtomicU64,
    ingest_errors: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

impl Default for SketchStore {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl SketchStore {
    /// Build a store with the given configuration.
    pub fn new(cfg: StoreConfig) -> Self {
        let stripes = cfg.stripes.max(1).next_power_of_two();
        let table = (0..stripes).map(|_| Mutex::new(HashMap::new())).collect();
        SketchStore {
            stripes: table,
            mask: stripes - 1,
            cfg,
            updates: AtomicU64::new(0),
            ingests: AtomicU64::new(0),
            ingest_errors: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
        }
    }

    /// The store's configuration (stripe count already normalized).
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Number of stripes (power of two).
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, key: &str) -> &Mutex<HashMap<String, KeyEntry>> {
        // FNV-1a over the key bytes; stripe count is a power of two.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Fold the high bits in so the low-bit mask sees the whole hash.
        &self.stripes[((h ^ (h >> 32)) as usize) & self.mask]
    }

    fn make_entry(&self, key: &str) -> KeyEntry {
        // Distinct deterministic seeds per key, derived FNV-style.
        let mut h = self.cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in key.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let sketch = Quancurrent::<f64>::builder().k(self.cfg.k).b(self.cfg.b).seed(h).build();
        let updater = sketch.updater();
        KeyEntry {
            sketch,
            updater,
            absorbed: WeightedSummary::empty(),
            merge_seed: h.rotate_left(17) | 1,
        }
    }

    /// Feed one value into `key`'s sketch, creating the key on first use.
    pub fn update(&self, key: &str, value: f64) {
        self.update_many(key, &[value]);
    }

    /// Feed a batch of values into `key` under a single lock acquisition.
    pub fn update_many(&self, key: &str, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        let mut map = self.stripe_of(key).lock().unwrap();
        // Probe before inserting: the steady state must not allocate a
        // `String` per call just to use the entry API.
        if !map.contains_key(key) {
            map.insert(key.to_string(), self.make_entry(key));
        }
        let entry = map.get_mut(key).expect("entry just ensured");
        for &v in values {
            entry.updater.update(v);
        }
        drop(map);
        self.updates.fetch_add(values.len() as u64, Relaxed);
    }

    /// φ-quantile estimate over everything `key` has seen (local updates
    /// and ingested snapshots). `None` if the key is absent or empty.
    pub fn query(&self, key: &str, phi: f64) -> Option<f64> {
        self.summary_of(key)?.quantile::<f64>(phi)
    }

    /// Normalized rank of `value` within `key`'s stream (0.0 ≤ rank ≤ 1.0).
    /// `None` if the key is absent or empty.
    pub fn rank(&self, key: &str, value: f64) -> Option<f64> {
        let summary = self.summary_of(key)?;
        if summary.stream_len() == 0 {
            return None;
        }
        Some(summary.rank(value))
    }

    /// The key's full resident summary, or `None` if the key is absent.
    pub fn summary_of(&self, key: &str) -> Option<WeightedSummary> {
        let map = self.stripe_of(key).lock().unwrap();
        map.get(key).map(|e| e.resident_summary(self.cfg.k))
    }

    /// Serialize `key`'s resident summary with [`crate::wire`]. `None` if
    /// the key is absent. The frame is self-contained: another process (or
    /// another key) can [`SketchStore::ingest_bytes`] it.
    pub fn snapshot_bytes(&self, key: &str) -> Option<Vec<u8>> {
        let summary = self.summary_of(key)?;
        let bytes = encode_summary(&summary);
        self.bytes_out.fetch_add(bytes.len() as u64, Relaxed);
        Some(bytes)
    }

    /// Decode a serialized summary and merge it into `key`'s absorbed
    /// aggregate, creating the key if needed. Returns the ingested stream
    /// length. Malformed frames return a typed [`WireError`] and leave the
    /// store untouched.
    pub fn ingest_bytes(&self, key: &str, buf: &[u8]) -> Result<u64, WireError> {
        let remote = match decode_summary(buf) {
            Ok(summary) => summary,
            Err(e) => {
                self.ingest_errors.fetch_add(1, Relaxed);
                return Err(e);
            }
        };
        let ingested = remote.stream_len();
        let mut map = self.stripe_of(key).lock().unwrap();
        let entry = map.entry(key.to_string()).or_insert_with(|| self.make_entry(key));
        let absorbed = std::mem::take(&mut entry.absorbed);
        entry.absorbed = merge_summaries(&[absorbed, remote], self.cfg.k, entry.merge_seed);
        drop(map);
        self.ingests.fetch_add(1, Relaxed);
        self.bytes_in.fetch_add(buf.len() as u64, Relaxed);
        Ok(ingested)
    }

    /// One summary over the union of the given keys' streams (absent keys
    /// contribute nothing). Locks one stripe at a time.
    pub fn merged_summary<K: AsRef<str>>(&self, keys: &[K]) -> WeightedSummary {
        let parts: Vec<WeightedSummary> =
            keys.iter().filter_map(|k| self.summary_of(k.as_ref())).collect();
        merge_summaries(&parts, self.cfg.k, self.cfg.seed)
    }

    /// φ-quantile over the union of the given keys' streams. `None` if no
    /// key contributed any element.
    pub fn merged_query<K: AsRef<str>>(&self, keys: &[K], phi: f64) -> Option<f64> {
        self.merged_summary(keys).quantile::<f64>(phi)
    }

    /// Remove a key and return whether it was present.
    pub fn remove(&self, key: &str) -> bool {
        self.stripe_of(key).lock().unwrap().remove(key).is_some()
    }

    /// All resident keys (unordered).
    pub fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            out.extend(stripe.lock().unwrap().keys().cloned());
        }
        out
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().unwrap().is_empty())
    }

    /// Store-wide statistics. Sweeps the stripes for `keys`/`stream_len`;
    /// counter fields are exact, lock-free reads.
    pub fn stats(&self) -> StoreStats {
        let mut keys = 0usize;
        let mut stream_len = 0u64;
        for stripe in self.stripes.iter() {
            let map = stripe.lock().unwrap();
            keys += map.len();
            for entry in map.values() {
                stream_len += entry.sketch.stream_len()
                    + entry.sketch.buffered_len() as u64
                    + entry.updater.pending().len() as u64
                    + entry.absorbed.stream_len();
            }
        }
        StoreStats {
            keys,
            stripes: self.stripes.len(),
            updates: self.updates.load(Relaxed),
            ingests: self.ingests.load(Relaxed),
            ingest_errors: self.ingest_errors.load(Relaxed),
            stream_len,
            bytes_out: self.bytes_out.load(Relaxed),
            bytes_in: self.bytes_in.load(Relaxed),
        }
    }
}

impl std::fmt::Debug for SketchStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SketchStore")
            .field("stripes", &stats.stripes)
            .field("keys", &stats.keys)
            .field("stream_len", &stats.stream_len)
            .field("k", &self.cfg.k)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store(stripes: usize) -> SketchStore {
        SketchStore::new(StoreConfig { stripes, k: 64, b: 4, seed: 1 })
    }

    #[test]
    fn empty_store_answers_nothing() {
        let store = small_store(4);
        assert!(store.is_empty());
        assert_eq!(store.query("nope", 0.5), None);
        assert_eq!(store.snapshot_bytes("nope"), None);
        assert_eq!(store.merged_query(&["a", "b"], 0.5), None);
        assert_eq!(store.stats().keys, 0);
    }

    #[test]
    fn update_then_query_sees_every_element() {
        let store = small_store(4);
        for i in 0..1000 {
            store.update("lat", i as f64);
        }
        // Exact accounting: levels + GS buffers + updater pending.
        let summary = store.summary_of("lat").unwrap();
        assert_eq!(summary.stream_len(), 1000);
        let med = store.query("lat", 0.5).unwrap();
        assert!((300.0..700.0).contains(&med), "median {med}");
    }

    #[test]
    fn stripe_count_normalizes_to_power_of_two() {
        assert_eq!(small_store(1).num_stripes(), 1);
        assert_eq!(small_store(5).num_stripes(), 8);
        assert_eq!(small_store(0).num_stripes(), 1);
    }

    #[test]
    fn keys_are_isolated() {
        let store = small_store(8);
        store.update_many("low", &(0..500).map(f64::from).collect::<Vec<_>>());
        store.update_many("high", &(1000..1500).map(f64::from).collect::<Vec<_>>());
        let low = store.query("low", 0.5).unwrap();
        let high = store.query("high", 0.5).unwrap();
        assert!(low < 600.0, "low median {low}");
        assert!(high >= 1000.0, "high median {high}");
    }

    #[test]
    fn snapshot_ingest_roundtrip_between_keys() {
        let store = small_store(4);
        store.update_many("a", &(0..2000).map(f64::from).collect::<Vec<_>>());
        let frame = store.snapshot_bytes("a").unwrap();
        let ingested = store.ingest_bytes("b", &frame).unwrap();
        assert_eq!(ingested, 2000);
        assert_eq!(store.summary_of("b").unwrap().stream_len(), 2000);
        let stats = store.stats();
        assert_eq!(stats.ingests, 1);
        assert_eq!(stats.bytes_in, frame.len() as u64);
    }

    #[test]
    fn bad_frame_is_rejected_and_counted() {
        let store = small_store(4);
        let err = store.ingest_bytes("x", b"garbage").unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. } | WireError::BadMagic { .. }));
        assert!(store.is_empty(), "failed ingest must not create the key");
        assert_eq!(store.stats().ingest_errors, 1);
    }

    #[test]
    fn merged_query_spans_keys() {
        let store = small_store(4);
        store.update_many("lo", &(0..5000).map(f64::from).collect::<Vec<_>>());
        store.update_many("hi", &(5000..10000).map(f64::from).collect::<Vec<_>>());
        let med = store.merged_query(&["lo", "hi"], 0.5).unwrap();
        assert!(
            (3500.0..6500.0).contains(&med),
            "union median {med} should sit near the key boundary"
        );
        assert_eq!(store.merged_summary(&["lo", "hi"]).stream_len(), 10_000);
    }

    #[test]
    fn rank_is_normalized() {
        let store = small_store(2);
        store.update_many("k", &(0..1000).map(f64::from).collect::<Vec<_>>());
        let r = store.rank("k", 500.0).unwrap();
        assert!((r - 0.5).abs() < 0.1, "rank {r}");
        assert_eq!(store.rank("absent", 1.0), None);
    }

    #[test]
    fn remove_and_len_track_keys() {
        let store = small_store(4);
        store.update("a", 1.0);
        store.update("b", 2.0);
        assert_eq!(store.len(), 2);
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.keys(), vec!["b".to_string()]);
    }

    #[test]
    fn concurrent_updates_across_keys_and_stripes() {
        let store = std::sync::Arc::new(small_store(8));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let store = store.clone();
                s.spawn(move || {
                    let key = format!("key{}", t % 4);
                    for i in 0..2000 {
                        store.update(&key, (t * 2000 + i) as f64);
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.updates, 16_000);
        assert_eq!(stats.stream_len, 16_000);
        assert_eq!(stats.keys, 4);
        let all: Vec<String> = store.keys();
        let med = store.merged_query(&all, 0.5).unwrap();
        assert!((2000.0..14_000.0).contains(&med), "median {med}");
    }

    #[test]
    fn stats_bytes_out_accumulates() {
        let store = small_store(2);
        store.update("a", 1.0);
        let n = store.snapshot_bytes("a").unwrap().len() as u64;
        store.snapshot_bytes("a").unwrap();
        assert_eq!(store.stats().bytes_out, 2 * n);
    }
}
