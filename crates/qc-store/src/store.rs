//! A sharded, keyed registry of live sketch engines.
//!
//! High-cardinality keyed aggregation is the dominant quantile-serving
//! workload (Gan et al., *Moment-Based Quantile Sketches for Efficient
//! High-Cardinality Aggregation Queries*): millions of named streams
//! ("latency by endpoint", "payload size by tenant") each need their own
//! sketch, plus cross-key and cross-process aggregation. [`SketchStore`]
//! is that layer:
//!
//! * keys are hashed onto a fixed array of stripes (power-of-two count),
//!   each stripe an **RwLock** around its own key map — writers on
//!   different stripes never contend, readers on the *same* stripe never
//!   contend with each other, and no lock is ever held across stripes;
//! * each key owns a live engine — any [`StoreEngine`] implementor; the
//!   default [`crate::engine::TieredEngine`] starts keys as
//!   compact sequential sketches and promotes them to full Quancurrent
//!   machinery under update pressure (see [`crate::engine`]);
//! * the store is backend-generic through the
//!   [`qc_common::engine`] traits: updates go through
//!   [`qc_common::engine::StreamIngest`], reads through
//!   [`qc_common::engine::MergeableSketch::to_summary`], and remote state
//!   through [`qc_common::engine::MergeableSketch::absorb_summary`] — so
//!   `query`/`merged_query` see every element ever handed to the store,
//!   local or ingested, with exact stream-length accounting.
//!
//! # Read path: versioned summary caching
//!
//! Materializing a key's summary is the expensive part of every read (a
//! three-way merge of quiescent state, unflushed tail, and absorbed remote
//! weight). The store therefore caches the last materialized
//! [`WeightedSummary`] per key, tagged with the engine
//! [`qc_common::engine::VersionedSketch::version`] that produced it:
//!
//! * **warm reads** (`query`, `rank`, `cdf`, `snapshot_bytes`,
//!   `merged_query`) take only the **shared** stripe lock, compare the
//!   engine version against the cache tag, and clone nothing but an
//!   `Arc<WeightedSummary>` — they never block each other and never
//!   rebuild;
//! * **misses** materialize under the same shared lock and publish the
//!   result for the next reader; the version is read **before**
//!   materializing, so a summary is never tagged newer than its
//!   contents;
//! * **exclusive writers** (`ingest_bytes`, `cool_down`, `remove`, the
//!   fallback write path) take the exclusive lock; **leased writers**
//!   (the shared write path below) mutate the engine under the shared
//!   lock but bump the engine version around every weight movement — so
//!   a summary materialized while a leased write was in flight carries a
//!   tag the write's completion bump supersedes, and no read ever serves
//!   a summary whose version matches the engine's *settled* state while
//!   missing weight that state accounts for.
//!
//! # Write path: leased per-thread writer handles
//!
//! The paper's writers never serialize — each thread fills a local buffer
//! and synchronizes only at Gather&Sort/DCAS points. The store mirrors
//! that through [`qc_common::engine::SharedIngest`]: each key carries a
//! small pool of leased writer handles tagged with a **generation**, and
//! `update_many` becomes a two-tier path:
//!
//! * **shared fast path** — for an existing key whose engine leases
//!   writers (hot/concurrent tiers), the batch is written through a
//!   pooled per-thread handle under only the **shared** stripe lock:
//!   N writers on one hot key synchronize inside the engine (the paper's
//!   propagation points), not on the stripe. Every fast-path call flushes
//!   its handle before returning it, so handles hold **zero weight while
//!   idle** and reads stay exact at quiescence;
//! * **exclusive slow path** — key creation, cold/sequential keys (whose
//!   exclusive writes are what drives tier promotion), and pool
//!   exhaustion fall back to the stripe write lock, byte-identical to the
//!   old behavior. [`StoreStats::shared_writes`] /
//!   [`StoreStats::fallback_writes`] count the split.
//!
//! Callers that keep a handle across calls (the serving layer's
//! per-connection lease cache) use [`SketchStore::lease_writer`] /
//! [`SketchStore::update_many_leased`] / [`SketchStore::return_lease`].
//! `remove`, demotion (`cool_down`), and re-creation each assign the key
//! a fresh generation from a store-wide counter, so a stale lease can
//! **never** write into a successor engine: every leased write validates
//! the generation under the same shared-lock hold as the write itself.
//! Conservation is exact by construction — a lease buffers weight only
//! inside a single (locked) write call, every such call ends in a flush,
//! and invalidation happens under the exclusive lock, which no write can
//! overlap.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use qc_common::bits::OrderedBits;
use qc_common::summary::{Summary, WeightedSummary};
use qc_telemetry::{Counter, EventKind, Gauge, LatencyRecorder, MetricsSnapshot, Registry};

use crate::engine::{StoreEngine, Tier, TieredEngine};
use crate::merge::merge_summaries;
use crate::persist::{
    self, CheckpointEntry, CheckpointStats, CommitSequencer, FsyncPolicy, GroupOutcome,
    PersistError, RecordOp, RecoveryReport, WaitError, Wal, WalOpRef,
};
use crate::window::{self, SealedWindow, WindowConfig, WindowPlan, WindowSnapshot, WindowState};
use crate::wire::{decode_summary, encode_summary, WireError};

/// Store construction parameters.
///
/// Built fluently from [`StoreConfig::default`]:
///
/// ```
/// use qc_store::StoreConfig;
///
/// let cfg = StoreConfig::default().stripes(8).k(128).b(4).promotion_threshold(1024);
/// assert_eq!(cfg.k, 128);
/// ```
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of lock stripes; rounded up to a power of two, minimum 1.
    pub stripes: usize,
    /// Per-sketch level size `k` (accuracy knob; see `qc_common::error`).
    pub k: usize,
    /// Per-sketch thread-local buffer size `b`. Small values keep per-key
    /// relaxation low — a keyed store amortizes over many keys, not many
    /// threads per key.
    pub b: usize,
    /// Base seed; each key derives its own deterministic seed from it.
    pub seed: u64,
    /// Cumulative per-key update count **past which** a tiered key
    /// promotes to the concurrent engine — promotion fires on the first
    /// update beyond the threshold (`0` promotes on the first update,
    /// `u64::MAX` pins keys cold). Ignored by non-tiered engines.
    pub promotion_threshold: u64,
    /// Per-key writer-handle pool capacity: at most this many leased
    /// writer handles exist per key (pooled + checked out). `0` disables
    /// the shared-lock write path entirely — every write takes the
    /// exclusive fallback, which is the pre-lease behavior (and the
    /// baseline the write benchmarks compare against).
    pub writer_pool: usize,
    /// Metrics registry the store records into. `None` (the default) makes
    /// the store create its own live [`Registry`]; pass a shared one to
    /// aggregate several subsystems (the server threads its store's
    /// registry through every layer), or `Arc::new(Registry::disabled())`
    /// to turn instrumentation into no-ops — in that mode the counter
    /// fields of [`StoreStats`] read zero (the sweep fields stay exact).
    pub telemetry: Option<Arc<Registry>>,
    /// Durable-log directory. `None` (the default) keeps the store purely
    /// in memory. A directory takes effect only through
    /// [`SketchStore::recover`], which replays whatever the directory
    /// holds and then logs every mutation into it; the plain constructors
    /// ([`SketchStore::new`], [`SketchStore::with_engine`]) ignore it, so
    /// they stay infallible.
    pub data_dir: Option<PathBuf>,
    /// When appended log frames reach disk (see [`FsyncPolicy`]).
    /// Irrelevant without [`StoreConfig::data_dir`].
    pub fsync: FsyncPolicy,
    /// How long a group-commit sync leader holds its election open
    /// before fsyncing, to let more concurrent writers ride the same
    /// sync. `Duration::ZERO` (the default) syncs immediately — groups
    /// then form only from writers that were already appending during
    /// the previous sync's disk wait, which is the latency-optimal
    /// setting. A small non-zero delay trades ack latency for fewer,
    /// larger groups (throughput under heavy concurrency).
    pub group_commit_delay: Duration,
    /// Whether durable writers share fsyncs through leader-based group
    /// commit (`true`, the default) or each [`FsyncPolicy::PerFrame`]
    /// append pays its own fsync inline under the append mutex
    /// (`false` — the pre-group-commit behavior, kept as the benchmark
    /// baseline; nothing else should use it). The baseline exists for
    /// `PerFrame` **only**: under `Interval`/`Off` durability still
    /// routes through the group-commit sequencer regardless of this
    /// flag, so `recover` debug-asserts that `false` is paired with
    /// `PerFrame`.
    pub wal_group_commit: bool,
    /// Time-windowed operation (see [`crate::window`]). `None` (the
    /// default) keeps every key a single unbounded stream — exactly the
    /// previous behavior. With a [`WindowConfig`], each key partitions
    /// its stream into window-aligned sub-sketches: timestamped writes
    /// ([`SketchStore::update_at`]) land in their event-time window,
    /// plain writes land in the key's current active window, and
    /// time-range reads ([`SketchStore::query_range`],
    /// [`SketchStore::merged_query_range`]) merge only the windows a
    /// range overlaps.
    pub window: Option<WindowConfig>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            stripes: 16,
            k: 256,
            b: 4,
            seed: 0x5eed_5704e,
            promotion_threshold: DEFAULT_PROMOTION_THRESHOLD,
            writer_pool: DEFAULT_WRITER_POOL,
            telemetry: None,
            data_dir: None,
            fsync: FsyncPolicy::PerFrame,
            group_commit_delay: Duration::ZERO,
            wal_group_commit: true,
            window: None,
        }
    }
}

/// Default per-key writer-handle pool capacity — sized to the serving
/// layer's default worker count, so every connection of a default server
/// can hold a lease on one hot key.
pub const DEFAULT_WRITER_POOL: usize = 8;

/// Default per-key promotion threshold: roughly where the concurrent
/// engine's fixed Gather&Sort footprint amortizes against the sequential
/// sketch's per-update cost.
pub const DEFAULT_PROMOTION_THRESHOLD: u64 = 4096;

impl StoreConfig {
    /// Set the number of lock stripes.
    pub fn stripes(mut self, stripes: usize) -> Self {
        self.stripes = stripes;
        self
    }

    /// Set the per-sketch level size `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the per-sketch thread-local buffer size `b`.
    pub fn b(mut self, b: usize) -> Self {
        self.b = b;
        self
    }

    /// Set the base seed keys derive their deterministic seeds from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the tiering promotion threshold (cumulative updates per key).
    pub fn promotion_threshold(mut self, threshold: u64) -> Self {
        self.promotion_threshold = threshold;
        self
    }

    /// Set the per-key writer-handle pool capacity (`0` disables the
    /// shared-lock write path).
    pub fn writer_pool(mut self, handles: usize) -> Self {
        self.writer_pool = handles;
        self
    }

    /// Record into a shared metrics registry (see [`StoreConfig::telemetry`]).
    pub fn telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Log mutations durably under `dir` (consumed by
    /// [`SketchStore::recover`]; see [`StoreConfig::data_dir`]).
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(dir.into());
        self
    }

    /// Set the durable-log fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Set the group-commit leader hold-off (see
    /// [`StoreConfig::group_commit_delay`]).
    pub fn group_commit_delay(mut self, delay: Duration) -> Self {
        self.group_commit_delay = delay;
        self
    }

    /// Enable or disable group commit (see
    /// [`StoreConfig::wal_group_commit`]; `false` is the benchmark
    /// baseline only, and only valid with [`FsyncPolicy::PerFrame`]).
    pub fn wal_group_commit(mut self, enabled: bool) -> Self {
        self.wal_group_commit = enabled;
        self
    }

    /// Partition every key's stream into time windows (see
    /// [`StoreConfig::window`] and [`crate::window`]).
    pub fn window(mut self, window: WindowConfig) -> Self {
        self.window = Some(window);
        self
    }
}

/// Store-wide statistics: a mix of **counter** fields (monotone, read
/// lock-free from telemetry counters) and **sweep** fields (recomputed by
/// walking the stripes under shared locks). See
/// [`StoreStats::consistency`] for the exact consistency model and the
/// invariants that hold for any single sample.
///
/// The tier fields (`cold_keys`, `hot_keys`, `retained`) and the fields
/// marked local-only describe the local process only and do **not** cross
/// the wire protocol — remote [`StoreStats`] decoded by `qc-server`
/// report them as zero, keeping the wire format byte-identical to
/// previous releases.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of resident keys. **Sweep**: one shared lock per stripe;
    /// exact per stripe, stripes sampled at slightly different times.
    pub keys: usize,
    /// Number of stripes. **Constant** (fixed at construction).
    pub stripes: usize,
    /// Total elements ingested via `update`/`update_many`. **Counter**,
    /// bumped under the same stripe-lock hold as the engine write, so a
    /// concurrent sweep can never observe `stream_len > updates` (weight
    /// in an engine but not in the counter).
    pub updates: u64,
    /// Total successfully ingested remote snapshots. **Counter**, bumped
    /// under the stripe write lock like `updates`.
    pub ingests: u64,
    /// Ingest attempts rejected with a [`WireError`]. **Counter**, bumped
    /// before the store is touched (a rejected frame changes nothing).
    pub ingest_errors: u64,
    /// Total stream length across all keys (local + absorbed). **Sweep**
    /// (same discipline as `keys`).
    pub stream_len: u64,
    /// Bytes produced by `snapshot_bytes`. **Counter**, lock-free.
    pub bytes_out: u64,
    /// Bytes accepted by `ingest_bytes`. **Counter**, under the write lock.
    pub bytes_in: u64,
    /// Keys currently on the sequential (cold) tier. **Sweep**.
    /// Local-only.
    pub cold_keys: usize,
    /// Keys currently on the concurrent (hot) tier. **Sweep**. Local-only.
    pub hot_keys: usize,
    /// Retained 64-bit words across all engines (memory proxy). **Sweep**.
    /// Local-only.
    pub retained: u64,
    /// Reads answered from a cached summary (shared lock + `Arc` clone).
    /// **Counter**, bumped before the read's `reads` bump. Local-only.
    pub cache_hits: u64,
    /// Reads that had to materialize a summary. **Counter**, bumped before
    /// the read's `reads` bump. Local-only.
    pub cache_misses: u64,
    /// Summary reads served (`summary_of` and everything built on it:
    /// `query`, `rank`, `cdf`, `snapshot_bytes`, `merged_query` per key).
    /// **Counter**, bumped after the read's hit-or-miss classification —
    /// so `cache_hits + cache_misses >= reads` holds for every sample
    /// (see [`StoreStats::consistency`]). Local-only.
    pub reads: u64,
    /// Write batches that rode the shared-lock fast path (a leased
    /// per-thread writer handle). **Counter**, bumped after `updates`
    /// within the same lock hold. Local-only.
    pub shared_writes: u64,
    /// Write batches that took the exclusive-lock fallback (key creation,
    /// cold-tier keys, exhausted pools, or `writer_pool == 0`).
    /// **Counter**, bumped after `updates` within the same lock hold.
    /// Local-only.
    pub fallback_writes: u64,
    /// Cold→hot tier promotions observed on the write path. **Counter**.
    /// Local-only.
    pub promotions: u64,
    /// Hot→cold demotions performed by `cool_down` sweeps. **Counter**.
    /// Local-only.
    pub demotions: u64,
    /// Keys removed via `remove`. **Counter**. Local-only.
    pub removals: u64,
    /// Active windows sealed into immutable summaries by timestamped
    /// writes rolling a key forward. **Counter**. Local-only. Zero
    /// without [`StoreConfig::window`].
    pub window_seals: u64,
    /// Sealed windows promoted into a coarser level by `cool_down`
    /// downsampling. **Counter**. Local-only.
    pub window_downsamples: u64,
    /// Sealed windows evicted past the retention horizon by `cool_down`
    /// — the one transition where weight leaves the store (after it,
    /// `stream_len` may read below `updates`). **Counter**. Local-only.
    pub window_evictions: u64,
    /// Timestamped batches dropped for arriving beyond the lateness
    /// bound. Dropped batches bump neither `updates` nor the batch
    /// counters and are never logged. **Counter**. Local-only.
    pub window_late_drops: u64,
    /// Resident windows (one active per windowed key, plus its sealed
    /// windows). **Sweep**. Local-only. Zero without
    /// [`StoreConfig::window`].
    pub windows: usize,
}

impl StoreStats {
    /// Check (and `debug_assert!`) the invariants that hold for **any
    /// single sample**, even one taken mid-flight under full contention.
    ///
    /// # Consistency model
    ///
    /// `stats()` mixes three kinds of fields:
    ///
    /// * **Constant** — `stripes`: fixed at construction.
    /// * **Counter** — sharded relaxed atomics read lock-free. Each is
    ///   exact at quiescence; mid-flight samples never *under*-report a
    ///   completed operation. Counters bumped under a stripe-lock hold
    ///   (`updates`, `ingests`, `bytes_in`) are additionally ordered
    ///   against that stripe's engine state.
    /// * **Sweep** — `keys`, `stream_len`, `cold_keys`, `hot_keys`,
    ///   `retained`: recomputed by walking the stripes under shared locks,
    ///   one stripe at a time. Exact per stripe; concurrent writers on
    ///   *other* stripes may land between stripe visits, so a sweep field
    ///   is a consistent cut per stripe, not across the store.
    ///
    /// The cross-field invariants this method asserts:
    ///
    /// * `cache_hits + cache_misses >= reads` — every served read
    ///   classifies as a hit or miss *before* it counts as a read, and
    ///   `stats()` samples `reads` first, so the inequality can never
    ///   invert (it is an equality at quiescence).
    /// * `updates >= shared_writes + fallback_writes` — every counted
    ///   batch is non-empty and its element count lands in `updates`
    ///   before the batch counter moves.
    /// * `cold_keys + hot_keys == keys` — both sides come from the same
    ///   per-stripe lock holds of one sweep.
    ///
    /// Returns whether all invariants hold (also `debug_assert!`ed, which
    /// is how the contention suite keeps them honest).
    pub fn consistency(&self) -> bool {
        let reads_classified = self.cache_hits + self.cache_misses >= self.reads;
        debug_assert!(
            reads_classified,
            "cache_hits ({}) + cache_misses ({}) < reads ({})",
            self.cache_hits, self.cache_misses, self.reads
        );
        let batches_counted = self.updates >= self.shared_writes + self.fallback_writes;
        debug_assert!(
            batches_counted,
            "updates ({}) < shared_writes ({}) + fallback_writes ({})",
            self.updates, self.shared_writes, self.fallback_writes
        );
        let tiers_partition = self.cold_keys + self.hot_keys == self.keys;
        debug_assert!(
            tiers_partition,
            "cold_keys ({}) + hot_keys ({}) != keys ({})",
            self.cold_keys, self.hot_keys, self.keys
        );
        reads_classified && batches_counted && tiers_partition
    }
}

/// A writer lease checked out of a key's pool with
/// [`SketchStore::lease_writer`]: an owned per-thread handle plus the
/// generation tag it was minted under.
///
/// The lease is only usable through the store
/// ([`SketchStore::update_many_leased`]), which re-validates the
/// generation under the shared stripe lock on every call — so holding a
/// lease across requests is safe against concurrent `remove`, demotion,
/// and re-creation of the key. A lease holds **no buffered weight**
/// between calls (every leased write ends in a flush); dropping one, even
/// a stale one, never loses stream weight. Dropping also returns the
/// handle to the key's pool when the generation still matches (a weak
/// back-reference, checked atomically with the pool's own generation), so
/// a lease abandoned on a panic or forgotten by a caller cannot pin one
/// of the key's [`StoreConfig::writer_pool`] mint slots forever.
pub struct WriterLease<T> {
    generation: u64,
    handle: Option<Box<dyn qc_common::engine::StreamIngest<T> + Send>>,
    pool: std::sync::Weak<Mutex<WriterPool<T>>>,
}

impl<T> WriterLease<T> {
    /// The key generation this lease was minted under (diagnostics).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl<T> Drop for WriterLease<T> {
    fn drop(&mut self) {
        let (Some(handle), Some(pool)) = (self.handle.take(), self.pool.upgrade()) else {
            // Key removed (pool deallocated) or handle already returned:
            // nothing to give back — the handle holds no weight.
            return;
        };
        let mut pool = pool.lock().unwrap();
        if pool.generation == self.generation {
            // Flushed by the lease invariant; reusable as-is.
            pool.idle.push(handle);
        }
        // Stale: the generation reset already reclaimed our mint slot.
    }
}

impl<T> std::fmt::Debug for WriterLease<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterLease").field("generation", &self.generation).finish()
    }
}

/// A leased write was rejected because the lease no longer matches the
/// key's live engine (the key was removed, demoted, or re-created since
/// the lease was minted). **No weight was written.** Drop the lease and
/// fall back to [`SketchStore::update_many`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleLease;

impl std::fmt::Display for StaleLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("writer lease does not match the key's current generation")
    }
}

impl std::error::Error for StaleLease {}

/// One key's slot in a stripe map: the live engine, the cached
/// materialization of its summary, and the leased-writer pool.
struct KeyEntry<T, E> {
    engine: E,
    /// Lease generation: every leased write validates its tag against
    /// this under the shared stripe lock. Assigned from the store-wide
    /// counter at creation and re-assigned (under the write lock) by any
    /// invalidation — tier demotion today; removal retires the entry and
    /// with it the generation, so a re-created key never reuses one.
    /// Mirrored into [`WriterPool::generation`] (kept in sync under the
    /// same write-lock sections) for lease-drop-time validation.
    generation: u64,
    /// Last materialized summary, tagged with the engine version that
    /// produced it. The inner mutex guards only the tag-compare /
    /// `Arc`-clone critical section (a handful of instructions), so
    /// readers sharing the stripe lock barely serialize on it.
    cache: Mutex<Option<CachedSummary>>,
    /// Idle leased writer handles plus the mint count; the mutex guards
    /// only push/pop (writes run **outside** it, so checkouts never
    /// serialize the data path). `Arc`ed so outstanding [`WriterLease`]s
    /// can return their handles on drop through a weak back-reference.
    pool: Arc<Mutex<WriterPool<T>>>,
    /// Highest log LSN applied to this key, advanced (`fetch_max`) under
    /// the same stripe-lock hold as the engine write it tags. A
    /// checkpoint reads it under the exclusive lock — no write in flight —
    /// so `(summary, last_lsn)` is a consistent pair: replay applies a
    /// record to this key iff its LSN is above the checkpointed value.
    /// Zero while the store has no durable log.
    last_lsn: AtomicU64,
    /// Window bookkeeping, present iff [`StoreConfig::window`] is set.
    /// The inner mutex guards only id comparisons and `Arc` clones on
    /// the shared paths (the same discipline as `cache`); every
    /// *transition* — seal, late merge, downsample, evict, restore —
    /// runs under the exclusive stripe lock, so shared-lock holders can
    /// rely on `active_id` not moving while they hold the stripe.
    windows: Option<Box<Mutex<WindowState>>>,
}

struct CachedSummary {
    version: u64,
    summary: Arc<WeightedSummary>,
}

struct WriterPool<T> {
    /// Mirror of [`KeyEntry::generation`], so a dropping lease can
    /// validate atomically against concurrent invalidation without the
    /// stripe lock.
    generation: u64,
    /// Handles returned after a flush — they hold no weight while idle.
    idle: Vec<Box<dyn qc_common::engine::StreamIngest<T> + Send>>,
    /// Handles minted this generation (idle + checked out), capped by
    /// [`StoreConfig::writer_pool`].
    minted: usize,
}

impl<T: OrderedBits, E: StoreEngine<T>> KeyEntry<T, E> {
    fn new(engine: E, generation: u64, windowed: bool) -> Self {
        KeyEntry {
            engine,
            generation,
            cache: Mutex::new(None),
            pool: Arc::new(Mutex::new(WriterPool { generation, idle: Vec::new(), minted: 0 })),
            last_lsn: AtomicU64::new(0),
            windows: windowed.then(|| Box::new(Mutex::new(WindowState::default()))),
        }
    }

    /// The key's current active window id (0 when unwindowed). Callers
    /// hold the stripe lock; the brief mutex hold only orders against
    /// other shared-path peeks.
    fn active_wid(&self) -> u64 {
        self.windows.as_ref().map_or(0, |w| w.lock().unwrap().active_id)
    }

    /// Check a leased writer handle out of the pool (minting one from the
    /// engine if under the cap). `None` sends the caller to the
    /// exclusive-lock fallback. Runs under the shared stripe lock.
    fn checkout(&self, cap: usize) -> Option<Box<dyn qc_common::engine::StreamIngest<T> + Send>> {
        if cap == 0 {
            return None;
        }
        let mut pool = self.pool.lock().unwrap();
        if let Some(handle) = pool.idle.pop() {
            return Some(handle);
        }
        if pool.minted >= cap {
            return None;
        }
        let handle = self.engine.try_writer()?;
        pool.minted += 1;
        Some(handle)
    }

    /// Return a (flushed) handle to the pool. The caller holds the shared
    /// stripe lock, so the generation cannot have moved since checkout.
    fn give_back(&self, handle: Box<dyn qc_common::engine::StreamIngest<T> + Send>) {
        self.pool.lock().unwrap().idle.push(handle);
    }
}

/// One stripe: a reader-writer lock around the stripe's key map.
type Stripe<T, E> = RwLock<HashMap<String, KeyEntry<T, E>>>;

/// The store's instrument handles, registered once at construction (the
/// registry's get-or-register takes a mutex; hot paths must not pay it).
/// These **are** the store's statistics: [`SketchStore::stats`] reads the
/// same counters the telemetry snapshot exports, so the two can never
/// drift apart.
struct StoreInstruments {
    updates: Counter,
    ingests: Counter,
    ingest_errors: Counter,
    bytes_out: Counter,
    bytes_in: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    reads: Counter,
    shared_writes: Counter,
    fallback_writes: Counter,
    promotions: Counter,
    demotions: Counter,
    removals: Counter,
    /// Active windows sealed by rolling timestamped writes.
    window_seals: Counter,
    /// Sealed windows promoted a level by `cool_down` downsampling.
    window_downsamples: Counter,
    /// Sealed windows evicted past the retention horizon.
    window_evictions: Counter,
    /// Timestamped batches dropped beyond the lateness bound.
    window_late_drops: Counter,
    /// Resident windows (active + sealed), refreshed by each `cool_down`
    /// sweep.
    windows_resident: Gauge,
    /// Records appended to the durable log (zero without persistence).
    wal_appends: Counter,
    /// Frame bytes appended to the durable log (envelope included).
    wal_bytes: Counter,
    /// **Physical** fsyncs issued for the log — group-commit syncs,
    /// housekeeping/shutdown force syncs, and rotation seal syncs. With
    /// group commit, `wal_fsyncs ≤ wal_appends`, with equality only at
    /// concurrency 1.
    wal_fsyncs: Counter,
    /// Group commits: physical syncs that made at least one append newly
    /// durable (a sync whose LSNs a racing rotation already sealed moves
    /// `wal_fsyncs` but not this).
    wal_group_commits: Counter,
    /// Group-size distribution (appends newly covered per group commit),
    /// self-sketched: its stream length is `wal_group_commits` and its
    /// total weight is the durable watermark's movement, so
    /// `wal_group_commits × mean ≈ wal_durable_lsn`.
    wal_group_size: LatencyRecorder,
    /// The `durable_lsn` watermark: every append at or below it is on
    /// disk. At quiescence under [`FsyncPolicy::PerFrame`] this equals
    /// `wal_appends`.
    wal_durable_lsn: Gauge,
    /// Failed log appends/syncs/checkpoints — durability degraded, the
    /// store kept serving from memory.
    wal_errors: Counter,
    /// Checkpoints written (each seals, compacts, and prunes the log).
    wal_checkpoints: Counter,
    /// Wall-clock seconds per checkpoint pass, self-sketched.
    checkpoint_seconds: LatencyRecorder,
    /// Resident keys per stripe, maintained exactly under the stripe
    /// write lock (insert/remove are exclusive-path operations).
    stripe_keys: Vec<Gauge>,
}

impl StoreInstruments {
    fn register(registry: &Registry, stripes: usize) -> Self {
        StoreInstruments {
            updates: registry.counter("store_updates"),
            ingests: registry.counter("store_ingests"),
            ingest_errors: registry.counter("store_ingest_errors"),
            bytes_out: registry.counter("store_bytes_out"),
            bytes_in: registry.counter("store_bytes_in"),
            cache_hits: registry.counter("store_cache_hits"),
            cache_misses: registry.counter("store_cache_misses"),
            reads: registry.counter("store_reads"),
            shared_writes: registry.counter("store_shared_writes"),
            fallback_writes: registry.counter("store_fallback_writes"),
            promotions: registry.counter("store_promotions"),
            demotions: registry.counter("store_demotions"),
            removals: registry.counter("store_removals"),
            window_seals: registry.counter("store_window_seals"),
            window_downsamples: registry.counter("store_window_downsamples"),
            window_evictions: registry.counter("store_window_evictions"),
            window_late_drops: registry.counter("store_window_late_drops"),
            windows_resident: registry.gauge("store_windows_resident"),
            wal_appends: registry.counter("wal_appends"),
            wal_bytes: registry.counter("wal_bytes"),
            wal_fsyncs: registry.counter("wal_fsyncs"),
            wal_group_commits: registry.counter("wal_group_commits"),
            wal_group_size: registry.latency("wal_group_size"),
            wal_durable_lsn: registry.gauge("wal_durable_lsn"),
            wal_errors: registry.counter("wal_errors"),
            wal_checkpoints: registry.counter("wal_checkpoints"),
            checkpoint_seconds: registry.latency("checkpoint_seconds"),
            stripe_keys: (0..stripes)
                .map(|i| registry.gauge(&format!("store_stripe_keys_{i:02}")))
                .collect(),
        }
    }
}

/// Sharded keyed sketch store, generic over the element type and the
/// per-key engine; see the [module docs](self).
///
/// The defaults — `SketchStore` with no parameters — give an `f64` store
/// over the tiered engine, which is wire- and API-compatible with the
/// previous `Quancurrent`-only store.
pub struct SketchStore<T: OrderedBits = f64, E: StoreEngine<T> = TieredEngine<T>> {
    stripes: Box<[Stripe<T, E>]>,
    mask: usize,
    cfg: StoreConfig,
    /// Normalized window arithmetic, derived once from
    /// [`StoreConfig::window`] (`None` keeps every key unwindowed).
    window_plan: Option<WindowPlan>,
    /// The metrics registry: either the one [`StoreConfig::telemetry`]
    /// shares across subsystems, or a private live one.
    registry: Arc<Registry>,
    /// Registered instrument handles — these back [`SketchStore::stats`].
    instruments: StoreInstruments,
    /// Store-wide lease-generation source: strictly increasing, never
    /// reused, so a stale lease can never collide with a successor
    /// engine's tag.
    lease_generation: AtomicU64,
    /// The durable log, when this store was built by
    /// [`SketchStore::recover`] with a data directory. `None` everywhere
    /// else, which makes every logging hook a no-op — including during
    /// recovery replay itself, which runs before this is attached.
    persistence: Option<Persistence>,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

/// Live durability state: the open log behind its append mutex, plus the
/// group-commit sequencer that grants durability after the append.
///
/// **Lock order** (outermost first): stripe lock → `wal` mutex →
/// `commit`'s internal state mutex (leaf). Every appender takes the log
/// mutex while already holding a stripe lock (shared or exclusive) — so
/// nothing may acquire a stripe lock while holding the log mutex, and
/// nothing may acquire the log mutex while holding the commit state
/// (the sync leader re-takes the log mutex only *after* dropping it; see
/// [`CommitSequencer`]). The **fsync itself runs with no lock held at
/// all** — not the stripe lock, not the append mutex: appends and reads
/// proceed at full speed while a group's disk wait is in flight, which
/// is the entire point of the split. [`SketchStore::checkpoint`] rotates
/// under a brief `wal` hold and seal-fsyncs outside every lock, with
/// `ckpt` serializing whole passes.
struct Persistence {
    wal: Mutex<Wal>,
    /// Grants durability: the `durable_lsn` watermark + leader election.
    commit: CommitSequencer,
    /// One checkpoint pass at a time (rotation creates the successor
    /// segment outside the append mutex, so two racing passes could
    /// otherwise interleave their two-step swaps).
    ckpt: Mutex<()>,
    dir: PathBuf,
}

impl<T: OrderedBits> Default for SketchStore<T, TieredEngine<T>> {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl<T: OrderedBits> SketchStore<T, TieredEngine<T>> {
    /// Build a store with the default (tiered) engine.
    ///
    /// Defined on the concrete default engine so plain
    /// `SketchStore::new(cfg)` keeps inferring the engine; use
    /// [`SketchStore::with_engine`] to pick another backend.
    pub fn new(cfg: StoreConfig) -> Self {
        Self::with_engine(cfg)
    }

    /// Recover a default-engine store from `cfg.data_dir` and keep
    /// logging into it; see [`SketchStore::recover_with_engine`].
    pub fn recover(cfg: StoreConfig) -> Result<(Self, RecoveryReport), PersistError> {
        Self::recover_with_engine(cfg)
    }
}

impl<T: OrderedBits, E: StoreEngine<T>> SketchStore<T, E> {
    /// Build a store over an explicit engine type:
    /// `SketchStore::<f64, SequentialEngine>::with_engine(cfg)`.
    pub fn with_engine(cfg: StoreConfig) -> Self {
        let stripes = cfg.stripes.max(1).next_power_of_two();
        let table = (0..stripes).map(|_| RwLock::new(HashMap::new())).collect();
        let registry = cfg.telemetry.clone().unwrap_or_else(|| Arc::new(Registry::new()));
        let instruments = StoreInstruments::register(&registry, stripes);
        let window_plan = cfg.window.as_ref().map(WindowPlan::new);
        SketchStore {
            stripes: table,
            mask: stripes - 1,
            cfg,
            window_plan,
            registry,
            instruments,
            lease_generation: AtomicU64::new(0),
            persistence: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Recover a store from `cfg.data_dir`, then keep logging into it.
    ///
    /// Replays the newest valid checkpoint (each entry ingested through
    /// the ordinary summary-merge path) and the log tail behind it
    /// (through the ordinary `update_many`/`ingest_bytes`/`remove`
    /// paths), stopping cleanly at the first torn or corrupt frame: the
    /// damage is reported as a typed [`RecoveryReport::corruption`] —
    /// never a panic — the torn tail is physically truncated away, and a
    /// fresh active segment is opened for new appends. With
    /// [`FsyncPolicy::PerFrame`] the recovered store conserves every
    /// key's weight exactly up to the last fsync'd frame.
    ///
    /// Without [`StoreConfig::data_dir`] this is `with_engine` plus an
    /// empty report: a purely in-memory store.
    ///
    /// Replay drives the ordinary write paths, so store counters
    /// (`updates`, `ingests`, …) include the replayed operations.
    pub fn recover_with_engine(cfg: StoreConfig) -> Result<(Self, RecoveryReport), PersistError> {
        let Some(dir) = cfg.data_dir.clone() else {
            return Ok((Self::with_engine(cfg), RecoveryReport::default()));
        };
        // The baseline flag only models pre-group-commit behavior under
        // PerFrame (inline fsync per append); Interval/Off route through
        // the sequencer regardless, so combining them with the flag off
        // would benchmark a configuration that doesn't exist.
        debug_assert!(
            cfg.wal_group_commit || matches!(cfg.fsync, FsyncPolicy::PerFrame),
            "wal_group_commit=false is the PerFrame benchmark baseline only; \
             Interval/Off always use the group-commit sequencer"
        );
        let recovered = persist::recover_dir(&dir)?;
        // Build with persistence unattached: replay below runs through the
        // public write paths without re-logging itself.
        let mut store = Self::with_engine(cfg);
        let mut report = recovered.report;
        // Per-key replay floor: a record applies iff its LSN is above the
        // checkpoint's floor for that key (records at or below it are
        // already inside the checkpointed summary).
        let mut floors: HashMap<String, u64> = HashMap::new();
        if let Some((_seq, entries)) = &recovered.checkpoint {
            for entry in entries {
                // The checkpoint decoder validated every embedded summary,
                // so this ingest cannot fail on a well-typed path.
                if store.ingest_bytes(&entry.key, &entry.summary).is_ok() {
                    store.restore_window_state(entry);
                    store.note_applied_lsn(&entry.key, entry.lsn);
                    floors.insert(entry.key.clone(), entry.lsn);
                }
            }
        }
        for record in &recovered.records {
            if record.lsn <= floors.get(record.op.key()).copied().unwrap_or(0) {
                report.records_skipped += 1;
                continue;
            }
            match &record.op {
                RecordOp::UpdateMany { key, value_bits, window } => {
                    let values: Vec<T> =
                        value_bits.iter().map(|&bits| T::from_ordered_bits(bits)).collect();
                    // Replay by logged window id, not by timestamp: the
                    // record lands in the exact window it was applied to.
                    // A windowed log replayed into an unwindowed store
                    // collapses into the flat stream, conserving weight.
                    match store.window_plan {
                        Some(plan) => store.update_wid(key, *window, &values, plan),
                        None => store.update_many(key, &values),
                    }
                    store.note_applied_lsn(key, record.lsn);
                }
                RecordOp::Ingest { key, frame } => {
                    // Validated at scan time; a failure here would mean the
                    // scan and the store disagree on the wire format.
                    if store.ingest_bytes(key, frame).is_ok() {
                        store.note_applied_lsn(key, record.lsn);
                    }
                }
                RecordOp::Remove { key } => {
                    store.remove(key);
                }
            }
            report.records_applied += 1;
        }
        let wal = Wal::create(&dir, recovered.next_seq, recovered.next_lsn)?;
        // Everything replayed from disk is durable by definition, so the
        // watermark starts at the last recovered LSN.
        let commit = CommitSequencer::new(wal.last_lsn());
        store.persistence =
            Some(Persistence { wal: Mutex::new(wal), commit, ckpt: Mutex::new(()), dir });
        store.registry.event(
            EventKind::Recovery,
            format!(
                "checkpoint={} keys={} segments={} applied={} skipped={} corrupt={}",
                report.checkpoint_seq.map_or_else(|| "none".into(), |s| s.to_string()),
                report.checkpoint_keys,
                report.segments_scanned,
                report.records_applied,
                report.records_skipped,
                report.corruption.is_some(),
            ),
        );
        Ok((store, report))
    }

    /// The metrics registry this store records into — the one passed via
    /// [`StoreConfig::telemetry`] or the store's own. The serving layer
    /// registers its instruments here so one snapshot covers both.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The durable data directory, when this store was built by
    /// [`SketchStore::recover`] with one configured.
    pub fn data_dir(&self) -> Option<&Path> {
        self.persistence.as_ref().map(|p| p.dir.as_path())
    }

    /// Reinstall a checkpoint entry's window bookkeeping (recovery only;
    /// the entry's active summary was just ingested). On an unwindowed
    /// store the sealed frames collapse into the flat stream instead, so
    /// a windowed checkpoint replayed without a window config still
    /// conserves every key's weight.
    fn restore_window_state(&self, entry: &CheckpointEntry) {
        if self.window_plan.is_none() {
            for (_, _, frame) in &entry.sealed {
                // Validated by the checkpoint decoder, like the active
                // summary above.
                let _ = self.ingest_bytes(&entry.key, frame);
            }
            return;
        }
        let mut map = self.stripe_of(&entry.key).write().unwrap();
        let Some(slot) = map.get_mut(&entry.key) else { return };
        let Some(cell) = slot.windows.as_mut() else { return };
        let state = cell.get_mut().unwrap();
        state.active_id = entry.active_wid;
        state.watermark = entry.watermark.max(entry.active_wid);
        state.sealed.clear();
        for (start, level, frame) in &entry.sealed {
            if let Ok(summary) = decode_summary(frame) {
                state
                    .sealed
                    .insert(*start, SealedWindow { level: *level, summary: Arc::new(summary) });
            }
        }
    }

    /// Advance a key's applied-LSN watermark (recovery replay only; live
    /// appends advance it inside [`SketchStore::log_op`]).
    fn note_applied_lsn(&self, key: &str, lsn: u64) {
        let map = self.stripe_of(key).read().unwrap();
        if let Some(entry) = map.get(key) {
            entry.last_lsn.fetch_max(lsn, Relaxed);
        }
    }

    /// Append an update batch to the durable log, tagged with the window
    /// it was applied to (always 0 on unwindowed stores). No-op without
    /// persistence; otherwise the caller MUST hold the key's stripe lock
    /// (shared or exclusive) across this call so per-key log order
    /// matches per-key apply order.
    ///
    /// Returns the append's durability ticket — the assigned LSN — to be
    /// redeemed through [`SketchStore::finish_log`] **after** the stripe
    /// lock is released (no fsync ever runs under a stripe lock).
    /// `None` means nothing to wait for: no persistence, append failure
    /// (already counted), or a policy that synced inline.
    #[must_use]
    fn log_update(
        &self,
        key: &str,
        window: u64,
        values: &[T],
        last_lsn: &AtomicU64,
    ) -> Option<u64> {
        self.persistence.as_ref()?;
        let bits: Vec<u64> = values.iter().map(|v| v.to_ordered_bits()).collect();
        self.log_op(Some(last_lsn), WalOpRef::UpdateMany { key, value_bits: &bits, window })
    }

    /// Append one record to the durable log (no-op without persistence),
    /// returning its durability ticket (see [`SketchStore::log_update`]
    /// for the contract). An I/O failure degrades durability, not
    /// service: it is counted, evented, and the log is poisoned so later
    /// checkpoints do not compact away segments that no longer cover the
    /// store — and so every parked durable waiter wakes with the error
    /// instead of hanging.
    #[must_use]
    fn log_op(&self, last_lsn: Option<&AtomicU64>, op: WalOpRef<'_>) -> Option<u64> {
        let Some(p) = &self.persistence else { return None };
        let mut wal = p.wal.lock().unwrap();
        match wal.append(&op) {
            Ok(outcome) => {
                self.instruments.wal_appends.incr();
                self.instruments.wal_bytes.add(outcome.bytes);
                if let Some(last_lsn) = last_lsn {
                    last_lsn.fetch_max(outcome.lsn, Relaxed);
                }
                if !self.cfg.wal_group_commit && matches!(self.cfg.fsync, FsyncPolicy::PerFrame) {
                    // Benchmark baseline: pay the fsync inline, under the
                    // append mutex (and the caller's stripe lock) — the
                    // pre-group-commit behavior the bench compares
                    // against. No ticket: durability already settled.
                    match wal.sync_inline() {
                        Ok(()) => self.instruments.wal_fsyncs.incr(),
                        Err(e) => {
                            wal.poisoned = true;
                            drop(wal);
                            p.commit.poison();
                            self.instruments.wal_errors.incr();
                            self.registry.event(EventKind::WalError, e.to_string());
                        }
                    }
                    return None;
                }
                Some(outcome.lsn)
            }
            Err(e) => {
                wal.poisoned = true;
                drop(wal);
                p.commit.poison();
                self.instruments.wal_errors.incr();
                self.registry.event(EventKind::WalError, e.to_string());
                None
            }
        }
    }

    /// Redeem a durability ticket from [`SketchStore::log_update`] /
    /// [`SketchStore::log_op`]: block until the append is durable under
    /// the store's fsync policy. **Must be called with no stripe lock
    /// held** — this is where the disk wait happens, amortized across
    /// every concurrent writer by the [`CommitSequencer`].
    fn finish_log(&self, ticket: Option<u64>) {
        let Some(lsn) = ticket else { return };
        let Some(p) = &self.persistence else { return };
        match self.cfg.fsync {
            FsyncPolicy::PerFrame => {
                let result = p.commit.wait_durable(lsn, &p.wal, self.cfg.group_commit_delay);
                self.observe_group(result);
            }
            FsyncPolicy::Interval(every) => {
                // The interval check lives here, on the sync path: the
                // append mutex never pays it, and appenders racing past
                // a due interval coalesce into one sync.
                if p.commit.interval_due(every, lsn) {
                    let result = p.commit.wait_durable(lsn, &p.wal, Duration::ZERO);
                    self.observe_group(result);
                }
            }
            FsyncPolicy::Off => {}
        }
    }

    /// Record the outcome of a group-commit wait. `Ok(Some)` means this
    /// caller led a physical sync and owns its telemetry; followers
    /// (`Ok(None)`) and victims of someone else's failure (`Poisoned`,
    /// counted by the poisoner) record nothing.
    fn observe_group(&self, result: Result<Option<GroupOutcome>, WaitError>) {
        match result {
            Ok(Some(outcome)) => {
                self.instruments.wal_fsyncs.incr();
                if outcome.group > 0 {
                    self.instruments.wal_durable_lsn.set(outcome.covered as i64);
                    self.instruments.wal_group_commits.incr();
                    self.instruments.wal_group_size.record(outcome.group as f64);
                }
            }
            Ok(None) => {}
            Err(WaitError::Io(e)) => {
                self.instruments.wal_errors.incr();
                self.registry.event(EventKind::WalError, e.to_string());
            }
            Err(WaitError::Poisoned) => {}
        }
    }

    /// Flush the durable log's buffered tail to disk: one coalesced
    /// group commit covering everything appended so far, under **any**
    /// fsync policy. Returns whether a physical sync ran (`false` when
    /// the log was already clean, the store has no persistence, or the
    /// log is poisoned).
    ///
    /// Clean shutdown calls this — directly, via the serving layer's
    /// stop path, or through the store's own `Drop` — so `Interval` and
    /// `Off` stores lose nothing that was acked before a *graceful*
    /// exit. Housekeeping sweeps ride the same path.
    pub fn sync(&self) -> bool {
        let Some(p) = &self.persistence else { return false };
        let result = p.commit.force_sync(&p.wal);
        let synced = matches!(result, Ok(Some(_)));
        self.observe_group(result);
        synced
    }

    /// The next never-before-used lease generation.
    fn next_generation(&self) -> u64 {
        self.lease_generation.fetch_add(1, Relaxed)
    }

    /// The store's configuration (stripe count already normalized).
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Number of stripes (power of two).
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_index(&self, key: &str) -> usize {
        // FNV-1a over the key bytes; stripe count is a power of two.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Fold the high bits in so the low-bit mask sees the whole hash.
        ((h ^ (h >> 32)) as usize) & self.mask
    }

    fn stripe_of(&self, key: &str) -> &Stripe<T, E> {
        &self.stripes[self.stripe_index(key)]
    }

    fn key_seed(&self, key: &str) -> u64 {
        // Distinct deterministic seeds per key, derived FNV-style.
        let mut h = self.cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in key.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Feed one value into `key`'s engine, creating the key on first use.
    pub fn update(&self, key: &str, value: T) {
        self.update_many(key, &[value]);
    }

    /// Feed a batch of values into `key` under a single lock acquisition —
    /// the **shared** stripe lock when the key already exists and its
    /// engine leases writer handles (see the
    /// [write path](self#write-path-leased-per-thread-writer-handles)),
    /// the exclusive lock otherwise.
    ///
    /// Nothing happens for an empty batch: no key is created and no
    /// counter moves.
    pub fn update_many(&self, key: &str, values: &[T]) {
        if values.is_empty() {
            return;
        }
        // Shared fast path: hot-key writers synchronize only inside the
        // engine (the paper's Gather&Sort/DCAS points), never on the
        // stripe.
        let fast = {
            let map = self.stripe_of(key).read().unwrap();
            let checked_out = map
                .get(key)
                .and_then(|entry| entry.checkout(self.cfg.writer_pool).map(|h| (entry, h)));
            match checked_out {
                Some((entry, mut handle)) => {
                    // Count before writing (the write is infallible from
                    // here): a concurrent `stats()` sweep sharing the
                    // stripe lock must never observe engine weight not
                    // yet in `updates`.
                    self.instruments.updates.add(values.len() as u64);
                    self.instruments.shared_writes.incr();
                    handle.update_many(values);
                    // Flush before the handle goes idle: pooled handles
                    // hold zero weight, so reads are exact at quiescence
                    // and invalidation can never strand buffered weight.
                    handle.flush();
                    // Log under this same shared-lock hold: a checkpoint
                    // (exclusive) can then never capture weight whose
                    // record is not yet sequenced, and per-key log order
                    // matches apply order. The active window id cannot
                    // move while we hold the stripe shared (transitions
                    // are exclusive-path), so the tag is exact. The
                    // durable *wait* happens below, lock free.
                    let ticket = self.log_update(key, entry.active_wid(), values, &entry.last_lsn);
                    entry.give_back(handle);
                    Some(ticket)
                }
                None => None,
            }
        };
        if let Some(ticket) = fast {
            self.finish_log(ticket);
            return;
        }
        // Exclusive slow path: key creation, cold-tier keys (whose
        // `&mut` updates drive promotion pressure), exhausted pools.
        let stripe_ix = self.stripe_index(key);
        let mut map = self.stripes[stripe_ix].write().unwrap();
        // Probe before inserting: the steady state must not allocate a
        // `String` per call just to use the entry API.
        if !map.contains_key(key) {
            map.insert(
                key.to_string(),
                KeyEntry::new(
                    E::build(&self.cfg, self.key_seed(key)),
                    self.next_generation(),
                    self.cfg.window.is_some(),
                ),
            );
            self.instruments.stripe_keys[stripe_ix].inc();
        }
        let entry = map.get_mut(key).expect("entry just ensured");
        // Promotion fires inside the engine on update pressure; observe it
        // as a tier flip around the write (exclusive path only — leased
        // writes require an already-hot engine).
        let tier_before = entry.engine.tier();
        entry.engine.update_many(values);
        // Count while still holding the stripe lock: bumping after the
        // drop let `stats()` observe engine weight not yet in `updates`
        // (`stream_len > updates` mid-flight, under-reported counters at
        // shutdown barriers).
        self.instruments.updates.add(values.len() as u64);
        self.instruments.fallback_writes.incr();
        let ticket = self.log_update(key, entry.active_wid(), values, &entry.last_lsn);
        if tier_before == Tier::Sequential && entry.engine.tier() == Tier::Concurrent {
            self.instruments.promotions.incr();
            self.registry.event(EventKind::Promotion, format!("key={key}"));
        }
        // Durable wait after the stripe lock is gone: concurrent writers
        // on this stripe proceed while our group's fsync is in flight.
        drop(map);
        self.finish_log(ticket);
    }

    /// Feed a timestamped batch into the window holding `ts_ms` (an
    /// event-time timestamp in milliseconds — the store keeps no wall
    /// clock of its own; see [`crate::window`]).
    ///
    /// * A timestamp in the key's **active window** rides the same
    ///   shared-lock leased write path as [`SketchStore::update_many`].
    /// * A timestamp **ahead** of the active window rolls the key
    ///   forward: the live engine seals into an immutable summary for the
    ///   old window and a fresh engine opens for the new one (outstanding
    ///   writer leases are retired, exactly like tier demotion).
    /// * A timestamp **behind** the active window is late: within
    ///   [`WindowConfig::lateness`] of the key's watermark it merges into
    ///   the sealed window covering it; beyond that bound the batch is
    ///   dropped and counted ([`StoreStats::window_late_drops`]), never
    ///   written and never logged.
    ///
    /// Without [`StoreConfig::window`] this is exactly
    /// [`SketchStore::update_many`] — the timestamp is ignored.
    pub fn update_at(&self, key: &str, ts_ms: u64, values: &[T]) {
        let Some(plan) = self.window_plan else {
            self.update_many(key, values);
            return;
        };
        self.update_wid(key, plan.window_id(ts_ms), values, plan);
    }

    /// [`SketchStore::update_at`] after timestamp→window-id resolution.
    /// Recovery replay calls this directly with the logged window id, so
    /// replayed batches land in the exact window they were applied to —
    /// no timestamp reconstruction, no drift.
    fn update_wid(&self, key: &str, wid: u64, values: &[T], plan: WindowPlan) {
        if values.is_empty() {
            return;
        }
        // Shared fast path: the batch targets the current active window
        // of an existing hot key. The active id cannot move while we hold
        // the stripe shared (every window transition runs under the
        // exclusive lock), so the brief mutex peek stays valid across the
        // whole write.
        let fast = {
            let map = self.stripe_of(key).read().unwrap();
            let checked_out = map.get(key).and_then(|entry| {
                let is_active =
                    entry.windows.as_ref().is_some_and(|w| w.lock().unwrap().active_id == wid);
                if !is_active {
                    return None;
                }
                entry.checkout(self.cfg.writer_pool).map(|h| (entry, h))
            });
            match checked_out {
                Some((entry, mut handle)) => {
                    // Same ordering discipline as `update_many`: count,
                    // write, flush, log — all under the shared hold; the
                    // durable wait below, lock free.
                    self.instruments.updates.add(values.len() as u64);
                    self.instruments.shared_writes.incr();
                    handle.update_many(values);
                    handle.flush();
                    let ticket = self.log_update(key, wid, values, &entry.last_lsn);
                    entry.give_back(handle);
                    Some(ticket)
                }
                None => None,
            }
        };
        if let Some(ticket) = fast {
            self.finish_log(ticket);
            return;
        }
        // Exclusive path: key creation, window transitions (roll forward
        // or late merge), cold-tier keys, exhausted pools.
        let stripe_ix = self.stripe_index(key);
        let mut map = self.stripes[stripe_ix].write().unwrap();
        if !map.contains_key(key) {
            let mut entry = KeyEntry::new(
                E::build(&self.cfg, self.key_seed(key)),
                self.next_generation(),
                true,
            );
            let state = entry.windows.as_mut().expect("built windowed").get_mut().unwrap();
            state.active_id = wid;
            state.watermark = wid;
            map.insert(key.to_string(), entry);
            self.instruments.stripe_keys[stripe_ix].inc();
        }
        let entry = map.get_mut(key).expect("entry just ensured");
        let (active_id, watermark) = {
            let state = entry
                .windows
                .as_mut()
                .expect("windowed keys carry window state")
                .get_mut()
                .unwrap();
            (state.active_id, state.watermark)
        };
        if wid >= active_id {
            if wid > active_id {
                // Roll forward: seal the live engine's contents for the
                // old active window, then open a fresh engine for the new
                // one. The old engine's leases and cached summary die
                // with it — the same retirement as tier demotion, so a
                // stale lease can never write into the new window.
                if entry.engine.stream_len() > 0 {
                    let sealed = entry.engine.to_summary();
                    let seed = self.key_seed(key);
                    let state = entry.windows.as_mut().expect("windowed").get_mut().unwrap();
                    Self::seal_into(state, active_id, sealed, self.cfg.k, seed);
                    self.instruments.window_seals.incr();
                }
                entry.engine = E::build(&self.cfg, self.key_seed(key));
                entry.generation = self.next_generation();
                {
                    let mut pool = entry.pool.lock().unwrap();
                    pool.generation = entry.generation;
                    pool.idle.clear();
                    pool.minted = 0;
                }
                *entry.cache.get_mut().unwrap() = None;
                let state = entry.windows.as_mut().expect("windowed").get_mut().unwrap();
                state.active_id = wid;
                state.watermark = state.watermark.max(wid);
            }
            // Active-window write, identical to `update_many`'s fallback
            // path (including promotion observation).
            let tier_before = entry.engine.tier();
            entry.engine.update_many(values);
            self.instruments.updates.add(values.len() as u64);
            self.instruments.fallback_writes.incr();
            let ticket = self.log_update(key, wid, values, &entry.last_lsn);
            if tier_before == Tier::Sequential && entry.engine.tier() == Tier::Concurrent {
                self.instruments.promotions.incr();
                self.registry.event(EventKind::Promotion, format!("key={key}"));
            }
            drop(map);
            self.finish_log(ticket);
            return;
        }
        // Late value: behind the active window.
        if !plan.admissible(watermark, wid) {
            // Dropped and counted — never written, never logged, so
            // recovery replay (which sees only logged records) drives the
            // same watermark trajectory and admits exactly the same set.
            self.instruments.window_late_drops.incr();
            return;
        }
        // Admissible: summarize the batch through a throwaway engine and
        // merge it, exact-weight, into the sealed window covering `wid`
        // (or open a new level-0 one).
        let mut tmp = E::build(&self.cfg, self.key_seed(key));
        tmp.update_many(values);
        let addition = tmp.to_summary();
        let seed = self.key_seed(key);
        {
            let state = entry.windows.as_mut().expect("windowed").get_mut().unwrap();
            Self::seal_into(state, wid, addition, self.cfg.k, seed);
        }
        self.instruments.updates.add(values.len() as u64);
        self.instruments.fallback_writes.incr();
        let ticket = self.log_update(key, wid, values, &entry.last_lsn);
        drop(map);
        self.finish_log(ticket);
    }

    /// Merge a summary into `state`'s sealed set at level-0 slot `start`:
    /// into the (possibly coarse) window already covering the slot via
    /// exact-weight [`merge_summaries`], or as a fresh level-0 window.
    fn seal_into(
        state: &mut WindowState,
        start: u64,
        summary: WeightedSummary,
        k: usize,
        seed: u64,
    ) {
        match state.covering(start) {
            Some(slot) => {
                let win = state.sealed.get_mut(&slot).expect("covering slot present");
                win.summary = Arc::new(merge_summaries([win.summary.as_ref(), &summary], k, seed));
            }
            None => {
                state.sealed.insert(start, SealedWindow { level: 0, summary: Arc::new(summary) });
            }
        }
    }

    /// Check a writer lease out of `key`'s pool, for callers that reuse a
    /// per-thread handle across many calls (the serving layer caches one
    /// per connection per hot key). `None` if the key is absent, its
    /// engine declines shared writers (cold/sequential tiers), or the
    /// pool is at capacity — fall back to [`SketchStore::update_many`].
    pub fn lease_writer(&self, key: &str) -> Option<WriterLease<T>> {
        let map = self.stripe_of(key).read().unwrap();
        let entry = map.get(key)?;
        let handle = entry.checkout(self.cfg.writer_pool)?;
        Some(WriterLease {
            generation: entry.generation,
            handle: Some(handle),
            pool: Arc::downgrade(&entry.pool),
        })
    }

    /// Feed a batch through a held lease under the shared stripe lock.
    ///
    /// Validates the lease generation under the same lock hold as the
    /// write, so a stale lease — the key was removed, demoted, or
    /// re-created — is rejected **before** any element moves:
    /// [`StaleLease`] means no weight was written and no counter was
    /// bumped; drop the lease and retry through
    /// [`SketchStore::update_many`]. The handle is flushed before the
    /// call returns, so the write is fully engine-visible.
    pub fn update_many_leased(
        &self,
        key: &str,
        lease: &mut WriterLease<T>,
        values: &[T],
    ) -> Result<(), StaleLease> {
        let map = self.stripe_of(key).read().unwrap();
        let entry = map.get(key).ok_or(StaleLease)?;
        if entry.generation != lease.generation {
            return Err(StaleLease);
        }
        if values.is_empty() {
            return Ok(());
        }
        // Same ordering discipline as the pooled fast path: count first,
        // then write + flush (infallible), all under the shared lock.
        self.instruments.updates.add(values.len() as u64);
        self.instruments.shared_writes.incr();
        let handle = lease.handle.as_mut().expect("lease handle present until drop");
        handle.update_many(values);
        handle.flush();
        let ticket = self.log_update(key, entry.active_wid(), values, &entry.last_lsn);
        drop(map);
        self.finish_log(ticket);
        Ok(())
    }

    /// Return a lease to `key`'s pool. Equivalent to dropping it — the
    /// lease's own drop returns the handle through its weak pool
    /// back-reference when the generation still matches, and a stale
    /// lease (generation moved, key gone) is discarded; it holds no
    /// weight by the lease invariant, so nothing is lost either way.
    pub fn return_lease(&self, key: &str, lease: WriterLease<T>) {
        let _ = key;
        drop(lease);
    }

    /// φ-quantile estimate over everything `key` has seen (local updates
    /// and ingested snapshots). `None` if the key is absent or empty.
    pub fn query(&self, key: &str, phi: f64) -> Option<T> {
        self.summary_of(key)?.quantile::<T>(phi)
    }

    /// Normalized rank of `value` within `key`'s stream (0.0 ≤ rank ≤
    /// 1.0). `None` if the key is absent or empty.
    pub fn rank(&self, key: &str, value: T) -> Option<f64> {
        let summary = self.summary_of(key)?;
        if summary.stream_len() == 0 {
            return None;
        }
        Some(summary.rank_fraction(value))
    }

    /// Estimated CDF of `key`'s stream at each split point. `None` if the
    /// key is absent or empty (the same contract as [`SketchStore::rank`]).
    /// One cached summary answers all points.
    pub fn cdf(&self, key: &str, split_points: &[T]) -> Option<Vec<f64>> {
        let summary = self.summary_of(key)?;
        if summary.stream_len() == 0 {
            return None;
        }
        Some(summary.cdf(split_points))
    }

    /// The key's full resident summary behind an `Arc`, or `None` if the
    /// key is absent.
    ///
    /// This is the cached read path: a warm call takes the shared stripe
    /// lock, compares the engine's
    /// [`version`](qc_common::engine::VersionedSketch::version) against
    /// the cache tag, and clones only the `Arc`. A miss materializes the
    /// summary under the same shared lock and publishes it for subsequent
    /// readers — exact whenever the engine is settled (no leased write in
    /// flight); a concurrent leased write can make the materialization a
    /// transiently relaxed view, whose tag the write's own version bump
    /// invalidates when its flush completes.
    pub fn summary_of(&self, key: &str) -> Option<Arc<WeightedSummary>> {
        let map = self.stripe_of(key).read().unwrap();
        let entry = map.get(key)?;
        Some(self.cached_summary(entry))
    }

    /// The cached-read-path core of [`SketchStore::summary_of`], shared
    /// with the range-read methods (which include the active window
    /// through it). The caller holds the stripe lock (shared or
    /// exclusive) for `entry`.
    fn cached_summary(&self, entry: &KeyEntry<T, E>) -> Arc<WeightedSummary> {
        let version = entry.engine.version();
        {
            let cache = entry.cache.lock().unwrap();
            if let Some(cached) = cache.as_ref() {
                if cached.version == version {
                    // Classify (hit) before counting the read: `stats()`
                    // samples in the opposite order, so
                    // `cache_hits + cache_misses >= reads` never inverts.
                    self.instruments.cache_hits.incr();
                    self.instruments.reads.incr();
                    return Arc::clone(&cached.summary);
                }
            }
        }
        // Rebuild outside the cache mutex so a slow materialization never
        // blocks warm readers of the previous version. Leased writers may
        // move the engine under this same shared lock, so two concurrent
        // misses can materialize *different* summaries — but never under
        // a settled tag: `version` was read before materializing (a
        // summary is never tagged newer than its contents), and every
        // leased flush bumps the version both before draining previously
        // visible weight and after landing it, so whatever stale value a
        // racing miss publishes is invalidated by the flush's completion
        // bump. Publishing unconditionally is therefore safe: a wrong
        // entry can only sit under a tag no settled state carries.
        self.instruments.cache_misses.incr();
        let summary = Arc::new(entry.engine.to_summary());
        *entry.cache.lock().unwrap() =
            Some(CachedSummary { version, summary: Arc::clone(&summary) });
        self.instruments.reads.incr();
        summary
    }

    /// Summary over the half-open event-time range `[t0_ms, t1_ms)` of
    /// `key`'s stream, or `None` if the key is absent.
    ///
    /// Merges (exact-weight, via [`merge_summaries`]) every **sealed**
    /// window overlapping the range — a downsampled window is merged
    /// whole whenever the range touches any part of its span, which is
    /// the coarse-granularity contract downsampling trades for memory —
    /// plus the **active** window (through the summary cache) when the
    /// range covers its id. Takes only the shared stripe lock; sealed
    /// summaries are immutable `Arc` clones.
    ///
    /// Without [`StoreConfig::window`] the store has no time axis: the
    /// range is ignored and the whole stream is the answer.
    pub fn range_summary(&self, key: &str, t0_ms: u64, t1_ms: u64) -> Option<WeightedSummary> {
        let Some(plan) = self.window_plan else {
            return self.summary_of(key).map(|s| (*s).clone());
        };
        let (w0, w1) = plan.range_windows(t0_ms, t1_ms);
        let map = self.stripe_of(key).read().unwrap();
        let entry = map.get(key)?;
        let (mut parts, active_id) = {
            let state = entry.windows.as_ref().expect("windowed keys carry window state");
            let state = state.lock().unwrap();
            (state.overlapping(w0, w1), state.active_id)
        };
        if w0 <= active_id && active_id < w1 {
            parts.push(self.cached_summary(entry));
        }
        Some(merge_summaries(parts.iter().map(Arc::as_ref), self.cfg.k, self.cfg.seed))
    }

    /// φ-quantile over the event-time range `[t0_ms, t1_ms)` of `key`'s
    /// stream. `None` if the key is absent or no window in range holds
    /// any weight. See [`SketchStore::range_summary`] for the coverage
    /// and granularity contract.
    pub fn query_range(&self, key: &str, t0_ms: u64, t1_ms: u64, phi: f64) -> Option<T> {
        self.range_summary(key, t0_ms, t1_ms)?.quantile::<T>(phi)
    }

    /// One summary over the union of the given keys' streams restricted
    /// to the event-time range `[t0_ms, t1_ms)` (absent keys contribute
    /// nothing). The cross-key analogue of [`SketchStore::range_summary`],
    /// with the same per-key locking discipline as
    /// [`SketchStore::merged_summary`].
    pub fn merged_range_summary<K: AsRef<str>>(
        &self,
        keys: &[K],
        t0_ms: u64,
        t1_ms: u64,
    ) -> WeightedSummary {
        let parts: Vec<WeightedSummary> =
            keys.iter().filter_map(|k| self.range_summary(k.as_ref(), t0_ms, t1_ms)).collect();
        merge_summaries(parts.iter(), self.cfg.k, self.cfg.seed)
    }

    /// φ-quantile over the union of the given keys' streams restricted to
    /// the event-time range `[t0_ms, t1_ms)`. `None` if nothing in range
    /// held any weight.
    pub fn merged_query_range<K: AsRef<str>>(
        &self,
        keys: &[K],
        t0_ms: u64,
        t1_ms: u64,
        phi: f64,
    ) -> Option<T> {
        self.merged_range_summary(keys, t0_ms, t1_ms).quantile::<T>(phi)
    }

    /// The key's full windowed state — active id, watermark, active
    /// summary, and every sealed window — for diagnostics and the
    /// exact-oracle tests. `None` if the key is absent or the store is
    /// unwindowed.
    pub fn window_snapshot(&self, key: &str) -> Option<WindowSnapshot> {
        let map = self.stripe_of(key).read().unwrap();
        let entry = map.get(key)?;
        let cell = entry.windows.as_ref()?;
        let (active_id, watermark, sealed) = {
            let state = cell.lock().unwrap();
            let sealed = state
                .sealed
                .iter()
                .map(|(&start, win)| (start, win.level, Arc::clone(&win.summary)))
                .collect();
            (state.active_id, state.watermark, sealed)
        };
        Some(WindowSnapshot { active_id, watermark, active: self.cached_summary(entry), sealed })
    }

    /// The key's resident summary materialized directly from the engine,
    /// bypassing (and not populating) the cache. `None` if the key is
    /// absent.
    ///
    /// For verification and diagnostics — the cache-coherence suite holds
    /// [`SketchStore::summary_of`] against this on every interleaving —
    /// and as the reference cost in read-path benchmarks.
    pub fn summary_of_uncached(&self, key: &str) -> Option<WeightedSummary> {
        let map = self.stripe_of(key).read().unwrap();
        map.get(key).map(|entry| entry.engine.to_summary())
    }

    /// Serialize `key`'s resident summary with [`crate::wire`]. `None` if
    /// the key is absent. The frame is self-contained: another process (or
    /// another key) can [`SketchStore::ingest_bytes`] it.
    pub fn snapshot_bytes(&self, key: &str) -> Option<Vec<u8>> {
        let summary = self.summary_of(key)?;
        let bytes = encode_summary(&summary);
        self.instruments.bytes_out.add(bytes.len() as u64);
        Some(bytes)
    }

    /// Decode a serialized summary and merge it into `key`'s engine,
    /// creating the key if needed. Returns the ingested stream length.
    /// Malformed frames return a typed [`WireError`] and leave the store
    /// untouched.
    pub fn ingest_bytes(&self, key: &str, buf: &[u8]) -> Result<u64, WireError> {
        let remote = match decode_summary(buf) {
            Ok(summary) => summary,
            Err(e) => {
                self.instruments.ingest_errors.incr();
                return Err(e);
            }
        };
        let ingested = remote.stream_len();
        let stripe_ix = self.stripe_index(key);
        let mut map = self.stripes[stripe_ix].write().unwrap();
        if !map.contains_key(key) {
            map.insert(
                key.to_string(),
                KeyEntry::new(
                    E::build(&self.cfg, self.key_seed(key)),
                    self.next_generation(),
                    self.cfg.window.is_some(),
                ),
            );
            self.instruments.stripe_keys[stripe_ix].inc();
        }
        let entry = map.get_mut(key).expect("entry just ensured");
        entry.engine.absorb_summary(&remote);
        // Counted under the stripe lock, like `updates`: `stats()` must
        // never see absorbed weight that is not yet in `ingests`.
        self.instruments.ingests.incr();
        self.instruments.bytes_in.add(buf.len() as u64);
        // The frame is logged verbatim (it already carries its own CRC
        // and decoded cleanly above); replay re-ingests it.
        let ticket = self.log_op(Some(&entry.last_lsn), WalOpRef::Ingest { key, frame: buf });
        drop(map);
        self.finish_log(ticket);
        Ok(ingested)
    }

    /// One summary over the union of the given keys' streams (absent keys
    /// contribute nothing). Locks one stripe at a time — and reuses each
    /// key's cached summary, so a warm multi-key merge materializes
    /// nothing per key and clones only `Arc` handles before the final
    /// cross-key merge.
    pub fn merged_summary<K: AsRef<str>>(&self, keys: &[K]) -> WeightedSummary {
        let parts: Vec<Arc<WeightedSummary>> =
            keys.iter().filter_map(|k| self.summary_of(k.as_ref())).collect();
        merge_summaries(parts.iter().map(Arc::as_ref), self.cfg.k, self.cfg.seed)
    }

    /// φ-quantile over the union of the given keys' streams. `None` if no
    /// key contributed any element.
    pub fn merged_query<K: AsRef<str>>(&self, keys: &[K], phi: f64) -> Option<T> {
        self.merged_summary(keys).quantile::<T>(phi)
    }

    /// Remove a key and return whether it was present.
    pub fn remove(&self, key: &str) -> bool {
        let stripe_ix = self.stripe_index(key);
        let mut map = self.stripes[stripe_ix].write().unwrap();
        let removed = map.remove(key).is_some();
        let ticket = if removed {
            // Logged under the same exclusive hold as the removal: a
            // racing re-creation of the key cannot sequence its first
            // batch before the remove.
            self.log_op(None, WalOpRef::Remove { key })
        } else {
            None
        };
        drop(map);
        if removed {
            self.instruments.stripe_keys[stripe_ix].dec();
            self.instruments.removals.incr();
            self.registry.event(EventKind::Eviction, format!("key={key}"));
        }
        self.finish_log(ticket);
        removed
    }

    /// All resident keys (unordered).
    pub fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            out.extend(stripe.read().unwrap().keys().cloned());
        }
        out
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.read().unwrap().is_empty())
    }

    /// Run one cool-down sweep: every engine gets a
    /// [`StoreEngine::maintain`] call under its stripe lock. With the
    /// tiered engine, hot keys that saw **no** updates for one full sweep
    /// interval demote to the sequential tier, releasing their concurrent
    /// buffers. Returns the number of keys that changed tier.
    ///
    /// Call it periodically (e.g. from the serving layer's housekeeping
    /// loop); the sweep interval defines the cool-down window.
    pub fn cool_down(&self) -> usize {
        let mut changed = 0usize;
        let mut windows_resident = 0i64;
        for stripe in self.stripes.iter() {
            // Snapshot the key list under the shared lock, then maintain
            // one key per write-lock acquisition: a demotion is a full
            // summary round-trip, and holding the stripe exclusively for a
            // whole multi-key sweep would stall the warm read path every
            // interval. Keys created after the snapshot simply wait one
            // sweep; removed keys are skipped.
            let keys: Vec<String> = stripe.read().unwrap().keys().cloned().collect();
            for key in keys {
                let mut map = stripe.write().unwrap();
                if let Some(entry) = map.get_mut(&key) {
                    // Flush-on-invalidate, **before** any tier decision:
                    // pooled handles hold no weight by the lease invariant,
                    // but flushing them here makes conservation across
                    // demotion structural rather than an invariant of
                    // every other code path (a no-op flush is free).
                    {
                        let mut pool = entry.pool.lock().unwrap();
                        for handle in pool.idle.iter_mut() {
                            handle.flush();
                        }
                    }
                    let migrated = entry.engine.maintain();
                    let mut pool = entry.pool.lock().unwrap();
                    if migrated {
                        changed += 1;
                        self.instruments.demotions.incr();
                        self.registry.event(EventKind::Demotion, format!("key={key}"));
                        // Tier migration orphans every handle minted for
                        // the previous engine: retire the generation so
                        // outstanding leases are rejected at their next
                        // use (and discarded on drop), and drop the idle
                        // pool with it.
                        entry.generation = self.next_generation();
                        pool.generation = entry.generation;
                        pool.idle.clear();
                        pool.minted = 0;
                    } else {
                        // Housekeeping sweep drops idle leases: handles
                        // parked for a whole interval re-mint on demand;
                        // checked-out leases keep their mint slot.
                        let idle = pool.idle.len();
                        pool.minted -= idle;
                        pool.idle.clear();
                    }
                    drop(pool);
                    // Housekeeping for the read cache too: drop summaries
                    // the engine has since moved past, so written-then-idle
                    // keys do not pin a stale materialization indefinitely.
                    let cache = entry.cache.get_mut().unwrap();
                    if cache.as_ref().is_some_and(|c| c.version != entry.engine.version()) {
                        *cache = None;
                    }
                    // Windowed housekeeping rides the same exclusive
                    // hold: downsample aged sealed windows into coarser
                    // ones (exact-weight merges), then evict windows
                    // wholly past the retention horizon. Both are driven
                    // by the key's watermark — event time, never the wall
                    // clock — so sweeps are deterministic from the update
                    // stream alone.
                    if let (Some(plan), Some(cell)) = (self.window_plan, entry.windows.as_mut()) {
                        let seed = self.key_seed(&key);
                        let k = self.cfg.k;
                        let state = cell.get_mut().unwrap();
                        let promoted = window::downsample_sweep(state, &plan, |a, b| {
                            merge_summaries([a, b], k, seed)
                        });
                        if promoted > 0 {
                            self.instruments.window_downsamples.add(promoted);
                        }
                        let evicted = window::evict_sweep(state, &plan);
                        if evicted > 0 {
                            self.instruments.window_evictions.add(evicted);
                            self.registry
                                .event(EventKind::Eviction, format!("key={key} windows={evicted}"));
                        }
                        windows_resident += 1 + state.sealed.len() as i64;
                    }
                }
            }
        }
        if self.window_plan.is_some() {
            self.instruments.windows_resident.set(windows_resident);
        }
        // Durability housekeeping rides the same sweep: flush whatever
        // the lazier fsync policies left pending — one coalesced group
        // commit on the sync path, never under the append mutex — then
        // compact the log.
        if self.persistence.is_some() {
            self.sync();
            if let Err(e) = self.checkpoint() {
                self.instruments.wal_errors.incr();
                self.registry.event(EventKind::WalError, e.to_string());
            }
        }
        changed
    }

    /// Write a checkpoint: seal the active log segment, capture every
    /// key's summary together with its last applied LSN, write the
    /// checkpoint durably (temp file + fsync + rename), and prune the
    /// sealed segments and older checkpoints behind it. Old files are
    /// deleted only after the new checkpoint is durable, so a crash at
    /// any point leaves a recoverable directory.
    ///
    /// Returns `Ok(None)` when there is nothing to do: no persistence
    /// configured, no appends since the last checkpoint, or a poisoned
    /// log (compacting away segments the log no longer extends would
    /// lose weight). [`SketchStore::cool_down`] calls this every sweep;
    /// it is public so tests and operators can force a compaction point.
    pub fn checkpoint(&self) -> Result<Option<CheckpointStats>, PersistError> {
        let Some(p) = &self.persistence else { return Ok(None) };
        let start = Instant::now();
        // One pass at a time: rotation swaps the active segment in two
        // steps (create the successor outside the append mutex, install
        // it under a brief hold), and two racing passes interleaving
        // those steps would install segments out of order.
        let _pass = p.ckpt.lock().unwrap();
        let next_seq = {
            let wal = p.wal.lock().unwrap();
            if wal.dirty_records == 0 || wal.poisoned {
                return Ok(None);
            }
            wal.seq() + 1
        };
        // Create the successor segment with NO lock held (it is I/O:
        // create + header write + fsync), then install it under a brief
        // append-mutex hold and RELEASE the mutex before touching any
        // stripe: appenders take this mutex while holding a stripe lock,
        // so gathering under it would invert the lock order (see
        // [`Persistence`]).
        let fresh = persist::create_segment(&p.dir, next_seq)?;
        let (sealed_file, covered, sealed_path) = {
            let mut wal = p.wal.lock().unwrap();
            if wal.poisoned {
                // An appender poisoned the log between the check and the
                // install; the pre-created segment stays on disk as an
                // empty tail (harmless to recovery) and the pass aborts.
                return Ok(None);
            }
            // A dup failure leaves the log untouched: appends continue
            // on the old segment, the pre-created successor stays on
            // disk as an empty orphan (harmless to recovery), and this
            // pass reports the error without poisoning.
            wal.install_segment(fresh)?
        };
        let sealed = next_seq - 1;
        // Seal fsync outside every lock — appenders keep appending to
        // the fresh segment while the sealed one flushes. Until this
        // lands, the Wal's `pending_seal` keeps a dup of the sealed
        // handle, so any group-commit leader capturing a sync point in
        // this window fsyncs the sealed file too — its `covered` is a
        // global LSN that includes the sealed records, and the watermark
        // must not advance past them on the strength of an fdatasync of
        // the (nearly empty) fresh segment alone.
        if let Err(e) = sealed_file.sync_data() {
            p.wal.lock().unwrap().poisoned = true;
            p.commit.poison();
            return Err(PersistError { op: "fsync", path: sealed_path, source: e });
        }
        p.wal.lock().unwrap().seal_complete();
        self.instruments.wal_fsyncs.incr();
        // Everything in the sealed segment is now durable: give parked
        // group-commit waiters it covers a free commit.
        let newly = p.commit.advance(covered);
        if newly > 0 {
            self.instruments.wal_durable_lsn.set(covered as i64);
            self.instruments.wal_group_commits.incr();
            self.instruments.wal_group_size.record(newly as f64);
        }
        let mut entries = Vec::new();
        for stripe in self.stripes.iter() {
            let keys: Vec<String> = stripe.read().unwrap().keys().cloned().collect();
            for key in keys {
                // The exclusive lock is load-bearing despite no mutation:
                // it waits out in-flight shared-path writers, so the
                // summary and the LSN watermark are a consistent pair.
                // Records above the watermark live in the new segment and
                // replay on top of this summary; records at or below it
                // are inside it.
                #[allow(clippy::readonly_write_lock)]
                let map = stripe.write().unwrap();
                let Some(entry) = map.get(&key) else { continue };
                let summary = entry.engine.to_summary();
                // Window bookkeeping is captured under the same exclusive
                // hold, so `(active summary, sealed windows, LSN)` is one
                // consistent cut.
                let (active_wid, watermark, sealed) = match &entry.windows {
                    Some(cell) => {
                        let state = cell.lock().unwrap();
                        let sealed = state
                            .sealed
                            .iter()
                            .map(|(&start, win)| (start, win.level, encode_summary(&win.summary)))
                            .collect();
                        (state.active_id, state.watermark, sealed)
                    }
                    None => (0, 0, Vec::new()),
                };
                entries.push(CheckpointEntry {
                    key,
                    lsn: entry.last_lsn.load(Relaxed),
                    active_wid,
                    watermark,
                    sealed,
                    summary: encode_summary(&summary),
                });
            }
        }
        let bytes = persist::write_checkpoint(&p.dir, sealed, &entries)?;
        let (segments_pruned, checkpoints_pruned) = persist::prune_obsolete(&p.dir, sealed);
        self.instruments.wal_checkpoints.incr();
        self.instruments.checkpoint_seconds.record(start.elapsed().as_secs_f64());
        self.registry.event(
            EventKind::Checkpoint,
            format!("seq={sealed} keys={} bytes={bytes}", entries.len()),
        );
        Ok(Some(CheckpointStats {
            seq: sealed,
            keys: entries.len(),
            bytes,
            segments_pruned,
            checkpoints_pruned,
        }))
    }

    /// Store-wide statistics. Sweeps the stripes for `keys`, `stream_len`,
    /// the per-tier key counts and `retained` under **shared** stripe
    /// locks (the sweep never blocks other readers); counter fields are
    /// exact, lock-free reads.
    pub fn stats(&self) -> StoreStats {
        // Sampling order upholds the `consistency()` invariants under
        // concurrency: `reads` before the hit/miss counters (each read
        // classifies before it counts), the batch counters before
        // `updates` (each write bumps `updates` before its batch counter).
        let reads = self.instruments.reads.get();
        let shared_writes = self.instruments.shared_writes.get();
        let fallback_writes = self.instruments.fallback_writes.get();
        let mut keys = 0usize;
        let mut stream_len = 0u64;
        let mut cold_keys = 0usize;
        let mut hot_keys = 0usize;
        let mut retained = 0u64;
        let mut windows = 0usize;
        for stripe in self.stripes.iter() {
            let map = stripe.read().unwrap();
            keys += map.len();
            for entry in map.values() {
                stream_len += entry.engine.stream_len();
                retained += entry.engine.footprint() as u64;
                if let Some(cell) = &entry.windows {
                    // Sealed-window weight is part of the key's stream —
                    // the live engine only holds the active window.
                    let state = cell.lock().unwrap();
                    stream_len += state.sealed_weight();
                    windows += 1 + state.sealed.len();
                }
                match entry.engine.tier() {
                    Tier::Sequential => cold_keys += 1,
                    Tier::Concurrent => hot_keys += 1,
                }
            }
        }
        StoreStats {
            keys,
            stripes: self.stripes.len(),
            updates: self.instruments.updates.get(),
            ingests: self.instruments.ingests.get(),
            ingest_errors: self.instruments.ingest_errors.get(),
            stream_len,
            bytes_out: self.instruments.bytes_out.get(),
            bytes_in: self.instruments.bytes_in.get(),
            cold_keys,
            hot_keys,
            retained,
            cache_hits: self.instruments.cache_hits.get(),
            cache_misses: self.instruments.cache_misses.get(),
            reads,
            shared_writes,
            fallback_writes,
            promotions: self.instruments.promotions.get(),
            demotions: self.instruments.demotions.get(),
            removals: self.instruments.removals.get(),
            window_seals: self.instruments.window_seals.get(),
            window_downsamples: self.instruments.window_downsamples.get(),
            window_evictions: self.instruments.window_evictions.get(),
            window_late_drops: self.instruments.window_late_drops.get(),
            windows,
        }
    }

    /// A telemetry snapshot of the store's registry, extended with the
    /// engine-internal counters ([`qc_common::engine::InstrumentedSketch`])
    /// summed across all
    /// resident keys — Quancurrent's DCAS retries, snapshot miss rates and
    /// friends, sampled under shared stripe locks and exported as
    /// `sketch_*` gauges (gauges, not counters: a key's internal counts
    /// reset when demotion rebuilds its engine, and removal forgets them).
    pub fn telemetry_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        if !self.registry.is_enabled() {
            return snap;
        }
        let mut engine_totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for stripe in self.stripes.iter() {
            let map = stripe.read().unwrap();
            for entry in map.values() {
                for (name, value) in entry.engine.internal_counters() {
                    *engine_totals.entry(name).or_insert(0) += value;
                }
            }
        }
        for (name, value) in engine_totals {
            snap.gauges.push((format!("sketch_{name}"), value.min(i64::MAX as u64) as i64));
        }
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

impl<T: OrderedBits, E: StoreEngine<T>> Drop for SketchStore<T, E> {
    /// Clean shutdown syncs the log's buffered tail ([`SketchStore::sync`])
    /// so `Interval`/`Off` stores lose nothing acked before a graceful
    /// exit. Skipped mid-panic: an fsync on a poisoned-invariant store
    /// could double-panic into an abort, and a panicking process is not
    /// a clean shutdown anyway.
    fn drop(&mut self) {
        if std::thread::panicking() {
            return;
        }
        self.sync();
    }
}

impl<T: OrderedBits, E: StoreEngine<T>> std::fmt::Debug for SketchStore<T, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SketchStore")
            .field("stripes", &stats.stripes)
            .field("keys", &stats.keys)
            .field("stream_len", &stats.stream_len)
            .field("cold_keys", &stats.cold_keys)
            .field("hot_keys", &stats.hot_keys)
            .field("k", &self.cfg.k)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ConcurrentEngine, SequentialEngine};

    fn small_store(stripes: usize) -> SketchStore {
        SketchStore::new(StoreConfig::default().stripes(stripes).k(64).b(4).seed(1))
    }

    #[test]
    fn empty_store_answers_nothing() {
        let store = small_store(4);
        assert!(store.is_empty());
        assert_eq!(store.query("nope", 0.5), None);
        assert_eq!(store.snapshot_bytes("nope"), None);
        assert_eq!(store.merged_query(&["a", "b"], 0.5), None);
        assert_eq!(store.stats().keys, 0);
    }

    #[test]
    fn update_then_query_sees_every_element() {
        let store = small_store(4);
        for i in 0..1000 {
            store.update("lat", i as f64);
        }
        // Exact accounting across whatever tier the key occupies.
        let summary = store.summary_of("lat").unwrap();
        assert_eq!(summary.stream_len(), 1000);
        let med = store.query("lat", 0.5).unwrap();
        assert!((300.0..700.0).contains(&med), "median {med}");
    }

    #[test]
    fn stripe_count_normalizes_to_power_of_two() {
        assert_eq!(small_store(1).num_stripes(), 1);
        assert_eq!(small_store(5).num_stripes(), 8);
        assert_eq!(small_store(0).num_stripes(), 1);
    }

    #[test]
    fn keys_are_isolated() {
        let store = small_store(8);
        store.update_many("low", &(0..500).map(f64::from).collect::<Vec<_>>());
        store.update_many("high", &(1000..1500).map(f64::from).collect::<Vec<_>>());
        let low = store.query("low", 0.5).unwrap();
        let high = store.query("high", 0.5).unwrap();
        assert!(low < 600.0, "low median {low}");
        assert!(high >= 1000.0, "high median {high}");
    }

    #[test]
    fn snapshot_ingest_roundtrip_between_keys() {
        let store = small_store(4);
        store.update_many("a", &(0..2000).map(f64::from).collect::<Vec<_>>());
        let frame = store.snapshot_bytes("a").unwrap();
        let ingested = store.ingest_bytes("b", &frame).unwrap();
        assert_eq!(ingested, 2000);
        assert_eq!(store.summary_of("b").unwrap().stream_len(), 2000);
        let stats = store.stats();
        assert_eq!(stats.ingests, 1);
        assert_eq!(stats.bytes_in, frame.len() as u64);
    }

    #[test]
    fn bad_frame_is_rejected_and_counted() {
        let store = small_store(4);
        let err = store.ingest_bytes("x", b"garbage").unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. } | WireError::BadMagic { .. }));
        assert!(store.is_empty(), "failed ingest must not create the key");
        assert_eq!(store.stats().ingest_errors, 1);
    }

    #[test]
    fn merged_query_spans_keys() {
        let store = small_store(4);
        store.update_many("lo", &(0..5000).map(f64::from).collect::<Vec<_>>());
        store.update_many("hi", &(5000..10000).map(f64::from).collect::<Vec<_>>());
        let med = store.merged_query(&["lo", "hi"], 0.5).unwrap();
        assert!(
            (3500.0..6500.0).contains(&med),
            "union median {med} should sit near the key boundary"
        );
        assert_eq!(store.merged_summary(&["lo", "hi"]).stream_len(), 10_000);
    }

    #[test]
    fn rank_is_normalized() {
        let store = small_store(2);
        store.update_many("k", &(0..1000).map(f64::from).collect::<Vec<_>>());
        let r = store.rank("k", 500.0).unwrap();
        assert!((r - 0.5).abs() < 0.1, "rank {r}");
        assert_eq!(store.rank("absent", 1.0), None);
    }

    #[test]
    fn remove_and_len_track_keys() {
        let store = small_store(4);
        store.update("a", 1.0);
        store.update("b", 2.0);
        assert_eq!(store.len(), 2);
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.keys(), vec!["b".to_string()]);
    }

    #[test]
    fn concurrent_updates_across_keys_and_stripes() {
        let store = std::sync::Arc::new(small_store(8));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let store = store.clone();
                s.spawn(move || {
                    let key = format!("key{}", t % 4);
                    for i in 0..2000 {
                        store.update(&key, (t * 2000 + i) as f64);
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.updates, 16_000);
        assert_eq!(stats.stream_len, 16_000);
        assert_eq!(stats.keys, 4);
        assert_eq!(stats.cold_keys + stats.hot_keys, 4);
        let all: Vec<String> = store.keys();
        let med = store.merged_query(&all, 0.5).unwrap();
        assert!((2000.0..14_000.0).contains(&med), "median {med}");
    }

    #[test]
    fn stats_bytes_out_accumulates() {
        let store = small_store(2);
        store.update("a", 1.0);
        let n = store.snapshot_bytes("a").unwrap().len() as u64;
        store.snapshot_bytes("a").unwrap();
        assert_eq!(store.stats().bytes_out, 2 * n);
    }

    /// The same store logic runs unchanged over the pure sequential and
    /// pure concurrent engines — the store is engine-generic.
    #[test]
    fn explicit_engine_stores_behave_identically() {
        let cfg = || StoreConfig::default().stripes(4).k(64).b(4).seed(9);
        let seq = SketchStore::<f64, SequentialEngine>::with_engine(cfg());
        let conc = SketchStore::<f64, ConcurrentEngine>::with_engine(cfg());
        let values: Vec<f64> = (0..3000).map(f64::from).collect();
        seq.update_many("x", &values);
        conc.update_many("x", &values);
        assert_eq!(seq.stats().stream_len, 3000);
        assert_eq!(conc.stats().stream_len, 3000);
        assert_eq!(seq.stats().cold_keys, 1);
        assert_eq!(conc.stats().hot_keys, 1);
        let (a, b) = (seq.query("x", 0.5).unwrap(), conc.query("x", 0.5).unwrap());
        assert!((a - b).abs() < 600.0, "medians {a} vs {b}");
        // Cross-engine interchange through the wire format.
        let frame = seq.snapshot_bytes("x").unwrap();
        assert_eq!(conc.ingest_bytes("from-seq", &frame).unwrap(), 3000);
        assert_eq!(conc.summary_of("from-seq").unwrap().stream_len(), 3000);
    }

    #[test]
    fn warm_reads_hit_the_cache_and_writes_invalidate_it() {
        let store = small_store(4);
        store.update_many("k", &(0..2000).map(f64::from).collect::<Vec<_>>());
        assert_eq!(store.stats().cache_hits, 0);
        // First read materializes, the next ones ride the cache.
        let first = store.summary_of("k").unwrap();
        let misses = store.stats().cache_misses;
        assert!(misses >= 1);
        let again = store.summary_of("k").unwrap();
        assert!(Arc::ptr_eq(&first, &again), "warm read must clone the Arc, not rebuild");
        let _ = store.query("k", 0.5);
        let _ = store.rank("k", 100.0);
        let _ = store.cdf("k", &[10.0, 100.0]);
        let stats = store.stats();
        assert!(stats.cache_hits >= 4, "hits {}", stats.cache_hits);
        assert_eq!(stats.cache_misses, misses, "no rebuild while the key is unwritten");
        // A write bumps the engine version: the next read rebuilds.
        store.update("k", 9999.0);
        let fresh = store.summary_of("k").unwrap();
        assert!(!Arc::ptr_eq(&first, &fresh));
        assert_eq!(fresh.stream_len(), 2001);
        assert_eq!(store.stats().cache_misses, misses + 1);
    }

    #[test]
    fn cached_summary_equals_uncached_materialization() {
        let store = small_store(4);
        store.update_many("k", &(0..5000).map(f64::from).collect::<Vec<_>>());
        let cached = store.summary_of("k").unwrap();
        let direct = store.summary_of_uncached("k").unwrap();
        assert_eq!(*cached, direct, "materialization is deterministic for a fixed state");
        store.ingest_bytes("k", &store.snapshot_bytes("k").unwrap()).unwrap();
        let cached = store.summary_of("k").unwrap();
        let direct = store.summary_of_uncached("k").unwrap();
        assert_eq!(*cached, direct, "still coherent after an absorb");
        assert_eq!(cached.stream_len(), 10_000);
    }

    #[test]
    fn concurrent_readers_share_a_stripe_with_writers() {
        // Readers and writers hammer keys that all live on ONE stripe;
        // the store must stay coherent and every read must be answerable.
        let store = std::sync::Arc::new(small_store(1));
        store.update_many("seed", &(0..100).map(f64::from).collect::<Vec<_>>());
        std::thread::scope(|s| {
            for w in 0..2usize {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..2000 {
                        store.update("seed", (w * 2000 + i) as f64);
                    }
                });
            }
            for _ in 0..4usize {
                let store = store.clone();
                s.spawn(move || {
                    for _ in 0..2000 {
                        let summary = store.summary_of("seed").unwrap();
                        assert!(summary.stream_len() >= 100);
                        let q = store.query("seed", 0.5);
                        assert!(q.is_some());
                    }
                });
            }
        });
        assert_eq!(store.summary_of("seed").unwrap().stream_len(), 4100);
        let stats = store.stats();
        assert!(stats.cache_hits + stats.cache_misses >= 8000);
    }

    #[test]
    fn hot_key_writes_ride_the_shared_path_and_stay_exact() {
        let store = SketchStore::new(
            StoreConfig::default().stripes(2).k(64).b(4).seed(5).promotion_threshold(100),
        );
        // Cold phase: every batch is an exclusive fallback.
        store.update_many("k", &(0..100).map(f64::from).collect::<Vec<_>>());
        let stats = store.stats();
        assert_eq!(stats.shared_writes, 0);
        assert!(stats.fallback_writes >= 1);
        // Push past the promotion threshold (still fallback — that write
        // fires the promotion), then write hot: shared path.
        store.update_many("k", &(100..200).map(f64::from).collect::<Vec<_>>());
        let fallbacks = store.stats().fallback_writes;
        store.update_many("k", &(200..300).map(f64::from).collect::<Vec<_>>());
        store.update_many("k", &(300..400).map(f64::from).collect::<Vec<_>>());
        let stats = store.stats();
        assert_eq!(stats.shared_writes, 2, "hot-key batches must take the shared path");
        assert_eq!(stats.fallback_writes, fallbacks, "no fallback once hot");
        assert_eq!(stats.updates, 400);
        assert_eq!(stats.stream_len, 400, "leased writes stay exact at quiescence");
        assert_eq!(store.summary_of("k").unwrap().stream_len(), 400);
    }

    #[test]
    fn writer_pool_zero_disables_the_shared_path() {
        let store = SketchStore::new(
            StoreConfig::default()
                .stripes(2)
                .k(64)
                .b(4)
                .seed(6)
                .promotion_threshold(0)
                .writer_pool(0),
        );
        store.update_many("k", &(0..500).map(f64::from).collect::<Vec<_>>());
        store.update_many("k", &(0..500).map(f64::from).collect::<Vec<_>>());
        let stats = store.stats();
        assert_eq!(stats.shared_writes, 0);
        assert_eq!(stats.fallback_writes, 2);
        assert_eq!(stats.stream_len, 1000);
    }

    #[test]
    fn empty_batches_touch_nothing_on_either_path() {
        let store = small_store(2);
        store.update_many("ephemeral", &[]);
        assert!(store.is_empty(), "an empty batch must not create the key");
        let stats = store.stats();
        assert_eq!((stats.updates, stats.shared_writes, stats.fallback_writes), (0, 0, 0));
        // Same through a held lease on an existing hot key.
        let store = SketchStore::new(
            StoreConfig::default().stripes(2).k(64).b(4).seed(7).promotion_threshold(0),
        );
        store.update_many("k", &[1.0]);
        store.update_many("k", &[2.0]);
        let mut lease = store.lease_writer("k").expect("hot key leases");
        let before = store.stats();
        store.update_many_leased("k", &mut lease, &[]).unwrap();
        let after = store.stats();
        assert_eq!(after.updates, before.updates);
        assert_eq!(after.shared_writes, before.shared_writes);
        store.return_lease("k", lease);
    }

    #[test]
    fn lease_survives_reuse_and_goes_stale_on_remove() {
        let store = SketchStore::new(
            StoreConfig::default().stripes(2).k(64).b(4).seed(8).promotion_threshold(0),
        );
        store.update_many("k", &[0.0, 1.0]);
        let mut lease = store.lease_writer("k").expect("hot key leases");
        for i in 0..10u64 {
            let batch: Vec<f64> = (0..7).map(|j| (i * 7 + j) as f64).collect();
            store.update_many_leased("k", &mut lease, &batch).unwrap();
        }
        assert_eq!(store.summary_of("k").unwrap().stream_len(), 72);
        // Remove retires the generation: the held lease must be rejected,
        // and a re-created key must never see its writes.
        assert!(store.remove("k"));
        assert_eq!(store.update_many_leased("k", &mut lease, &[9.0]), Err(StaleLease));
        store.update_many("k", &[5.0]);
        assert_eq!(store.update_many_leased("k", &mut lease, &[9.0]), Err(StaleLease));
        assert_eq!(
            store.summary_of("k").unwrap().stream_len(),
            1,
            "no stale write may land in the successor generation"
        );
        // Returning the stale lease is a harmless no-op.
        store.return_lease("k", lease);
        assert_eq!(store.stats().stream_len, 1);
    }

    #[test]
    fn demotion_invalidates_leases_without_losing_weight() {
        let store = SketchStore::new(
            StoreConfig::default().stripes(2).k(64).b(4).seed(9).promotion_threshold(0),
        );
        store.update_many("k", &(0..100).map(f64::from).collect::<Vec<_>>());
        store.update_many("k", &(100..200).map(f64::from).collect::<Vec<_>>());
        let mut lease = store.lease_writer("k").expect("hot key leases");
        store.update_many_leased("k", &mut lease, &[200.0, 201.0, 202.0]).unwrap();
        // Leased writes count as epoch activity: the sweep that closes
        // their epoch must not demote; the next (idle) one does.
        assert_eq!(store.cool_down(), 0, "epoch with the leased write just closed");
        assert_eq!(store.cool_down(), 1, "idle epoch demotes");
        assert_eq!(store.stats().hot_keys, 0);
        assert_eq!(
            store.summary_of("k").unwrap().stream_len(),
            203,
            "demotion must conserve leased weight exactly"
        );
        assert_eq!(store.update_many_leased("k", &mut lease, &[9.0]), Err(StaleLease));
        assert_eq!(store.summary_of("k").unwrap().stream_len(), 203);
        // The normal path keeps working (and re-promotes under pressure).
        store.update_many("k", &[300.0]);
        assert_eq!(store.summary_of("k").unwrap().stream_len(), 204);
    }

    #[test]
    fn pool_caps_leases_and_sweep_reclaims_idle_handles() {
        let store = SketchStore::new(
            StoreConfig::default()
                .stripes(2)
                .k(64)
                .b(4)
                .seed(10)
                .promotion_threshold(0)
                .writer_pool(2),
        );
        store.update_many("k", &[0.0]);
        store.update_many("k", &[1.0]);
        let lease_a = store.lease_writer("k").expect("first lease");
        let lease_b = store.lease_writer("k").expect("second lease");
        assert!(store.lease_writer("k").is_none(), "pool cap must bound minted leases");
        // update_many still works: the exhausted pool sends it down the
        // exclusive fallback.
        store.update_many("k", &[2.0]);
        assert!(store.stats().fallback_writes >= 1);
        store.return_lease("k", lease_a);
        let lease_c = store.lease_writer("k").expect("returned handles are reusable");
        // Park both handles and sweep: idle leases are dropped and their
        // mint slots freed, so the pool can mint fresh ones afterwards.
        store.return_lease("k", lease_b);
        store.return_lease("k", lease_c);
        store.cool_down();
        store.update_many("k", &[3.0]); // keep the key hot across the sweep
        let fresh_a = store.lease_writer("k").expect("sweep must free idle mint slots");
        let fresh_b = store.lease_writer("k").expect("both slots mint again");
        assert!(store.lease_writer("k").is_none(), "cap still enforced");
        store.return_lease("k", fresh_a);
        store.return_lease("k", fresh_b);
        assert_eq!(store.stats().stream_len, 4);
    }

    #[test]
    fn dropped_leases_release_their_mint_slots_immediately() {
        // A lease abandoned without `return_lease` (caller bug, worker
        // panic unwinding a connection's cache) must not pin its mint
        // slot: the drop returns the handle through the weak pool
        // back-reference, no housekeeping sweep required.
        let store = SketchStore::new(
            StoreConfig::default()
                .stripes(2)
                .k(64)
                .b(4)
                .seed(11)
                .promotion_threshold(0)
                .writer_pool(1),
        );
        store.update_many("k", &[0.0]);
        store.update_many("k", &[1.0]);
        let lease = store.lease_writer("k").expect("hot key leases");
        assert!(store.lease_writer("k").is_none(), "single slot checked out");
        drop(lease);
        let again = store.lease_writer("k").expect("dropped lease must free its slot");
        drop(again);
        // And a stale drop (after removal) is a harmless no-op.
        let lease = store.lease_writer("k").expect("slot free again");
        store.remove("k");
        drop(lease);
        assert!(store.is_empty());
    }

    #[test]
    fn tier_counts_and_cool_down_sweep() {
        let store = SketchStore::new(
            StoreConfig::default().stripes(2).k(64).b(4).seed(3).promotion_threshold(100),
        );
        store.update_many("hot", &(0..500).map(f64::from).collect::<Vec<_>>());
        store.update("cold", 1.0);
        let stats = store.stats();
        assert_eq!((stats.hot_keys, stats.cold_keys), (1, 1));
        // Two idle sweeps demote the hot key; weight stays exact.
        assert_eq!(store.cool_down(), 0, "first sweep only closes the busy epoch");
        assert_eq!(store.cool_down(), 1, "second idle sweep demotes");
        let stats = store.stats();
        assert_eq!((stats.hot_keys, stats.cold_keys), (0, 2));
        assert_eq!(stats.stream_len, 501);
        assert_eq!(store.summary_of("hot").unwrap().stream_len(), 500);
    }
}
