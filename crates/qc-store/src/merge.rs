//! Weight-aware merging of [`WeightedSummary`] snapshots.
//!
//! Mergeability is what makes a quantiles sketch deployable: snapshots taken
//! by independent processes (each a [`quancurrent::Quancurrent`] over its own
//! substream) combine into one summary answering quantiles over the union,
//! with additive error — the central property of Agarwal et al., *Mergeable
//! Summaries* (PODS'12).
//!
//! The construction mirrors the sequential sketch's level structure:
//!
//! 1. every input item of weight `w` is decomposed along the binary
//!    representation of `w` — one copy at level `j` per set bit `j` (for the
//!    power-of-two weights our sketches produce this is a single level);
//! 2. per level, the sorted runs contributed by each input summary are
//!    combined with [`qc_common::merge::merge_sorted_many`];
//! 3. from the bottom up, any level holding more than `2k` elements is
//!    compacted with the paper's randomized odd-or-even sampling
//!    ([`qc_common::sample`]): the retained half doubles its weight and is
//!    merged one level up. An odd straggler stays behind at its own level,
//!    so **total weight is conserved exactly** — `stream_len` of the result
//!    equals the sum of the inputs.
//!
//! Each compaction at level `j` perturbs ranks by at most `2^j` on average
//! zero (the coin is fair), which is the same unbiased-halving argument the
//! sketches themselves rest on; the merged summary answers quantiles within
//! the combined bound of a single sketch over the concatenated stream (see
//! `tests/merge_equivalence.rs`).

use qc_common::merge::{merge_sorted, merge_sorted_many};
use qc_common::rng::Xoshiro256;
use qc_common::sample::{sample_with_parity, Parity};
use qc_common::summary::WeightedSummary;

/// Highest level a `u64` weight can populate.
const LEVELS: usize = 64;

/// Merge any number of summaries into one whose per-level population is
/// bounded by `2k` (so total retained size is `O(k log(n/k))`).
///
/// Takes anything yielding summary **references** — a slice, an array of
/// borrows, a `chain` over cached `Arc<WeightedSummary>` handles — so
/// callers composing already-materialized summaries (the store's read
/// cache, [`crate::engine::ConcurrentEngine`]'s absorb buffer) never clone
/// an input just to merge it.
///
/// `seed` drives the randomized compaction coins; fixing it makes merges
/// reproducible. Empty input (or all-empty summaries) yields the empty
/// summary. Total weight is conserved exactly.
///
/// # Panics
/// If `k == 0`.
pub fn merge_summaries<'a, I>(summaries: I, k: usize, seed: u64) -> WeightedSummary
where
    I: IntoIterator<Item = &'a WeightedSummary>,
{
    assert!(k > 0, "k must be positive");
    let mut rng = Xoshiro256::seed_from_u64(seed);

    // Stage 1+2: per level, gather each summary's sorted run and merge.
    let mut runs: Vec<Vec<&[u64]>> = vec![Vec::new(); LEVELS];
    let mut scratch: Vec<Vec<Vec<u64>>> = vec![Vec::new(); LEVELS];
    for summary in summaries {
        // items() is sorted by value; a fixed-weight subsequence is sorted
        // too, so each (summary, level) pair contributes one sorted run.
        let mut per_level: Vec<Vec<u64>> = vec![Vec::new(); LEVELS];
        for item in summary.items() {
            let mut w = item.weight;
            while w != 0 {
                let j = w.trailing_zeros() as usize;
                per_level[j].push(item.value_bits);
                w &= w - 1;
            }
        }
        for (j, run) in per_level.into_iter().enumerate() {
            if !run.is_empty() {
                scratch[j].push(run);
            }
        }
    }
    for j in 0..LEVELS {
        runs[j] = scratch[j].iter().map(|r| r.as_slice()).collect();
    }
    let mut levels: Vec<Vec<u64>> = runs.into_iter().map(|r| merge_sorted_many(&r)).collect();

    // Stage 3: bottom-up randomized compaction back to <= 2k per level.
    let cap = 2 * k;
    for j in 0..LEVELS - 1 {
        if levels[j].len() <= cap {
            continue;
        }
        let arr = std::mem::take(&mut levels[j]);
        // An odd element count cannot halve cleanly; hold one element back
        // at this level (random end, to avoid min/max bias) so weight is
        // conserved exactly.
        let (withheld, even_part) = if arr.len() % 2 == 1 {
            if rng.coin() {
                (Some(arr[0]), &arr[1..])
            } else {
                (Some(arr[arr.len() - 1]), &arr[..arr.len() - 1])
            }
        } else {
            (None, &arr[..])
        };
        let parity = if rng.coin() { Parity::Odd } else { Parity::Even };
        let promoted = sample_with_parity(even_part, parity);
        levels[j] = withheld.into_iter().collect();
        levels[j + 1] = merge_sorted(&levels[j + 1], &promoted);
    }

    let parts: Vec<(&[u64], u64)> = levels
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(j, v)| (v.as_slice(), 1u64 << j))
        .collect();
    WeightedSummary::from_parts(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_common::summary::{Summary, WeightedItem};

    fn unit_summary(range: std::ops::Range<u64>) -> WeightedSummary {
        WeightedSummary::from_items(
            range.map(|v| WeightedItem { value_bits: v, weight: 1 }).collect(),
        )
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let none: [WeightedSummary; 0] = [];
        let m = merge_summaries(&none, 64, 1);
        assert_eq!(m.stream_len(), 0);
        let m2 = merge_summaries(&[WeightedSummary::empty(), WeightedSummary::empty()], 64, 1);
        assert_eq!(m2.stream_len(), 0);
    }

    #[test]
    fn single_small_summary_is_preserved_exactly() {
        let s = unit_summary(0..100);
        let m = merge_summaries(std::slice::from_ref(&s), 64, 7);
        // 100 <= 2k: no compaction may fire, items come through verbatim.
        assert_eq!(m.items(), s.items());
    }

    #[test]
    fn total_weight_is_conserved() {
        let a = unit_summary(0..10_000);
        let b = unit_summary(10_000..15_000);
        let c =
            WeightedSummary::from_parts([(&(0..500).map(|i| i * 64).collect::<Vec<u64>>()[..], 8)]);
        let m = merge_summaries(&[a.clone(), b.clone(), c.clone()], 32, 3);
        assert_eq!(m.stream_len(), a.stream_len() + b.stream_len() + c.stream_len());
    }

    #[test]
    fn merged_size_is_k_bounded() {
        let inputs: Vec<WeightedSummary> =
            (0..8).map(|i| unit_summary(i * 50_000..(i + 1) * 50_000)).collect();
        let k = 64;
        let m = merge_summaries(&inputs, k, 11);
        // <= 2k per occupied level, ~log2(n/k) levels.
        let levels_bound = (64 - (400_000u64 / k as u64).leading_zeros()) as usize + 2;
        assert!(
            m.num_retained() <= 2 * k * levels_bound,
            "retained {} > bound {}",
            m.num_retained(),
            2 * k * levels_bound
        );
    }

    #[test]
    fn disjoint_halves_answer_union_quantiles() {
        let lo = unit_summary(0..100_000);
        let hi = unit_summary(100_000..200_000);
        let m = merge_summaries(&[lo, hi], 128, 5);
        assert_eq!(m.stream_len(), 200_000);
        for (phi, expect) in [(0.25, 50_000.0), (0.5, 100_000.0), (0.75, 150_000.0)] {
            let q = m.quantile_bits(phi).unwrap() as f64;
            let err = (q - expect).abs() / 200_000.0;
            assert!(err < 0.05, "phi={phi}: got {q}, expected ~{expect} (err {err})");
        }
    }

    #[test]
    fn non_power_of_two_weights_are_decomposed() {
        // weight 5 = levels 0 and 2.
        let s = WeightedSummary::from_items(vec![WeightedItem { value_bits: 42, weight: 5 }]);
        let m = merge_summaries(std::slice::from_ref(&s), 16, 1);
        assert_eq!(m.stream_len(), 5);
        assert_eq!(m.num_retained(), 2);
        assert!(m.items().iter().all(|it| it.value_bits == 42));
        let mut weights: Vec<u64> = m.items().iter().map(|it| it.weight).collect();
        weights.sort_unstable();
        assert_eq!(weights, vec![1, 4]);
    }

    #[test]
    fn merge_is_deterministic_under_fixed_seed() {
        let inputs: Vec<WeightedSummary> =
            (0..4).map(|i| unit_summary(i * 10_000..(i + 1) * 10_000)).collect();
        let a = merge_summaries(&inputs, 16, 99);
        let b = merge_summaries(&inputs, 16, 99);
        assert_eq!(a.items(), b.items());
    }

    #[test]
    fn repeated_self_merge_keeps_error_bounded() {
        // Fold 16 copies of the same distribution together; the median must
        // stay near the true median rather than drifting with each merge.
        let mut acc = WeightedSummary::empty();
        for _ in 0..16 {
            acc = merge_summaries(&[acc, unit_summary(0..10_000)], 128, 17);
        }
        assert_eq!(acc.stream_len(), 160_000);
        let med = acc.quantile_bits(0.5).unwrap() as f64;
        assert!((med - 5_000.0).abs() / 10_000.0 < 0.1, "median drifted to {med}");
    }
}
