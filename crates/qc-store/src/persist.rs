//! Durable persistence: an append-only segment log plus checkpoint
//! compaction, built on the [`crate::wire`] primitives.
//!
//! Everything the store accumulates lives in memory; this module is the
//! restart-safety layer ([`crate::SketchStore::recover`] is the entry
//! point). The design is the classic WAL + snapshot pair, specialized to
//! mergeable summaries:
//!
//! * **Segment log** — every mutating store operation (`update_many`,
//!   `ingest_bytes`, `remove`) appends one length-prefixed, CRC-trailed
//!   record to the active `wal-<seq>.log` segment *while holding the
//!   key's stripe lock*, so per-key log order always matches per-key
//!   apply order. Records carry a store-wide **LSN** (log sequence
//!   number, strictly increasing, assigned under the log mutex).
//! * **Checkpoints** — a housekeeping sweep seals the active segment,
//!   then writes every key's resident [`qc_common::WeightedSummary`] (the same
//!   CRC-checked [`crate::wire`] frame that crosses the network) plus the
//!   key's last-applied LSN into `ckpt-<seq>.ck` (via a temp file +
//!   rename), and finally deletes the sealed segments and older
//!   checkpoints it supersedes. Because summaries merge with **exact**
//!   weight conservation, a checkpoint is a lossless compaction of the
//!   log prefix it covers.
//! * **Recovery** — load the newest fully-valid checkpoint (corrupt ones
//!   fall back to their predecessor, whose segments are still on disk —
//!   pruning happens only after the successor is durable), ingest each
//!   entry through the ordinary summary-ingest path, then replay the
//!   remaining segments in order, skipping records the checkpoint already
//!   covers (`record.lsn <= checkpoint lsn` for that key). Replay stops
//!   at the first torn or corrupt frame with a **typed**
//!   [`RecordError`] in the [`RecoveryReport`] — never a panic and never
//!   an attacker-sized allocation (every allocation is bounded by the
//!   actual file length).
//!
//! # Record frame layout
//!
//! Both file kinds share one frame envelope (multi-byte integers
//! little-endian, varints LEB128 as in [`crate::wire`]):
//!
//! ```text
//! offset  size  field
//! 0       4     body length `n` (u32 LE, <= MAX_RECORD_LEN)
//! 4       n     body
//! 4+n     4     CRC-32 (IEEE) over the body
//! ```
//!
//! Segment bodies: `opcode u8`, `lsn varint`, `key_len varint`, key
//! bytes, then an opcode-specific payload — `0x01` update batch
//! (`window id` varint, `count` varint + `count` 8-byte LE ordered-bit
//! values), `0x02` ingest (one [`crate::wire`] summary frame, verbatim),
//! `0x03` remove (empty). Checkpoint bodies: `0x10` entry (`lsn varint`,
//! `key_len varint`, key, `active window id` varint, `watermark` varint,
//! `sealed count` varint, then per sealed window `start id` varint +
//! `level u8` + `frame_len` varint + summary frame, then the active
//! summary frame to the end of the body) and `0x1f` footer (`entry
//! count` varint), which must be the final frame — a checkpoint without
//! its footer is rejected whole.
//!
//! # Versioning
//!
//! Version 2 (current) added the window id to update-batch bodies and
//! the windowed fields to checkpoint entries. Version-1 files decode
//! with every update assigned to **window 0** and checkpoint entries
//! carrying no sealed windows — exactly the state an unwindowed store
//! produced, so old logs replay byte-for-byte into the same summaries.
//! Writers always emit the current version.
//!
//! # Durability guarantee
//!
//! With [`FsyncPolicy::PerFrame`], an operation that has returned is
//! durable: recovery conserves every key's weight **exactly** up to the
//! last fsync'd frame, and the crash-injection suite kills a loaded
//! server with SIGKILL to hold it to that. `Interval` bounds data loss by
//! time instead of by frame; `Off` leaves flushing to the OS (a clean
//! shutdown still syncs the tail).
//!
//! The fsync itself is **group commit** (`CommitSequencer`): appends
//! only buffer and sequence under the WAL mutex; a durable writer then
//! parks on the `durable_lsn` watermark after releasing its stripe lock,
//! the first parked waiter leads one fsync covering every LSN appended
//! so far, and all covered waiters wake together. `ack ⇒ durable` is
//! unchanged — only the number of physical syncs shrinks, and no store
//! lock is ever held across the disk wait.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::wire::{crc32, decode_summary, get_varint, put_varint, WireError};

/// First four bytes of every log segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"QCWL";

/// First four bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"QCCP";

/// On-disk format version for both file kinds. Version 2 added the
/// window id to update records and windowed state to checkpoint
/// entries; version-1 files still decode (into window 0).
pub const PERSIST_VERSION: u16 = 2;

/// Fixed file header length (magic + version + flags).
pub const FILE_HEADER_LEN: usize = 8;

/// Per-frame envelope overhead (length prefix + CRC trailer).
pub const FRAME_OVERHEAD: usize = 8;

/// Upper bound on a single record body. Anything larger is corruption by
/// construction (the store caps batches far below this), so the decoder
/// can reject absurd lengths before trusting them.
pub const MAX_RECORD_LEN: usize = 1 << 26;

/// When (and whether) the log fsyncs appended frames.
///
/// Since the group-commit split, no policy fsyncs *inside* the append
/// path (which runs under the stripe-lock hold): appends only buffer and
/// sequence; the sync happens afterwards, outside every store lock, via
/// the `CommitSequencer`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// An acknowledged operation is durable before the call returns. The
    /// writer parks on the `durable_lsn` watermark; the first parked
    /// waiter becomes sync leader and one `fdatasync` covers every
    /// concurrent writer (group commit). The default — correctness
    /// first; the `store_wal_overhead` and `store_wal_group_*` bench
    /// axes price it.
    PerFrame,
    /// `fdatasync` at most once per interval, checked on the sync path
    /// (after the stripe lock is released) and on every housekeeping
    /// sweep: bounded data loss, near-`Off` cost, and concurrent
    /// appenders coalesce into one interval sync.
    Interval(Duration),
    /// Never fsync from the store; the OS flushes when it pleases. A
    /// clean shutdown still syncs the tail once.
    Off,
}

/// A filesystem operation failed. Carries which operation, on which
/// path — the one error recovery cannot type its way around.
#[derive(Debug)]
pub struct PersistError {
    /// The operation that failed (`"create"`, `"read"`, `"rename"`, …).
    pub op: &'static str,
    /// The path it failed on.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl PersistError {
    fn new(op: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        PersistError { op, path: path.into(), source }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "persistence {} failed on {}: {}", self.op, self.path.display(), self.source)
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Typed decode failures for one log/checkpoint frame. Like
/// [`WireError`], every malformed input maps to one of these — frame
/// decoding never panics, whatever the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// The file is shorter than its fixed header, or the magic bytes are
    /// not the expected file kind.
    BadFileHeader {
        /// The leading bytes found (zero-padded when the file is shorter).
        found: [u8; 4],
    },
    /// File-format version newer than this build understands.
    UnsupportedVersion {
        /// Version in the header.
        found: u16,
        /// Highest version this build decodes.
        supported: u16,
    },
    /// Reserved header flag bits were set.
    ReservedFlags {
        /// The flag word found.
        found: u16,
    },
    /// The file ends mid-frame — the torn tail of an interrupted write.
    Torn {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// Bytes the frame claims to need.
        needed: usize,
        /// Bytes actually present from `offset`.
        have: usize,
    },
    /// A frame length prefix exceeds [`MAX_RECORD_LEN`].
    Oversized {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// The claimed body length.
        length: usize,
    },
    /// The frame's CRC-32 trailer does not match its body.
    ChecksumMismatch {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum computed over the body read.
        computed: u32,
    },
    /// The body's opcode byte is not one this build knows.
    BadOpcode {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// The opcode found.
        found: u8,
    },
    /// The body failed structural decoding (varint overrun, key length
    /// past the body, non-UTF-8 key, payload size mismatch, zero LSN).
    Malformed {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// The underlying wire-level cause.
        cause: WireError,
    },
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::BadFileHeader { found } => write!(f, "bad file header {found:02x?}"),
            RecordError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported persist version {found} (supported <= {supported})")
            }
            RecordError::ReservedFlags { found } => {
                write!(f, "reserved persist flags set: {found:#06x}")
            }
            RecordError::Torn { offset, needed, have } => {
                write!(f, "torn frame at byte {offset}: need {needed} bytes, have {have}")
            }
            RecordError::Oversized { offset, length } => {
                write!(f, "oversized frame at byte {offset}: {length} bytes")
            }
            RecordError::ChecksumMismatch { offset, stored, computed } => write!(
                f,
                "frame checksum mismatch at byte {offset}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            RecordError::BadOpcode { offset, found } => {
                write!(f, "unknown record opcode {found:#04x} at byte {offset}")
            }
            RecordError::Malformed { offset, cause } => {
                write!(f, "malformed record at byte {offset}: {cause}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

/// Why a whole checkpoint file was rejected (recovery then falls back to
/// the previous checkpoint, whose segments are still on disk).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// A frame inside the checkpoint failed to decode.
    Frame(RecordError),
    /// The file ended without (or with frames after) the footer.
    MissingFooter,
    /// The footer's entry count disagrees with the entries present.
    CountMismatch {
        /// Count stored in the footer.
        stored: u64,
        /// Entries actually decoded.
        found: u64,
    },
    /// An entry's embedded summary frame failed [`decode_summary`].
    BadSummary {
        /// Index of the offending entry.
        index: usize,
        /// The wire-level cause.
        cause: WireError,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Frame(e) => write!(f, "checkpoint frame error: {e}"),
            CheckpointError::MissingFooter => f.write_str("checkpoint footer missing"),
            CheckpointError::CountMismatch { stored, found } => {
                write!(f, "checkpoint footer count {stored} != {found} entries")
            }
            CheckpointError::BadSummary { index, cause } => {
                write!(f, "checkpoint entry {index} summary invalid: {cause}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One durable mutation, as decoded from a segment.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordOp {
    /// A batch of ordered-bit values fed to one key.
    UpdateMany {
        /// The target key.
        key: String,
        /// The batch, as order-preserving bit embeddings
        /// ([`qc_common::bits::OrderedBits`]).
        value_bits: Vec<u64>,
        /// Level-0 window id the batch belongs to (`0` for unwindowed
        /// stores and for records decoded from version-1 files).
        window: u64,
    },
    /// A remote summary frame ingested into one key.
    Ingest {
        /// The target key.
        key: String,
        /// The verbatim [`crate::wire`] summary frame.
        frame: Vec<u8>,
    },
    /// A key removal.
    Remove {
        /// The removed key.
        key: String,
    },
}

impl RecordOp {
    /// The key this record targets.
    pub fn key(&self) -> &str {
        match self {
            RecordOp::UpdateMany { key, .. }
            | RecordOp::Ingest { key, .. }
            | RecordOp::Remove { key } => key,
        }
    }
}

/// A decoded segment record: the operation plus its log sequence number.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// Store-wide log sequence number (strictly increasing, never 0).
    pub lsn: u64,
    /// The operation.
    pub op: RecordOp,
}

/// One record located inside a parsed segment (byte range included so
/// tests can cut files exactly at frame boundaries).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedRecord {
    /// The decoded record.
    pub record: WalRecord,
    /// Byte offset of the frame's length prefix.
    pub start: usize,
    /// Byte offset one past the frame's CRC trailer.
    pub end: usize,
}

/// The result of scanning a segment byte-for-byte: the clean prefix of
/// records, plus the first error (if any) and where it sits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SegmentScan {
    /// Records decoded before the first error.
    pub records: Vec<ParsedRecord>,
    /// First torn/corrupt frame: `(offset, error)`. `None` for a clean
    /// segment.
    pub error: Option<(usize, RecordError)>,
}

/// One checkpointed key.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointEntry {
    /// The key.
    pub key: String,
    /// The key's last-applied LSN at checkpoint time: replay skips this
    /// key's records with `lsn <=` this value.
    pub lsn: u64,
    /// Level-0 id of the key's active window (`0` when unwindowed or
    /// decoded from a version-1 file).
    pub active_wid: u64,
    /// The key's watermark — highest level-0 id seen (`0` when
    /// unwindowed or version-1).
    pub watermark: u64,
    /// Sealed windows as `(start id, level, summary frame)`, ascending
    /// by start. Empty when unwindowed or version-1.
    pub sealed: Vec<(u64, u8, Vec<u8>)>,
    /// The active window's summary as a verbatim [`crate::wire`] frame.
    pub summary: Vec<u8>,
}

/// Where a recovery stopped replaying the log.
#[derive(Clone, Debug, PartialEq)]
pub struct LogCorruption {
    /// Sequence number of the damaged segment.
    pub segment: u64,
    /// Byte offset of the first bad frame within it.
    pub offset: u64,
    /// The typed decode failure.
    pub error: RecordError,
    /// Later segments dropped to keep the clean-prefix invariant (always
    /// 0 for a crash-torn tail, which can only sit in the last segment).
    pub segments_dropped: usize,
}

impl std::fmt::Display for LogCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "log segment {} corrupt at byte {} ({}); {} later segment(s) dropped",
            self.segment, self.offset, self.error, self.segments_dropped
        )
    }
}

/// What [`crate::SketchStore::recover`] found and did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint restored from, if any.
    pub checkpoint_seq: Option<u64>,
    /// Keys restored from the checkpoint.
    pub checkpoint_keys: usize,
    /// Newer checkpoints rejected as corrupt before one loaded (each
    /// recorded with its typed cause).
    pub checkpoints_rejected: Vec<(u64, CheckpointError)>,
    /// Log segments scanned during replay.
    pub segments_scanned: usize,
    /// Records applied from the log.
    pub records_applied: u64,
    /// Records skipped because the checkpoint already covered them.
    pub records_skipped: u64,
    /// The torn/corrupt tail that stopped replay, if any. Typed, never a
    /// panic; everything before it was applied, nothing after it was.
    pub corruption: Option<LogCorruption>,
}

/// What one checkpoint pass wrote and reclaimed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Sequence number of the checkpoint file written.
    pub seq: u64,
    /// Keys captured.
    pub keys: usize,
    /// Bytes in the checkpoint file.
    pub bytes: u64,
    /// Log segments deleted behind the checkpoint.
    pub segments_pruned: usize,
    /// Older checkpoint files deleted.
    pub checkpoints_pruned: usize,
}

// ---------------------------------------------------------------------------
// Frame encoding / decoding
// ---------------------------------------------------------------------------

const OP_UPDATE_MANY: u8 = 0x01;
const OP_INGEST: u8 = 0x02;
const OP_REMOVE: u8 = 0x03;
const OP_CKPT_ENTRY: u8 = 0x10;
const OP_CKPT_FOOTER: u8 = 0x1f;

/// A borrowed record for the append path (no allocation beyond the
/// frame buffer itself).
pub(crate) enum WalOpRef<'a> {
    UpdateMany { key: &'a str, value_bits: &'a [u64], window: u64 },
    Ingest { key: &'a str, frame: &'a [u8] },
    Remove { key: &'a str },
}

fn push_frame(out: &mut Vec<u8>, body: &[u8]) {
    debug_assert!(body.len() <= MAX_RECORD_LEN);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
}

fn encode_record(lsn: u64, op: &WalOpRef<'_>) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    let (opcode, key) = match op {
        WalOpRef::UpdateMany { key, .. } => (OP_UPDATE_MANY, key),
        WalOpRef::Ingest { key, .. } => (OP_INGEST, key),
        WalOpRef::Remove { key } => (OP_REMOVE, key),
    };
    body.push(opcode);
    put_varint(&mut body, lsn);
    put_varint(&mut body, key.len() as u64);
    body.extend_from_slice(key.as_bytes());
    match op {
        WalOpRef::UpdateMany { value_bits, window, .. } => {
            put_varint(&mut body, *window);
            put_varint(&mut body, value_bits.len() as u64);
            for bits in *value_bits {
                body.extend_from_slice(&bits.to_le_bytes());
            }
        }
        WalOpRef::Ingest { frame, .. } => body.extend_from_slice(frame),
        WalOpRef::Remove { .. } => {}
    }
    let mut out = Vec::with_capacity(body.len() + FRAME_OVERHEAD);
    push_frame(&mut out, &body);
    out
}

/// Validate an 8-byte file header in `bytes` against `magic`, returning
/// the file's format version (decoding is version-aware downstream).
fn check_header(bytes: &[u8], magic: [u8; 4]) -> Result<u16, RecordError> {
    if bytes.len() < FILE_HEADER_LEN || bytes[0..4] != magic {
        let mut found = [0u8; 4];
        for (i, b) in bytes.iter().take(4).enumerate() {
            found[i] = *b;
        }
        return Err(RecordError::BadFileHeader { found });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version == 0 || version > PERSIST_VERSION {
        return Err(RecordError::UnsupportedVersion { found: version, supported: PERSIST_VERSION });
    }
    let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
    if flags != 0 {
        return Err(RecordError::ReservedFlags { found: flags });
    }
    Ok(version)
}

fn file_header(magic: [u8; 4]) -> [u8; FILE_HEADER_LEN] {
    let mut h = [0u8; FILE_HEADER_LEN];
    h[0..4].copy_from_slice(&magic);
    h[4..6].copy_from_slice(&PERSIST_VERSION.to_le_bytes());
    h
}

/// Split the frame starting at `pos` out of `bytes`. `Ok(None)` at a
/// clean end of file. On success returns `(body_range, end)`.
fn next_frame(
    bytes: &[u8],
    pos: usize,
) -> Result<Option<(std::ops::Range<usize>, usize)>, RecordError> {
    if pos == bytes.len() {
        return Ok(None);
    }
    let have = bytes.len() - pos;
    if have < 4 {
        return Err(RecordError::Torn { offset: pos, needed: FRAME_OVERHEAD, have });
    }
    let len =
        u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]) as usize;
    if len > MAX_RECORD_LEN {
        return Err(RecordError::Oversized { offset: pos, length: len });
    }
    let needed = len + FRAME_OVERHEAD;
    if have < needed {
        return Err(RecordError::Torn { offset: pos, needed, have });
    }
    let body = pos + 4..pos + 4 + len;
    let crc_at = body.end;
    let stored = u32::from_le_bytes([
        bytes[crc_at],
        bytes[crc_at + 1],
        bytes[crc_at + 2],
        bytes[crc_at + 3],
    ]);
    let computed = crc32(&bytes[body.clone()]);
    if stored != computed {
        return Err(RecordError::ChecksumMismatch { offset: pos, stored, computed });
    }
    Ok(Some((body, crc_at + 4)))
}

fn malformed(offset: usize, cause: WireError) -> RecordError {
    RecordError::Malformed { offset, cause }
}

/// Decode `(lsn, key, payload_pos)` from a record body (shared prefix of
/// every body kind). `offset` is the frame's file offset, for errors.
fn decode_body_prefix(body: &[u8], offset: usize) -> Result<(u64, String, usize), RecordError> {
    let mut pos = 0usize;
    let lsn = get_varint(body, &mut pos).map_err(|e| malformed(offset, e))?;
    if lsn == 0 {
        return Err(malformed(offset, WireError::ZeroWeight { index: 0 }));
    }
    let key_len = get_varint(body, &mut pos).map_err(|e| malformed(offset, e))?;
    let key_end = (key_len as usize).checked_add(pos).filter(|&end| end <= body.len());
    let Some(key_end) = key_end else {
        return Err(malformed(
            offset,
            WireError::Truncated { needed: key_len as usize, have: body.len() - pos },
        ));
    };
    let Ok(key) = std::str::from_utf8(&body[pos..key_end]) else {
        return Err(malformed(offset, WireError::MalformedVarint { offset: pos }));
    };
    Ok((lsn, key.to_string(), key_end))
}

fn decode_record(body: &[u8], offset: usize, version: u16) -> Result<WalRecord, RecordError> {
    let Some((&opcode, rest)) = body.split_first() else {
        return Err(malformed(offset, WireError::Truncated { needed: 1, have: 0 }));
    };
    let (lsn, key, mut pos) = decode_body_prefix(rest, offset)?;
    let op = match opcode {
        OP_UPDATE_MANY => {
            // Version 1 predates windowing: those batches belong to
            // window 0, which is exactly where an unwindowed store puts
            // everything.
            let window = if version >= 2 {
                get_varint(rest, &mut pos).map_err(|e| malformed(offset, e))?
            } else {
                0
            };
            let count = get_varint(rest, &mut pos).map_err(|e| malformed(offset, e))?;
            let remaining = rest.len() - pos;
            if count.checked_mul(8) != Some(remaining as u64) {
                return Err(malformed(
                    offset,
                    WireError::Truncated {
                        needed: count.saturating_mul(8) as usize,
                        have: remaining,
                    },
                ));
            }
            // Bounded by the body length actually read — never by the
            // (attacker-controllable) count alone.
            let mut value_bits = Vec::with_capacity(count as usize);
            for chunk in rest[pos..].chunks_exact(8) {
                value_bits.push(u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)")));
            }
            RecordOp::UpdateMany { key, value_bits, window }
        }
        OP_INGEST => {
            let frame = rest[pos..].to_vec();
            // Validate the embedded summary now: a corrupt payload is a
            // typed scan error, not a replay-time surprise.
            if let Err(cause) = decode_summary(&frame) {
                return Err(malformed(offset, cause));
            }
            RecordOp::Ingest { key, frame }
        }
        OP_REMOVE => {
            if pos != rest.len() {
                return Err(malformed(
                    offset,
                    WireError::TrailingBytes { extra: rest.len() - pos },
                ));
            }
            RecordOp::Remove { key }
        }
        other => return Err(RecordError::BadOpcode { offset, found: other }),
    };
    Ok(WalRecord { lsn, op })
}

/// Scan a whole segment image: header check, then frames until the first
/// error or a clean end. All allocations are bounded by `bytes.len()`.
pub fn parse_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan::default();
    let version = match check_header(bytes, SEGMENT_MAGIC) {
        Ok(v) => v,
        Err(e) => {
            scan.error = Some((0, e));
            return scan;
        }
    };
    let mut pos = FILE_HEADER_LEN;
    loop {
        match next_frame(bytes, pos) {
            Ok(None) => return scan,
            Ok(Some((body, end))) => match decode_record(&bytes[body], pos, version) {
                Ok(record) => {
                    scan.records.push(ParsedRecord { record, start: pos, end });
                    pos = end;
                }
                Err(e) => {
                    scan.error = Some((pos, e));
                    return scan;
                }
            },
            Err(e) => {
                scan.error = Some((pos, e));
                return scan;
            }
        }
    }
}

/// Decode a whole checkpoint image. All-or-nothing: any frame error,
/// missing footer, count mismatch, or invalid embedded summary rejects
/// the file (recovery falls back to the previous checkpoint).
pub fn parse_checkpoint(bytes: &[u8]) -> Result<Vec<CheckpointEntry>, CheckpointError> {
    let version = check_header(bytes, CHECKPOINT_MAGIC).map_err(CheckpointError::Frame)?;
    let mut entries = Vec::new();
    let mut pos = FILE_HEADER_LEN;
    let mut footer: Option<u64> = None;
    loop {
        match next_frame(bytes, pos).map_err(CheckpointError::Frame)? {
            None => break,
            Some((body, end)) => {
                if footer.is_some() {
                    // Frames after the footer: the file was not written by
                    // this code; reject it whole.
                    return Err(CheckpointError::MissingFooter);
                }
                let frame = &bytes[body];
                let Some((&opcode, rest)) = frame.split_first() else {
                    return Err(CheckpointError::Frame(malformed(
                        pos,
                        WireError::Truncated { needed: 1, have: 0 },
                    )));
                };
                match opcode {
                    OP_CKPT_ENTRY => {
                        let (lsn, key, payload) =
                            decode_body_prefix(rest, pos).map_err(CheckpointError::Frame)?;
                        let framed = |e: WireError| CheckpointError::Frame(malformed(pos, e));
                        let mut p = payload;
                        let (active_wid, watermark, sealed) = if version >= 2 {
                            let active_wid = get_varint(rest, &mut p).map_err(framed)?;
                            let watermark = get_varint(rest, &mut p).map_err(framed)?;
                            let count = get_varint(rest, &mut p).map_err(framed)?;
                            // Each sealed window needs >= 3 bytes (start,
                            // level, frame length) — bound the allocation
                            // by bytes actually present, never by the
                            // (attacker-controllable) count alone.
                            if count > (rest.len().saturating_sub(p) / 3) as u64 {
                                return Err(framed(WireError::Truncated {
                                    needed: count.saturating_mul(3) as usize,
                                    have: rest.len() - p,
                                }));
                            }
                            let mut sealed = Vec::with_capacity(count as usize);
                            for _ in 0..count {
                                let start = get_varint(rest, &mut p).map_err(framed)?;
                                let Some(&level) = rest.get(p) else {
                                    return Err(framed(WireError::Truncated {
                                        needed: 1,
                                        have: 0,
                                    }));
                                };
                                p += 1;
                                let frame_len = get_varint(rest, &mut p).map_err(framed)?;
                                let end = (frame_len as usize)
                                    .checked_add(p)
                                    .filter(|&end| end <= rest.len());
                                let Some(end) = end else {
                                    return Err(framed(WireError::Truncated {
                                        needed: frame_len as usize,
                                        have: rest.len() - p,
                                    }));
                                };
                                let frame = rest[p..end].to_vec();
                                if let Err(cause) = decode_summary(&frame) {
                                    return Err(CheckpointError::BadSummary {
                                        index: entries.len(),
                                        cause,
                                    });
                                }
                                sealed.push((start, level, frame));
                                p = end;
                            }
                            (active_wid, watermark, sealed)
                        } else {
                            (0, 0, Vec::new())
                        };
                        let summary = rest[p..].to_vec();
                        if let Err(cause) = decode_summary(&summary) {
                            return Err(CheckpointError::BadSummary {
                                index: entries.len(),
                                cause,
                            });
                        }
                        entries.push(CheckpointEntry {
                            key,
                            lsn,
                            active_wid,
                            watermark,
                            sealed,
                            summary,
                        });
                    }
                    OP_CKPT_FOOTER => {
                        let mut fpos = 0usize;
                        let count = get_varint(rest, &mut fpos)
                            .map_err(|e| CheckpointError::Frame(malformed(pos, e)))?;
                        if fpos != rest.len() {
                            return Err(CheckpointError::Frame(malformed(
                                pos,
                                WireError::TrailingBytes { extra: rest.len() - fpos },
                            )));
                        }
                        footer = Some(count);
                    }
                    other => {
                        return Err(CheckpointError::Frame(RecordError::BadOpcode {
                            offset: pos,
                            found: other,
                        }))
                    }
                }
                pos = end;
            }
        }
    }
    match footer {
        None => Err(CheckpointError::MissingFooter),
        Some(stored) if stored != entries.len() as u64 => {
            Err(CheckpointError::CountMismatch { stored, found: entries.len() as u64 })
        }
        Some(_) => Ok(entries),
    }
}

// ---------------------------------------------------------------------------
// File naming and directory layout
// ---------------------------------------------------------------------------

/// File name of log segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:016x}.log")
}

/// File name of checkpoint `seq` (covers segments `<= seq`).
pub fn checkpoint_file_name(seq: u64) -> String {
    format!("ckpt-{seq:016x}.ck")
}

fn checkpoint_tmp_name(seq: u64) -> String {
    format!("ckpt-{seq:016x}.tmp")
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// What a data directory contains (sorted ascending by sequence).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct DirListing {
    pub(crate) segments: Vec<u64>,
    pub(crate) checkpoints: Vec<u64>,
    pub(crate) stale_tmp: Vec<PathBuf>,
}

pub(crate) fn scan_dir(dir: &Path) -> Result<DirListing, PersistError> {
    let mut listing = DirListing::default();
    let entries = std::fs::read_dir(dir).map_err(|e| PersistError::new("read_dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::new("read_dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_seq(name, "wal-", ".log") {
            listing.segments.push(seq);
        } else if let Some(seq) = parse_seq(name, "ckpt-", ".ck") {
            listing.checkpoints.push(seq);
        } else if parse_seq(name, "ckpt-", ".tmp").is_some() {
            listing.stale_tmp.push(entry.path());
        }
    }
    listing.segments.sort_unstable();
    listing.checkpoints.sort_unstable();
    Ok(listing)
}

/// Best-effort directory fsync (directory entries are metadata; some
/// filesystems decline to sync a directory handle — never fatal).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

pub(crate) fn read_file(path: &Path) -> Result<Vec<u8>, PersistError> {
    let mut file = File::open(path).map_err(|e| PersistError::new("open", path, e))?;
    // Size-hint the allocation from real file metadata — reading a
    // corrupt file allocates what the file holds, nothing more.
    let len = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
    let mut bytes = Vec::with_capacity(len.min(1 << 30));
    file.read_to_end(&mut bytes).map_err(|e| PersistError::new("read", path, e))?;
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// The live log writer
// ---------------------------------------------------------------------------

/// What one append did (for the caller's telemetry).
pub(crate) struct AppendOutcome {
    pub(crate) lsn: u64,
    pub(crate) bytes: u64,
}

/// The open, append-only end of the segment log. Owned by the store
/// behind a mutex; every public method is `&mut self` or a brief read.
///
/// The append path never fsyncs: it encodes, buffers the frame into the
/// OS, and assigns the LSN — all cheap — so holding this mutex (and the
/// stripe lock outside it) across an append costs microseconds, not a
/// disk round-trip. Durability is the [`CommitSequencer`]'s job.
pub(crate) struct Wal {
    dir: PathBuf,
    file: File,
    seq: u64,
    next_lsn: u64,
    /// Appends since the last checkpoint — `0` lets a sweep skip
    /// checkpointing an idle store.
    pub(crate) dirty_records: u64,
    /// A failed append or sync poisons the log: the store keeps serving
    /// from memory, but stops pretending to be durable (counted and
    /// evented by the caller).
    pub(crate) poisoned: bool,
    /// A sealed-but-not-yet-fsynced predecessor segment: a dup of its
    /// handle plus its path, set by [`Wal::install_segment`] and cleared
    /// by [`Wal::seal_complete`] once the rotation's seal fsync lands.
    /// LSNs are global across segments, so while this is set a sync of
    /// the active file alone does NOT cover every LSN up to
    /// `last_lsn()` — [`Wal::sync_point`] captures this handle too so a
    /// group-commit leader racing the rotation window fsyncs both files
    /// before the durable watermark advances past the sealed LSNs.
    pending_seal: Option<(File, PathBuf)>,
}

pub(crate) fn create_segment(dir: &Path, seq: u64) -> Result<File, PersistError> {
    let path = dir.join(segment_file_name(seq));
    let mut file = OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
        .map_err(|e| PersistError::new("create", &path, e))?;
    file.write_all(&file_header(SEGMENT_MAGIC))
        .map_err(|e| PersistError::new("write", &path, e))?;
    file.sync_data().map_err(|e| PersistError::new("fsync", &path, e))?;
    sync_dir(dir);
    Ok(file)
}

impl Wal {
    /// Open a fresh active segment `seq` in `dir` and hand out LSNs from
    /// `next_lsn` up.
    pub(crate) fn create(dir: &Path, seq: u64, next_lsn: u64) -> Result<Self, PersistError> {
        let file = create_segment(dir, seq)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            seq,
            next_lsn: next_lsn.max(1),
            dirty_records: 0,
            poisoned: false,
            pending_seal: None,
        })
    }

    /// Append one record: encode, buffered write, LSN assignment — no
    /// fsync, under any policy. Durability is granted afterwards by the
    /// [`CommitSequencer`], outside the caller's stripe-lock hold.
    pub(crate) fn append(&mut self, op: &WalOpRef<'_>) -> Result<AppendOutcome, PersistError> {
        let lsn = self.next_lsn;
        let frame = encode_record(lsn, op);
        let path = self.dir.join(segment_file_name(self.seq));
        self.file.write_all(&frame).map_err(|e| PersistError::new("append", path, e))?;
        self.next_lsn += 1;
        self.dirty_records += 1;
        Ok(AppendOutcome { lsn, bytes: frame.len() as u64 })
    }

    /// Highest LSN appended so far (`0` before the first append).
    pub(crate) fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Sequence number of the active segment.
    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    /// Capture a sync point: duplicate handles to every file holding a
    /// not-yet-sealed LSN, plus the highest LSN written so far. The
    /// caller releases this mutex, then [`SyncTicket::sync`]s with
    /// **no** lock held — every LSN up to `covered` was `write_all`'d
    /// before the handles were cloned (both happen under this mutex),
    /// and the clones share their file descriptions, so `fdatasync`ing
    /// them covers those LSNs. When a rotation is mid-flight (segment
    /// swapped in, seal fsync not yet landed) `covered` spans **two**
    /// files, so the ticket carries the sealed predecessor's handle too;
    /// syncing the active file alone would let the watermark advance
    /// past LSNs that live only in the unsynced sealed file.
    pub(crate) fn sync_point(&self) -> Result<SyncTicket, PersistError> {
        let path = self.dir.join(segment_file_name(self.seq));
        let file = self.file.try_clone().map_err(|e| PersistError::new("dup", path.clone(), e))?;
        let sealed = match &self.pending_seal {
            Some((file, path)) => Some((
                file.try_clone().map_err(|e| PersistError::new("dup", path.clone(), e))?,
                path.clone(),
            )),
            None => None,
        };
        Ok(SyncTicket { file, covered: self.last_lsn(), path, sealed })
    }

    /// Fsync the active segment in place, under the mutex. Only the
    /// legacy per-writer-fsync mode (`StoreConfig::wal_group_commit =
    /// false`, the bench baseline) uses this.
    pub(crate) fn sync_inline(&mut self) -> Result<(), PersistError> {
        let path = self.dir.join(segment_file_name(self.seq));
        self.file.sync_data().map_err(|e| PersistError::new("fsync", path, e))
    }

    /// Swap in a freshly created successor segment (built by
    /// [`create_segment`] with no lock held) and seal the current one.
    /// Returns the sealed segment's file — **not yet fsync'd**; the
    /// caller syncs it outside every lock, then reports back via
    /// [`Wal::seal_complete`] — plus the highest LSN it holds and its
    /// path (for error reporting). Until `seal_complete`, a dup of the
    /// sealed handle stays in `pending_seal` so racing sync points keep
    /// covering its LSNs. Fails (log state untouched) only if the
    /// handle cannot be duplicated.
    pub(crate) fn install_segment(
        &mut self,
        fresh: File,
    ) -> Result<(File, u64, PathBuf), PersistError> {
        let sealed_path = self.dir.join(segment_file_name(self.seq));
        let dup =
            self.file.try_clone().map_err(|e| PersistError::new("dup", sealed_path.clone(), e))?;
        let sealed = std::mem::replace(&mut self.file, fresh);
        self.pending_seal = Some((dup, sealed_path.clone()));
        let covered = self.last_lsn();
        self.seq += 1;
        self.dirty_records = 0;
        Ok((sealed, covered, sealed_path))
    }

    /// The rotation's seal fsync landed: every sealed LSN is on disk,
    /// so sync points go back to covering the active segment alone.
    pub(crate) fn seal_complete(&mut self) {
        self.pending_seal = None;
    }
}

/// A captured sync point: sync the file(s), get back the covered LSN.
pub(crate) struct SyncTicket {
    file: File,
    covered: u64,
    path: PathBuf,
    /// A rotation's sealed-but-unsynced predecessor, captured inside the
    /// rotation window: it holds LSNs at or below `covered`, so it must
    /// reach disk before the watermark may advance to `covered`.
    sealed: Option<(File, PathBuf)>,
}

impl SyncTicket {
    /// `fdatasync` the captured handle(s) (call with no lock held — this
    /// is the ~170µs disk wait the whole split exists to isolate). The
    /// sealed predecessor, if any, syncs first: `covered` is a global
    /// LSN spanning both files, and `ack ⇒ durable` requires every LSN
    /// at or below it on disk before anyone advances the watermark.
    pub(crate) fn sync(self) -> Result<u64, PersistError> {
        if let Some((file, path)) = &self.sealed {
            file.sync_data().map_err(|e| PersistError::new("fsync", path, e))?;
        }
        self.file.sync_data().map_err(|e| PersistError::new("fsync", &self.path, e))?;
        Ok(self.covered)
    }
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

/// What one group commit covered (for the caller's telemetry).
pub(crate) struct GroupOutcome {
    /// The `durable_lsn` watermark after this sync.
    pub(crate) covered: u64,
    /// Appends newly made durable by this sync — the group size. `0`
    /// only if a concurrent rotation's seal fsync covered them first.
    pub(crate) group: u64,
}

/// Why a durable wait failed.
pub(crate) enum WaitError {
    /// This caller's own sync I/O failed (it poisoned the log; count
    /// and event it once).
    Io(PersistError),
    /// Someone else poisoned the log — already counted and evented by
    /// the poisoner; callers must not double-count.
    Poisoned,
}

/// Leader-based group commit: a `durable_lsn` watermark behind a
/// mutex+condvar. A durable writer appends under the WAL mutex (inside
/// its stripe-lock hold), releases both, then parks here until the
/// watermark passes its LSN. The first parked waiter whose LSN is not
/// yet covered becomes **sync leader**: it captures a sync point,
/// fsyncs once with no lock held — covering every LSN appended so far,
/// its own and every concurrent writer's — advances the watermark, and
/// wakes all covered waiters. N concurrent durable writers therefore
/// share ~1 fsync instead of paying N sequential ones, and no stripe
/// lock is ever held across the disk wait.
///
/// **Lock order**: the state mutex is leaf-most on the wait path — the
/// leader drops it before taking the WAL mutex, and nothing acquires the
/// WAL mutex while holding it. (The append path takes state *after* the
/// WAL mutex only to poison, which is compatible.)
pub(crate) struct CommitSequencer {
    state: Mutex<CommitState>,
    cond: Condvar,
}

struct CommitState {
    /// Every LSN at or below this is on disk.
    durable: u64,
    /// A leader is currently syncing; later arrivals park instead of
    /// electing a second one.
    leader: bool,
    /// Mirror of [`Wal::poisoned`] that wakes *all* waiters with the
    /// error — without it, writers parked on the watermark would hang
    /// forever once the log stops advancing.
    poisoned: bool,
    /// When the last physical sync finished — `Interval` coalescing
    /// checks this here, on the sync path, not under the append mutex.
    last_sync: Instant,
    /// Whether the zero-delay leader should hold its election open for
    /// racing appenders (see `wait_durable`). Set when concurrency is
    /// observed — a waiter parks behind a busy leader, or a group of
    /// ≥2 forms — and cleared when groups collapse back to 1, so a
    /// lone durable writer never pays a yield for company that is not
    /// coming.
    hold_open: bool,
}

impl CommitSequencer {
    /// A sequencer whose watermark starts at `durable` (recovery passes
    /// the last recovered LSN: everything replayed from disk is durable
    /// by definition).
    pub(crate) fn new(durable: u64) -> Self {
        CommitSequencer {
            state: Mutex::new(CommitState {
                durable,
                leader: false,
                poisoned: false,
                last_sync: Instant::now(),
                hold_open: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Block until `lsn` is durable (or the log is poisoned), electing
    /// this caller as sync leader if nobody is syncing. Returns
    /// `Ok(Some(outcome))` iff this caller performed the physical sync —
    /// the caller owns the group's telemetry; followers get `Ok(None)`.
    ///
    /// `group_delay` is an optional leader hold-off before capturing the
    /// sync point: a non-zero delay widens groups at the cost of ack
    /// latency (the knob is [`crate::StoreConfig::group_commit_delay`]).
    pub(crate) fn wait_durable(
        &self,
        lsn: u64,
        wal: &Mutex<Wal>,
        group_delay: Duration,
    ) -> Result<Option<GroupOutcome>, WaitError> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.durable >= lsn {
                return Ok(None);
            }
            if state.poisoned {
                return Err(WaitError::Poisoned);
            }
            if state.leader {
                // Parking behind a busy leader is proof of concurrent
                // durable writers: tell future leaders to hold their
                // election open.
                state.hold_open = true;
                state = self.cond.wait(state).unwrap();
                continue;
            }
            state.leader = true;
            let hold_open = state.hold_open;
            drop(state);
            if !group_delay.is_zero() {
                // Hold the election open: writers appending during the
                // delay ride this sync instead of the next one.
                std::thread::sleep(group_delay);
            } else if hold_open {
                // Concurrency was observed, so hold the zero-delay
                // election open until appends quiesce: writers the
                // previous sync just woke are typically about to land
                // their next record, and capturing the sync point ahead
                // of them (acutely on few cores, where the wake-up
                // queue runs only when this thread yields) collapses
                // groups toward one. Sample the tail, yield one
                // scheduling window, and capture as soon as a window
                // adds nothing; the round cap bounds the ack-latency
                // cost. A lone writer never enters this loop — yields
                // donate real time to unrelated load — because solo
                // groups clear `hold_open` below.
                let mut tail = wal.lock().unwrap().last_lsn();
                for _ in 0..8 {
                    std::thread::yield_now();
                    let now = wal.lock().unwrap().last_lsn();
                    if now == tail {
                        break;
                    }
                    tail = now;
                }
            }
            // Brief WAL-mutex hold to capture the sync point; the fsync
            // itself runs with no lock held at all.
            let ticket = {
                let wal = wal.lock().unwrap();
                if wal.poisoned {
                    None
                } else {
                    Some(wal.sync_point())
                }
            };
            let result = match ticket {
                None => Err(None), // an appender poisoned the log meanwhile
                Some(Ok(ticket)) => ticket.sync().map_err(Some),
                Some(Err(e)) => Err(Some(e)),
            };
            match result {
                Ok(covered) => {
                    let mut state = self.state.lock().unwrap();
                    state.leader = false;
                    // `covered` was read after our own append, so it is
                    // at or above `lsn`: this wait is over. The group is
                    // whatever the watermark jumps by (a racing
                    // rotation's seal may have advanced it already).
                    let group = covered.saturating_sub(state.durable);
                    state.durable = state.durable.max(covered);
                    state.last_sync = Instant::now();
                    // Concurrency hysteresis for the next election: a
                    // multi-append group means writers are racing (keep
                    // holding elections open), a solo group means they
                    // are not (stop paying the yield).
                    state.hold_open = group >= 2;
                    drop(state);
                    self.cond.notify_all();
                    return Ok(Some(GroupOutcome { covered, group }));
                }
                Err(cause) => {
                    if cause.is_some() {
                        wal.lock().unwrap().poisoned = true;
                    }
                    let mut state = self.state.lock().unwrap();
                    state.leader = false;
                    state.poisoned = true;
                    drop(state);
                    self.cond.notify_all();
                    return match cause {
                        Some(e) => Err(WaitError::Io(e)),
                        None => Err(WaitError::Poisoned),
                    };
                }
            }
        }
    }

    /// Advance the watermark to `covered` (a rotation's seal fsync made
    /// everything in the sealed segment durable), waking covered
    /// waiters. Returns how many appends newly became durable.
    pub(crate) fn advance(&self, covered: u64) -> u64 {
        let mut state = self.state.lock().unwrap();
        let newly = covered.saturating_sub(state.durable);
        state.durable = state.durable.max(covered);
        state.last_sync = Instant::now();
        drop(state);
        if newly > 0 {
            self.cond.notify_all();
        }
        newly
    }

    /// Mark the log poisoned and wake **all** waiters with the error —
    /// the append path calls this after a failed `Wal::append` so no
    /// durable writer hangs on a watermark that will never advance.
    pub(crate) fn poison(&self) {
        let mut state = self.state.lock().unwrap();
        state.poisoned = true;
        drop(state);
        self.cond.notify_all();
    }

    /// Whether an `Interval(every)` sync is due for `lsn`: the interval
    /// elapsed since the last physical sync and `lsn` is not yet
    /// durable. Checked here — on the sync path — so the decision is
    /// neither taken nor paid under the append mutex, and concurrent
    /// appenders coalesce into one interval sync.
    pub(crate) fn interval_due(&self, every: Duration, lsn: u64) -> bool {
        let state = self.state.lock().unwrap();
        state.durable < lsn && !state.poisoned && state.last_sync.elapsed() >= every
    }

    /// Sync everything appended so far (housekeeping sweeps and clean
    /// shutdown call this so `Interval`/`Off` tails reach disk).
    /// `Ok(None)` when nothing is pending.
    pub(crate) fn force_sync(&self, wal: &Mutex<Wal>) -> Result<Option<GroupOutcome>, WaitError> {
        let last = {
            let wal = wal.lock().unwrap();
            if wal.poisoned {
                return Err(WaitError::Poisoned);
            }
            wal.last_lsn()
        };
        if last == 0 {
            return Ok(None);
        }
        {
            let state = self.state.lock().unwrap();
            if state.durable >= last {
                return Ok(None);
            }
        }
        self.wait_durable(last, wal, Duration::ZERO)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint writing and pruning
// ---------------------------------------------------------------------------

/// Write checkpoint `seq` durably: temp file, fsync, rename, dir fsync.
/// Returns the file's byte size.
pub(crate) fn write_checkpoint(
    dir: &Path,
    seq: u64,
    entries: &[CheckpointEntry],
) -> Result<u64, PersistError> {
    let mut image = Vec::with_capacity(
        FILE_HEADER_LEN
            + entries
                .iter()
                .map(|e| {
                    e.summary.len()
                        + e.key.len()
                        + 48
                        + e.sealed.iter().map(|(_, _, f)| f.len() + 12).sum::<usize>()
                })
                .sum::<usize>(),
    );
    image.extend_from_slice(&file_header(CHECKPOINT_MAGIC));
    let mut body = Vec::new();
    for entry in entries {
        body.clear();
        body.push(OP_CKPT_ENTRY);
        put_varint(&mut body, entry.lsn);
        put_varint(&mut body, entry.key.len() as u64);
        body.extend_from_slice(entry.key.as_bytes());
        put_varint(&mut body, entry.active_wid);
        put_varint(&mut body, entry.watermark);
        put_varint(&mut body, entry.sealed.len() as u64);
        for (start, level, frame) in &entry.sealed {
            put_varint(&mut body, *start);
            body.push(*level);
            put_varint(&mut body, frame.len() as u64);
            body.extend_from_slice(frame);
        }
        body.extend_from_slice(&entry.summary);
        push_frame(&mut image, &body);
    }
    body.clear();
    body.push(OP_CKPT_FOOTER);
    put_varint(&mut body, entries.len() as u64);
    push_frame(&mut image, &body);

    let tmp = dir.join(checkpoint_tmp_name(seq));
    let path = dir.join(checkpoint_file_name(seq));
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| PersistError::new("create", &tmp, e))?;
    file.write_all(&image).map_err(|e| PersistError::new("write", &tmp, e))?;
    file.sync_all().map_err(|e| PersistError::new("fsync", &tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, &path).map_err(|e| PersistError::new("rename", &path, e))?;
    sync_dir(dir);
    Ok(image.len() as u64)
}

/// Delete segments with `seq <= upto` and checkpoints with `seq < upto`
/// (the checkpoint named `upto` is the live one). Best-effort per file —
/// a file that refuses deletion is skipped, not fatal (recovery ignores
/// superseded files anyway).
pub(crate) fn prune_obsolete(dir: &Path, upto: u64) -> (usize, usize) {
    let Ok(listing) = scan_dir(dir) else { return (0, 0) };
    let mut segments = 0usize;
    let mut checkpoints = 0usize;
    for seq in listing.segments.iter().filter(|&&s| s <= upto) {
        if std::fs::remove_file(dir.join(segment_file_name(*seq))).is_ok() {
            segments += 1;
        }
    }
    for seq in listing.checkpoints.iter().filter(|&&s| s < upto) {
        if std::fs::remove_file(dir.join(checkpoint_file_name(*seq))).is_ok() {
            checkpoints += 1;
        }
    }
    if segments + checkpoints > 0 {
        sync_dir(dir);
    }
    (segments, checkpoints)
}

/// Truncate segment `seq` to `len` bytes (cutting a torn/corrupt tail)
/// and delete every segment after `seq`, restoring the clean-prefix
/// invariant for the *next* recovery. A `len` below the fixed header —
/// i.e. the header itself never reached disk — deletes the file instead:
/// a headerless stub holds nothing recoverable.
pub(crate) fn truncate_log(
    dir: &Path,
    seq: u64,
    len: u64,
    later: &[u64],
) -> Result<usize, PersistError> {
    let path = dir.join(segment_file_name(seq));
    if len < FILE_HEADER_LEN as u64 {
        std::fs::remove_file(&path).map_err(|e| PersistError::new("remove", &path, e))?;
    } else {
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| PersistError::new("open", &path, e))?;
        file.set_len(len).map_err(|e| PersistError::new("truncate", &path, e))?;
        file.sync_all().map_err(|e| PersistError::new("fsync", &path, e))?;
    }
    let mut dropped = 0usize;
    for &later_seq in later {
        let later_path = dir.join(segment_file_name(later_seq));
        std::fs::remove_file(&later_path)
            .map_err(|e| PersistError::new("remove", &later_path, e))?;
        dropped += 1;
    }
    sync_dir(dir);
    Ok(dropped)
}

/// The durable state a directory scan recovers, before it is applied to
/// a store: the chosen checkpoint, the replayable record stream, and the
/// bookkeeping the store needs to resume logging.
pub(crate) struct RecoveredLog {
    pub(crate) checkpoint: Option<(u64, Vec<CheckpointEntry>)>,
    pub(crate) records: Vec<WalRecord>,
    pub(crate) report: RecoveryReport,
    /// First LSN the resumed log may assign.
    pub(crate) next_lsn: u64,
    /// Sequence the resumed active segment should use.
    pub(crate) next_seq: u64,
}

/// Read everything durable out of `dir` (creating it if missing) and
/// repair the log tail: stale temp files are removed, a torn/corrupt
/// tail is truncated away and later segments dropped. Pure I/O — the
/// caller applies the result to a store.
pub(crate) fn recover_dir(dir: &Path) -> Result<RecoveredLog, PersistError> {
    std::fs::create_dir_all(dir).map_err(|e| PersistError::new("create_dir", dir, e))?;
    let listing = scan_dir(dir)?;
    for tmp in &listing.stale_tmp {
        let _ = std::fs::remove_file(tmp);
    }
    let mut report = RecoveryReport::default();
    let mut max_lsn = 0u64;

    // Newest fully-valid checkpoint wins; corrupt ones are recorded and
    // skipped (their predecessor's segments are still on disk, because
    // pruning runs only after a successor checkpoint is durable).
    let mut checkpoint: Option<(u64, Vec<CheckpointEntry>)> = None;
    for &seq in listing.checkpoints.iter().rev() {
        let path = dir.join(checkpoint_file_name(seq));
        match parse_checkpoint(&read_file(&path)?) {
            Ok(entries) => {
                for entry in &entries {
                    max_lsn = max_lsn.max(entry.lsn);
                }
                report.checkpoint_seq = Some(seq);
                report.checkpoint_keys = entries.len();
                checkpoint = Some((seq, entries));
                break;
            }
            Err(e) => report.checkpoints_rejected.push((seq, e)),
        }
    }
    let ckpt_seq = checkpoint.as_ref().map(|(seq, _)| *seq);

    // Replay candidates: segments the checkpoint does not cover.
    // (`Option` orders `None < Some(_)`, so no checkpoint replays all.)
    let replayable: Vec<u64> =
        listing.segments.iter().copied().filter(|&s| Some(s) > ckpt_seq).collect();
    let mut records = Vec::new();
    for (ix, &seq) in replayable.iter().enumerate() {
        report.segments_scanned += 1;
        let path = dir.join(segment_file_name(seq));
        let scan = parse_segment(&read_file(&path)?);
        for parsed in &scan.records {
            max_lsn = max_lsn.max(parsed.record.lsn);
        }
        records.extend(scan.records.into_iter().map(|p| p.record));
        if let Some((offset, error)) = scan.error {
            // Clean-prefix stop: truncate the damaged tail and drop the
            // segments after it so the next startup sees a valid log.
            // Header errors report offset 0, which `truncate_log` turns
            // into deleting the stub outright.
            let dropped = truncate_log(dir, seq, offset as u64, &replayable[ix + 1..])?;
            report.corruption = Some(LogCorruption {
                segment: seq,
                offset: offset as u64,
                error,
                segments_dropped: dropped,
            });
            break;
        }
    }

    let next_seq = listing.segments.iter().copied().max().unwrap_or(ckpt_seq.unwrap_or(0)) + 1;
    Ok(RecoveredLog { checkpoint, records, report, next_lsn: max_lsn + 1, next_seq })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the rotation/group-commit durability race: a
    /// sync point captured inside the rotation window (segment swapped
    /// in, seal fsync not yet landed) must cover the sealed predecessor
    /// too — its LSNs are at or below `covered`, and advancing the
    /// durable watermark on an fdatasync of the fresh file alone would
    /// ack writers whose records are only in the unsynced sealed file.
    #[test]
    fn sync_point_inside_a_rotation_window_covers_the_sealed_segment() {
        let dir = qc_workloads::tempdir::TempDir::new("persist-pending-seal");
        let mut wal = Wal::create(dir.path(), 1, 1).unwrap();
        for _ in 0..3 {
            wal.append(&WalOpRef::UpdateMany { key: "k", value_bits: &[1], window: 0 }).unwrap();
        }
        // Rotate like `checkpoint()` does: create the successor, install
        // it, but do NOT seal-fsync yet — we are inside the race window.
        let fresh = create_segment(dir.path(), 2).unwrap();
        let (sealed_file, covered, _path) = wal.install_segment(fresh).unwrap();
        assert_eq!(covered, 3);
        // A leader electing now gets a two-file ticket and still covers
        // the global tail.
        let ticket = wal.sync_point().unwrap();
        assert!(ticket.sealed.is_some(), "ticket in the rotation window must carry the seal");
        assert_eq!(ticket.covered, 3);
        assert_eq!(ticket.sync().unwrap(), 3);
        // Once the rotation's seal fsync lands, tickets go back to the
        // active segment alone.
        sealed_file.sync_data().unwrap();
        wal.seal_complete();
        let ticket = wal.sync_point().unwrap();
        assert!(ticket.sealed.is_none(), "seal_complete must clear the pending seal");
    }

    #[test]
    fn record_roundtrips_through_a_frame() {
        let frame = encode_record(
            7,
            &WalOpRef::UpdateMany { key: "lat", value_bits: &[1, 2, u64::MAX], window: 42 },
        );
        let mut image = file_header(SEGMENT_MAGIC).to_vec();
        image.extend_from_slice(&frame);
        let scan = parse_segment(&image);
        assert_eq!(scan.error, None);
        assert_eq!(scan.records.len(), 1);
        let rec = &scan.records[0].record;
        assert_eq!(rec.lsn, 7);
        assert_eq!(
            rec.op,
            RecordOp::UpdateMany {
                key: "lat".into(),
                value_bits: vec![1, 2, u64::MAX],
                window: 42
            }
        );
        assert_eq!(scan.records[0].start, FILE_HEADER_LEN);
        assert_eq!(scan.records[0].end, image.len());
    }

    /// A version-1 segment (no window varint in update bodies) decodes
    /// with every batch assigned to window 0.
    #[test]
    fn v1_segments_replay_into_window_zero() {
        let mut image = Vec::new();
        image.extend_from_slice(&SEGMENT_MAGIC);
        image.extend_from_slice(&1u16.to_le_bytes());
        image.extend_from_slice(&0u16.to_le_bytes());
        let mut body = Vec::new();
        body.push(OP_UPDATE_MANY);
        put_varint(&mut body, 9); // lsn
        put_varint(&mut body, 1); // key length
        body.push(b'k');
        put_varint(&mut body, 2); // count — no window varint in v1
        body.extend_from_slice(&11u64.to_le_bytes());
        body.extend_from_slice(&22u64.to_le_bytes());
        push_frame(&mut image, &body);
        let scan = parse_segment(&image);
        assert_eq!(scan.error, None);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(
            scan.records[0].record.op,
            RecordOp::UpdateMany { key: "k".into(), value_bits: vec![11, 22], window: 0 }
        );
    }

    /// A version-1 checkpoint entry (payload is the bare summary frame)
    /// decodes with no windowed state.
    #[test]
    fn v1_checkpoints_decode_without_windows() {
        let summary = crate::wire::encode_summary(&qc_common::summary::WeightedSummary::empty());
        let mut image = Vec::new();
        image.extend_from_slice(&CHECKPOINT_MAGIC);
        image.extend_from_slice(&1u16.to_le_bytes());
        image.extend_from_slice(&0u16.to_le_bytes());
        let mut body = Vec::new();
        body.push(OP_CKPT_ENTRY);
        put_varint(&mut body, 3); // lsn
        put_varint(&mut body, 1); // key length
        body.push(b'a');
        body.extend_from_slice(&summary);
        push_frame(&mut image, &body);
        body.clear();
        body.push(OP_CKPT_FOOTER);
        put_varint(&mut body, 1);
        push_frame(&mut image, &body);
        let entries = parse_checkpoint(&image).unwrap();
        assert_eq!(
            entries,
            vec![CheckpointEntry {
                key: "a".into(),
                lsn: 3,
                active_wid: 0,
                watermark: 0,
                sealed: Vec::new(),
                summary,
            }]
        );
    }

    #[test]
    fn every_truncation_of_a_segment_is_clean_prefix() {
        let mut image = file_header(SEGMENT_MAGIC).to_vec();
        for lsn in 1..=5u64 {
            image.extend_from_slice(&encode_record(
                lsn,
                &WalOpRef::UpdateMany { key: "k", value_bits: &[lsn, lsn * 2], window: lsn },
            ));
        }
        let full = parse_segment(&image);
        assert_eq!(full.records.len(), 5);
        assert_eq!(full.error, None);
        for cut in 0..image.len() {
            let scan = parse_segment(&image[..cut]);
            // The decoded prefix must be an exact prefix of the full log.
            for (i, rec) in scan.records.iter().enumerate() {
                assert_eq!(rec, &full.records[i], "cut={cut}");
            }
            if cut < image.len() {
                assert!(
                    scan.records.len() < 5 || scan.error.is_none(),
                    "cut={cut} decoded too much"
                );
            }
        }
    }

    #[test]
    fn bitflips_are_typed_never_panics() {
        let mut image = file_header(SEGMENT_MAGIC).to_vec();
        image.extend_from_slice(&encode_record(
            1,
            &WalOpRef::Ingest { key: "a", frame: b"not-a-summary" },
        ));
        image.extend_from_slice(&encode_record(2, &WalOpRef::Remove { key: "a" }));
        for bit in 0..image.len() * 8 {
            let mut corrupt = image.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let _ = parse_segment(&corrupt); // must not panic
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut image = file_header(SEGMENT_MAGIC).to_vec();
        image.extend_from_slice(&(u32::MAX).to_le_bytes());
        image.extend_from_slice(&[0u8; 64]);
        let scan = parse_segment(&image);
        assert!(matches!(scan.error, Some((_, RecordError::Oversized { .. }))));
    }

    #[test]
    fn checkpoint_roundtrip_and_footer_enforcement() {
        let dir = std::env::temp_dir().join(format!("qc-persist-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let summary = crate::wire::encode_summary(&qc_common::summary::WeightedSummary::empty());
        let entries = vec![
            CheckpointEntry {
                key: "a".into(),
                lsn: 3,
                active_wid: 7,
                watermark: 9,
                sealed: vec![(4, 1, summary.clone()), (6, 0, summary.clone())],
                summary: summary.clone(),
            },
            CheckpointEntry {
                key: "b".into(),
                lsn: 9,
                active_wid: 0,
                watermark: 0,
                sealed: Vec::new(),
                summary: summary.clone(),
            },
        ];
        write_checkpoint(&dir, 1, &entries).unwrap();
        let path = dir.join(checkpoint_file_name(1));
        let bytes = read_file(&path).unwrap();
        assert_eq!(parse_checkpoint(&bytes).unwrap(), entries);
        // Cutting the footer off rejects the whole file.
        let cut = parse_checkpoint(&bytes[..bytes.len() - 1]);
        assert!(matches!(
            cut,
            Err(CheckpointError::Frame(RecordError::Torn { .. }))
                | Err(CheckpointError::MissingFooter)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seq_file_names_roundtrip() {
        assert_eq!(parse_seq(&segment_file_name(42), "wal-", ".log"), Some(42));
        assert_eq!(parse_seq(&checkpoint_file_name(7), "ckpt-", ".ck"), Some(7));
        assert_eq!(parse_seq("wal-zz.log", "wal-", ".log"), None);
        assert_eq!(parse_seq("wal-00000000000000010.log", "wal-", ".log"), None);
    }
}
