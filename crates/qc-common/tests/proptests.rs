//! Property tests for the shared kernels: the contracts everything
//! upstream relies on.

use proptest::prelude::*;
use qc_common::bits::OrderedBits;
use qc_common::merge::{is_sorted, merge_sorted, merge_sorted_many};
use qc_common::rng::Xoshiro256;
use qc_common::sample::{sample_with_parity, Parity};
use qc_common::summary::{Summary, WeightedItem, WeightedSummary};

proptest! {
    // ---- OrderedBits: the embedding must be a monotone bijection ----

    #[test]
    fn u64_embedding_is_identity(x in any::<u64>()) {
        prop_assert_eq!(x.to_ordered_bits(), x);
        prop_assert_eq!(u64::from_ordered_bits(x), x);
    }

    #[test]
    fn i64_embedding_monotone_bijective(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(i64::from_ordered_bits(a.to_ordered_bits()), a);
        prop_assert_eq!(a < b, a.to_ordered_bits() < b.to_ordered_bits());
    }

    #[test]
    fn i32_embedding_monotone_bijective(a in any::<i32>(), b in any::<i32>()) {
        prop_assert_eq!(i32::from_ordered_bits(a.to_ordered_bits()), a);
        prop_assert_eq!(a < b, a.to_ordered_bits() < b.to_ordered_bits());
    }

    #[test]
    fn f64_embedding_monotone_on_non_nan(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let back = f64::from_ordered_bits(a.to_ordered_bits());
        prop_assert_eq!(back.to_bits(), a.to_bits(), "bit-exact roundtrip");
        if a < b {
            prop_assert!(a.to_ordered_bits() < b.to_ordered_bits());
        }
    }

    #[test]
    fn f32_embedding_monotone_on_non_nan(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let back = f32::from_ordered_bits(a.to_ordered_bits());
        prop_assert_eq!(back.to_bits(), a.to_bits());
        if a < b {
            prop_assert!(a.to_ordered_bits() < b.to_ordered_bits());
        }
    }

    // ---- merge: permutation-preserving, order-preserving ----

    #[test]
    fn merge_is_sorted_union(
        mut a in prop::collection::vec(any::<u64>(), 0..200),
        mut b in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let merged = merge_sorted(&a, &b);
        prop_assert!(is_sorted(&merged));
        let mut expected = [a, b].concat();
        expected.sort_unstable();
        prop_assert_eq!(merged, expected);
    }

    #[test]
    fn multiway_merge_matches_flat_sort(
        parts in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..60), 0..6),
    ) {
        let sorted_parts: Vec<Vec<u64>> = parts
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.sort_unstable();
                p
            })
            .collect();
        let refs: Vec<&[u64]> = sorted_parts.iter().map(|p| p.as_slice()).collect();
        let merged = merge_sorted_many(&refs);
        let mut expected: Vec<u64> = parts.into_iter().flatten().collect();
        expected.sort_unstable();
        prop_assert_eq!(merged, expected);
    }

    // ---- sampling: halving, order, complementarity ----

    #[test]
    fn parities_partition_the_input(mut src in prop::collection::vec(any::<u64>(), 0..300)) {
        src.sort_unstable();
        let even = sample_with_parity(&src, Parity::Even);
        let odd = sample_with_parity(&src, Parity::Odd);
        prop_assert_eq!(even.len() + odd.len(), src.len());
        prop_assert!(is_sorted(&even));
        prop_assert!(is_sorted(&odd));
        // Interleaving them back reproduces the input.
        let mut rebuilt = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            rebuilt.push(if i % 2 == 0 { even[i / 2] } else { odd[i / 2] });
        }
        prop_assert_eq!(rebuilt, src);
    }

    // ---- summaries: weight conservation and estimator laws ----

    #[test]
    fn summary_total_weight_is_sum(items in prop::collection::vec((any::<u64>(), 1u64..100), 0..200)) {
        let expected: u64 = items.iter().map(|&(_, w)| w).sum();
        let summary = WeightedSummary::from_items(
            items.into_iter().map(|(v, w)| WeightedItem { value_bits: v, weight: w }).collect(),
        );
        prop_assert_eq!(summary.stream_len(), expected);
    }

    #[test]
    fn quantile_is_monotone_and_within_range(
        items in prop::collection::vec((any::<u64>(), 1u64..50), 1..150),
        phis in prop::collection::vec(0.0f64..=1.0, 2..10),
    ) {
        let summary = WeightedSummary::from_items(
            items.iter().map(|&(v, w)| WeightedItem { value_bits: v, weight: w }).collect(),
        );
        let mut phis = phis;
        phis.sort_by(f64::total_cmp);
        let qs: Vec<u64> = phis.iter().map(|&p| summary.quantile_bits(p).unwrap()).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let min = items.iter().map(|&(v, _)| v).min().unwrap();
        let max = items.iter().map(|&(v, _)| v).max().unwrap();
        for &q in &qs {
            prop_assert!((min..=max).contains(&q));
        }
    }

    #[test]
    fn rank_quantile_duality(
        values in prop::collection::vec(any::<u64>(), 1..300),
        phi in 0.0f64..1.0,
    ) {
        let summary = WeightedSummary::from_items(
            values.iter().map(|&v| WeightedItem { value_bits: v, weight: 1 }).collect(),
        );
        let n = summary.stream_len();
        let q = summary.quantile_bits(phi).unwrap();
        // The paper's selection rule: W(x_j) ≤ ⌊φn⌋, i.e. rank(q) ≤ target,
        // and the next item's cumulative weight exceeds the target.
        let target = ((phi * n as f64).floor() as u64).min(n - 1);
        prop_assert!(summary.rank_bits(q) <= target);
    }

    // ---- RNG: determinism and clone-independence ----

    #[test]
    fn rng_streams_are_deterministic(seed in any::<u64>()) {
        let mut a = Xoshiro256::seed_from_u64(seed);
        let mut b = Xoshiro256::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_is_always_below(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }
}
