//! Error-bound arithmetic for the sketch family.
//!
//! Three error sources compose in the paper (§4.2):
//!
//! 1. **Sub-sampling error** of the underlying sequential sketch, a function
//!    ε_c(k) of the level size `k`. We use the empirical rank-error fit of
//!    the Apache DataSketches *classic* Quantiles sketch (the very
//!    implementation the paper builds on): ε_c(k) ≈ 1.76 / k^0.93.
//! 2. **Relaxation error**: an r-relaxed sketch may miss up to `r` of the
//!    most recent updates. Rinberg et al. show a query then returns a value
//!    whose rank error grows to ε_r = ε_c + (r/n)(1 − ε_c).
//! 3. **Staleness error** from answering queries out of a cached snapshot
//!    bounded by freshness ρ = 1 + ε′: ε = ε_r + ε′.

/// Normalized rank error ε_c(k) of the classic Quantiles sketch.
///
/// This is the single-sided rank-error fit published with Apache
/// DataSketches for the Agarwal et al. sketch (`getNormalizedRankError`,
/// non-PMF case): `1.76 / k^0.93`. For k = 128 it gives ≈ 1.93%, matching
/// the library's documented table.
pub fn sequential_epsilon(k: usize) -> f64 {
    assert!(k >= 2, "k must be at least 2");
    1.76 / (k as f64).powf(0.93)
}

/// Inverse of [`sequential_epsilon`]: the smallest power-of-two `k` whose
/// error bound is at most `eps`.
pub fn k_for_epsilon(eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    let mut k = 2usize;
    while sequential_epsilon(k) > eps {
        k = k.checked_mul(2).expect("k overflow — eps too small");
    }
    k
}

/// Relaxation error ε_r = ε_c + (r/n)(1 − ε_c) for a stream of size `n`
/// processed by an `r`-relaxed sketch (Rinberg et al., quoted in §4.2).
///
/// For n = 0 (or r ≥ n) every answer is vacuously within the full range, so
/// the bound saturates at 1.
pub fn relaxed_epsilon(eps_c: f64, r: u64, n: u64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let frac = (r as f64 / n as f64).min(1.0);
    (eps_c + frac * (1.0 - eps_c)).min(1.0)
}

/// Total error with snapshot caching: ε = ε_r + ε′ where ρ = 1 + ε′ (§4.2).
pub fn cached_epsilon(eps_r: f64, rho: f64) -> f64 {
    assert!(rho >= 1.0 || rho == 0.0, "rho is a ratio bound ≥ 1 (or 0 = no caching)");
    let eps_prime = if rho == 0.0 { 0.0 } else { rho - 1.0 };
    (eps_r + eps_prime).min(1.0)
}

/// Quancurrent's relaxation r = 4kS + (N − S)·b (§3.1/§4.2), where `S` is
/// the number of NUMA nodes, `N` the number of update threads, `b` the
/// local-buffer size and `k` the level size.
pub fn quancurrent_relaxation(k: usize, b: usize, num_threads: usize, numa_nodes: usize) -> u64 {
    let s = numa_nodes.min(num_threads).max(1) as u64;
    let n = num_threads as u64;
    4 * k as u64 * s + n.saturating_sub(s) * b as u64
}

/// FCDS relaxation 2·N·B (§5.5): N worker threads with double buffers of
/// size B each.
pub fn fcds_relaxation(buffer_size: usize, num_threads: usize) -> u64 {
    2 * num_threads as u64 * buffer_size as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_decreases_with_k() {
        let mut prev = f64::INFINITY;
        for k in [16, 64, 128, 256, 1024, 4096] {
            let e = sequential_epsilon(k);
            assert!(e < prev, "eps not decreasing at k={k}");
            prev = e;
        }
    }

    #[test]
    fn epsilon_matches_datasketches_table_point() {
        // DataSketches documents ≈1.93% at k=128 for the classic sketch.
        let e = sequential_epsilon(128);
        assert!((e - 0.0193).abs() < 0.002, "eps(128) = {e}");
    }

    #[test]
    fn k_for_epsilon_is_inverse() {
        for eps in [0.05, 0.02, 0.01, 0.005] {
            let k = k_for_epsilon(eps);
            assert!(sequential_epsilon(k) <= eps);
            assert!(k == 2 || sequential_epsilon(k / 2) > eps);
        }
    }

    #[test]
    fn relaxed_epsilon_reduces_to_eps_c_when_r_zero() {
        assert_eq!(relaxed_epsilon(0.01, 0, 1_000_000), 0.01);
    }

    #[test]
    fn relaxed_epsilon_grows_with_r_and_saturates() {
        let e1 = relaxed_epsilon(0.01, 1000, 1_000_000);
        let e2 = relaxed_epsilon(0.01, 100_000, 1_000_000);
        assert!(e1 < e2);
        assert_eq!(relaxed_epsilon(0.01, 2_000_000, 1_000_000), 1.0);
        assert_eq!(relaxed_epsilon(0.01, 0, 0), 1.0);
    }

    #[test]
    fn cached_epsilon_adds_staleness() {
        assert_eq!(cached_epsilon(0.01, 1.0), 0.01);
        assert!((cached_epsilon(0.01, 1.05) - 0.06).abs() < 1e-12);
        assert_eq!(cached_epsilon(0.01, 0.0), 0.01); // ρ=0 ⇒ no caching ⇒ no extra error
    }

    #[test]
    fn quancurrent_relaxation_matches_paper_examples() {
        // §5.5: 8 update threads, S = 1, b = 2048 → r ≈ 30K with k = 4096.
        let r = quancurrent_relaxation(4096, 2048, 8, 1);
        assert_eq!(r, 4 * 4096 + 7 * 2048); // 16384 + 14336 = 30720 ≈ 30K
                                            // §5.5: 32 threads, S = 4, b = 2048, k = 4096 → r ≈ 122K.
        let r32 = quancurrent_relaxation(4096, 2048, 32, 4);
        assert_eq!(r32, 4 * 4096 * 4 + 28 * 2048); // 65536 + 57344 = 122880 ≈ 122K
    }

    #[test]
    fn fcds_relaxation_matches_paper_examples() {
        // §5.5: B = 1920 with 8 threads gives 2·8·1920 = 30720 ≈ 30K.
        assert_eq!(fcds_relaxation(1920, 8), 30720);
    }

    #[test]
    fn quancurrent_relaxation_clamps_nodes_to_threads() {
        // 2 threads on a "4-node" machine occupy at most 2 nodes.
        let r = quancurrent_relaxation(64, 8, 2, 4);
        assert_eq!(r, (4 * 64 * 2));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_k_rejected() {
        sequential_epsilon(1);
    }
}
