//! Order-preserving embeddings of primitive key types into `u64`.
//!
//! The concurrent sketch stores stream elements in shared buffers made of
//! `AtomicU64` slots (the Gather&Sort buffers of the paper are written and
//! read racily by design — see the *holes* discussion in §4.1). To keep that
//! code simple, safe, and monomorphic, every supported element type is
//! embedded into `u64` through a **strictly order-preserving bijection**:
//! `a < b  ⇔  a.to_ordered_bits() < b.to_ordered_bits()`.
//!
//! Sorting, merging, sampling and query selection all happen in bit space;
//! values are mapped back with [`OrderedBits::from_ordered_bits`] only at the
//! public API boundary.

/// An order-preserving bijection between `Self` and (a subset of) `u64`.
///
/// # Contract
///
/// For all `a`, `b` of the implementing type:
///
/// * **Monotone:** `a < b` implies `a.to_ordered_bits() < b.to_ordered_bits()`.
/// * **Roundtrip:** `Self::from_ordered_bits(a.to_ordered_bits()) == a`.
///
/// For floating-point types the contract holds on the non-NaN subset, with
/// the usual IEEE-754 total-order caveats spelled out on the impl.
///
/// # Example
///
/// ```
/// use qc_common::OrderedBits;
/// let xs = [-3.5f64, -0.0, 2.25, 1e300];
/// let mut bits: Vec<u64> = xs.iter().map(|x| x.to_ordered_bits()).collect();
/// bits.sort_unstable();
/// let back: Vec<f64> = bits.into_iter().map(f64::from_ordered_bits).collect();
/// assert_eq!(back, [-3.5, -0.0, 2.25, 1e300]);
/// ```
pub trait OrderedBits: Copy + PartialOrd + Send + Sync + 'static {
    /// Embed `self` into the ordered `u64` domain.
    fn to_ordered_bits(self) -> u64;
    /// Recover the value from its ordered-bit representation.
    fn from_ordered_bits(bits: u64) -> Self;
}

impl OrderedBits for u64 {
    #[inline(always)]
    fn to_ordered_bits(self) -> u64 {
        self
    }
    #[inline(always)]
    fn from_ordered_bits(bits: u64) -> Self {
        bits
    }
}

impl OrderedBits for u32 {
    #[inline(always)]
    fn to_ordered_bits(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_ordered_bits(bits: u64) -> Self {
        debug_assert!(bits <= u32::MAX as u64, "bits out of u32 range");
        bits as u32
    }
}

impl OrderedBits for i64 {
    /// Shifts the sign bit so that `i64::MIN` maps to `0` and `i64::MAX`
    /// maps to `u64::MAX`, preserving order.
    #[inline(always)]
    fn to_ordered_bits(self) -> u64 {
        (self as u64) ^ (1u64 << 63)
    }
    #[inline(always)]
    fn from_ordered_bits(bits: u64) -> Self {
        (bits ^ (1u64 << 63)) as i64
    }
}

impl OrderedBits for i32 {
    #[inline(always)]
    fn to_ordered_bits(self) -> u64 {
        (self as i64).to_ordered_bits()
    }
    #[inline(always)]
    fn from_ordered_bits(bits: u64) -> Self {
        i64::from_ordered_bits(bits) as i32
    }
}

impl OrderedBits for f64 {
    /// The classic IEEE-754 total-order trick: positive floats get the sign
    /// bit set; negative floats are bitwise-complemented, which reverses
    /// their (descending) bit order into ascending order.
    ///
    /// `-0.0` and `+0.0` map to *distinct, adjacent* keys (`-0.0 < +0.0` in
    /// bit space), which keeps the map a bijection; quantile estimates are
    /// insensitive to this tie-split. NaNs map above `+inf` (positive NaN
    /// payloads) or below `-inf` and roundtrip bit-exactly, but feeding NaNs
    /// into a quantiles sketch is not meaningful.
    #[inline(always)]
    fn to_ordered_bits(self) -> u64 {
        let b = self.to_bits();
        if b >> 63 == 0 {
            b | (1u64 << 63)
        } else {
            !b
        }
    }
    #[inline(always)]
    fn from_ordered_bits(bits: u64) -> Self {
        let b = if bits >> 63 == 1 { bits & !(1u64 << 63) } else { !bits };
        f64::from_bits(b)
    }
}

impl OrderedBits for f32 {
    /// Same sign-flip trick as `f64`, in 32 bits, widened into `u64`.
    #[inline(always)]
    fn to_ordered_bits(self) -> u64 {
        let b = self.to_bits();
        let k = if b >> 31 == 0 { b | (1u32 << 31) } else { !b };
        k as u64
    }
    #[inline(always)]
    fn from_ordered_bits(bits: u64) -> Self {
        debug_assert!(bits <= u32::MAX as u64, "bits out of f32 range");
        let k = bits as u32;
        let b = if k >> 31 == 1 { k & !(1u32 << 31) } else { !k };
        f32::from_bits(b)
    }
}

/// Convert a slice of typed values into ordered bit space.
pub fn to_bits_vec<T: OrderedBits>(xs: &[T]) -> Vec<u64> {
    xs.iter().map(|x| x.to_ordered_bits()).collect()
}

/// Convert a slice of ordered bits back into typed values.
pub fn from_bits_vec<T: OrderedBits>(bits: &[u64]) -> Vec<T> {
    bits.iter().map(|&b| T::from_ordered_bits(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: OrderedBits + PartialEq + std::fmt::Debug>(x: T) {
        assert_eq!(T::from_ordered_bits(x.to_ordered_bits()), x);
    }

    fn monotone<T: OrderedBits + std::fmt::Debug>(lo: T, hi: T) {
        assert!(lo.to_ordered_bits() < hi.to_ordered_bits(), "{lo:?} !< {hi:?} in bit space");
    }

    #[test]
    fn u64_is_identity() {
        for x in [0u64, 1, 42, u64::MAX] {
            assert_eq!(x.to_ordered_bits(), x);
            roundtrip(x);
        }
    }

    #[test]
    fn u32_roundtrip_and_order() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        monotone(3u32, 4u32);
    }

    #[test]
    fn i64_extremes_map_to_extremes() {
        assert_eq!(i64::MIN.to_ordered_bits(), 0);
        assert_eq!(i64::MAX.to_ordered_bits(), u64::MAX);
        assert_eq!((-1i64).to_ordered_bits() + 1, 0i64.to_ordered_bits());
    }

    #[test]
    fn i64_order_across_zero() {
        monotone(-5i64, -4i64);
        monotone(-1i64, 0i64);
        monotone(0i64, 1i64);
        for x in [i64::MIN, -77, 0, 12345, i64::MAX] {
            roundtrip(x);
        }
    }

    #[test]
    fn i32_order_and_roundtrip() {
        monotone(i32::MIN, -1i32);
        monotone(-1i32, 0i32);
        for x in [i32::MIN, -7, 0, 9, i32::MAX] {
            roundtrip(x);
        }
    }

    #[test]
    fn f64_order_spans_signs() {
        monotone(f64::NEG_INFINITY, -1e308);
        monotone(-1e308, -1.0);
        monotone(-1.0, -f64::MIN_POSITIVE);
        monotone(-0.0f64, 0.0f64); // distinct adjacent keys
        monotone(0.0, f64::MIN_POSITIVE);
        monotone(1.0, 1.0000000000000002);
        monotone(1e308, f64::INFINITY);
    }

    #[test]
    fn f64_roundtrip_bit_exact() {
        for x in [
            0.0f64,
            -0.0,
            1.5,
            -2.25,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
        ] {
            let back = f64::from_ordered_bits(x.to_ordered_bits());
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn f64_nan_roundtrips_bitwise() {
        let nan = f64::NAN;
        let back = f64::from_ordered_bits(nan.to_ordered_bits());
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn f32_order_and_roundtrip() {
        monotone(-1.0f32, -0.5f32);
        monotone(-0.5f32, 0.25f32);
        for x in [0.0f32, -3.5, 7.25, f32::MAX, f32::NEG_INFINITY] {
            let back = f32::from_ordered_bits(x.to_ordered_bits());
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn bulk_conversions_roundtrip() {
        let xs = vec![-2.5f64, 0.0, 3.25, -7.75];
        assert_eq!(from_bits_vec::<f64>(&to_bits_vec(&xs)), xs);
    }

    #[test]
    fn sorting_in_bit_space_matches_value_order() {
        let mut xs = vec![3.5f64, -1.25, 0.0, -0.0, 99.0, -1e10];
        let mut bits = to_bits_vec(&xs);
        bits.sort_unstable();
        xs.sort_by(f64::total_cmp); // total order puts -0.0 before +0.0, like the embedding
        let via_bits = from_bits_vec::<f64>(&bits);
        // -0.0 / +0.0 tie order is pinned by the embedding; compare by bits.
        let a: Vec<u64> = via_bits.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
    }
}
