//! Weighted-sample summaries and the paper's quantile-selection rule.
//!
//! §2.2 of the paper: *"For approximating the φ quantile, we construct a
//! list of tuples, denoted `samples`, containing all elements in the sketch
//! and their associated weights. The list is then sorted by the elements'
//! values. Denote by `W(x_i)` the sum of weights up to element `x_i` in the
//! sorted list. The estimation of the φ quantile is an element `x_j` such
//! that `W(x_j) ≤ ⌊φn⌋` and `W(x_{j+1}) > ⌊φn⌋`."*
//!
//! [`WeightedSummary`] is that list with precomputed exclusive prefix
//! weights, so a quantile query is a single binary search. It is produced by
//! the sequential sketch, by Quancurrent query snapshots, and by the FCDS
//! baseline, which makes estimator behaviour identical across all three —
//! exactly what the paper's accuracy comparisons (Figures 2, 8, 9) assume.

use crate::bits::OrderedBits;

/// One summary point: an element (in ordered-bit space) and its weight,
/// i.e. how many stream elements it represents (2^level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightedItem {
    /// The element, embedded via [`OrderedBits`].
    pub value_bits: u64,
    /// The number of stream elements this summary point stands for.
    pub weight: u64,
}

/// Query interface shared by every sketch in the workspace.
pub trait Summary {
    /// Total weight = size of the (sub)stream this summary represents.
    fn stream_len(&self) -> u64;

    /// The paper's φ-quantile estimate in ordered-bit space.
    /// `None` iff the summary is empty.
    fn quantile_bits(&self, phi: f64) -> Option<u64>;

    /// Estimated rank of `x` (given in ordered-bit space): the weight of all
    /// summary points strictly smaller than `x`.
    fn rank_bits(&self, x_bits: u64) -> u64;

    /// Typed φ-quantile estimate.
    fn quantile<T: OrderedBits>(&self, phi: f64) -> Option<T>
    where
        Self: Sized,
    {
        self.quantile_bits(phi).map(T::from_ordered_bits)
    }

    /// Typed **absolute** rank estimate: the total weight of summary points
    /// strictly smaller than `x`.
    fn rank_weight<T: OrderedBits>(&self, x: T) -> u64
    where
        Self: Sized,
    {
        self.rank_bits(x.to_ordered_bits())
    }

    /// Typed **normalized** rank estimate: the fraction of the stream
    /// strictly below `x`, in `[0, 1]`. Returns `0.0` on an empty summary.
    fn rank_fraction<T: OrderedBits>(&self, x: T) -> f64
    where
        Self: Sized,
    {
        let n = self.stream_len();
        if n == 0 {
            0.0
        } else {
            self.rank_bits(x.to_ordered_bits()) as f64 / n as f64
        }
    }

    /// Estimated CDF at each split point: `rank(p) / n`.
    fn cdf_bits(&self, split_points: &[u64]) -> Vec<f64> {
        let n = self.stream_len();
        if n == 0 {
            return vec![0.0; split_points.len()];
        }
        split_points.iter().map(|&p| self.rank_bits(p) as f64 / n as f64).collect()
    }

    /// Batch quantile estimation.
    fn quantiles_bits(&self, phis: &[f64]) -> Vec<Option<u64>> {
        phis.iter().map(|&p| self.quantile_bits(p)).collect()
    }

    /// Estimated histogram: the number of stream elements falling in each
    /// bucket `[split[i], split[i+1])`, plus the under/overflow buckets —
    /// `splits.len() + 1` counts in total. Splits must be ascending.
    fn histogram_bits(&self, splits: &[u64]) -> Vec<u64> {
        debug_assert!(splits.windows(2).all(|w| w[0] <= w[1]), "splits must ascend");
        let mut counts = Vec::with_capacity(splits.len() + 1);
        let mut prev = 0u64;
        for &s in splits {
            let r = self.rank_bits(s);
            counts.push(r.saturating_sub(prev));
            prev = r;
        }
        counts.push(self.stream_len().saturating_sub(prev));
        counts
    }
}

/// The sorted `samples` list with exclusive prefix weights.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WeightedSummary {
    /// Sorted by `value_bits` ascending.
    items: Vec<WeightedItem>,
    /// `prefix[i]` = total weight of items `0..i` (exclusive prefix sum).
    prefix: Vec<u64>,
    /// Total weight of all items.
    total: u64,
}

impl WeightedSummary {
    /// An empty summary (represents the empty stream).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from `(sorted_slice, weight)` parts — one part per sketch level.
    ///
    /// Each slice must be ascending (checked with `debug_assert`); parts may
    /// overlap arbitrarily in value space. Total cost is one k-way sort of
    /// the concatenation.
    pub fn from_parts<'a, I>(parts: I) -> Self
    where
        I: IntoIterator<Item = (&'a [u64], u64)>,
    {
        let mut items = Vec::new();
        for (slice, weight) in parts {
            debug_assert!(crate::merge::is_sorted(slice), "summary part not sorted");
            debug_assert!(weight > 0, "summary part with zero weight");
            items.extend(slice.iter().map(|&v| WeightedItem { value_bits: v, weight }));
        }
        Self::from_items(items)
    }

    /// Build from an arbitrary collection of weighted items.
    pub fn from_items(mut items: Vec<WeightedItem>) -> Self {
        items.sort_unstable_by_key(|it| it.value_bits);
        let mut prefix = Vec::with_capacity(items.len());
        let mut acc = 0u64;
        for it in &items {
            prefix.push(acc);
            acc += it.weight;
        }
        Self { items, prefix, total: acc }
    }

    /// Number of summary points (not stream elements).
    pub fn num_retained(&self) -> usize {
        self.items.len()
    }

    /// The summary points, sorted by value.
    pub fn items(&self) -> &[WeightedItem] {
        &self.items
    }

    /// Smallest retained element, in bit space.
    pub fn min_bits(&self) -> Option<u64> {
        self.items.first().map(|it| it.value_bits)
    }

    /// Largest retained element, in bit space.
    pub fn max_bits(&self) -> Option<u64> {
        self.items.last().map(|it| it.value_bits)
    }

    /// **Normalized** rank of `value`: the estimated fraction of the stream
    /// strictly below it, in `[0, 1]`. Returns `0.0` on an empty summary.
    ///
    /// Merged queries across sketches of different stream sizes compare
    /// fractions; per-stream weight accounting uses
    /// [`WeightedSummary::rank_weight`].
    pub fn rank_fraction<T: OrderedBits>(&self, value: T) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.rank_bits(value.to_ordered_bits()) as f64 / self.total as f64
    }

    /// **Absolute** rank of `value`: the estimated total weight of stream
    /// elements strictly below it.
    pub fn rank_weight<T: OrderedBits>(&self, value: T) -> u64 {
        self.rank_bits(value.to_ordered_bits())
    }

    /// Estimated CDF at each typed split point: `rank_fraction(p)` for
    /// every `p`, i.e. the normalized counterpart of
    /// [`Summary::cdf_bits`].
    pub fn cdf<T: OrderedBits>(&self, split_points: &[T]) -> Vec<f64> {
        split_points.iter().map(|&p| self.rank_fraction(p)).collect()
    }
}

impl Summary for WeightedSummary {
    fn stream_len(&self) -> u64 {
        self.total
    }

    fn quantile_bits(&self, phi: f64) -> Option<u64> {
        if self.items.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        // ⌊φn⌋, clamped into the last weight interval so φ = 1 returns the
        // maximum retained element rather than falling off the end.
        let target = ((phi * self.total as f64).floor() as u64).min(self.total - 1);
        // Find the item whose weight interval [prefix[i], prefix[i]+w_i)
        // contains `target`: the last i with prefix[i] <= target.
        let idx = match self.prefix.binary_search(&target) {
            Ok(mut i) => {
                // Ties in `prefix` arise only from zero-weight items, which
                // `from_parts` forbids; still, step to the last equal entry
                // for robustness.
                while i + 1 < self.prefix.len() && self.prefix[i + 1] == target {
                    i += 1;
                }
                i
            }
            Err(ins) => ins - 1, // ins >= 1 because prefix[0] == 0 <= target
        };
        Some(self.items[idx].value_bits)
    }

    fn rank_bits(&self, x_bits: u64) -> u64 {
        // Weight of all items with value < x: binary search for the first
        // item >= x, then take its exclusive prefix.
        let idx = self.items.partition_point(|it| it.value_bits < x_bits);
        if idx == self.items.len() {
            self.total
        } else {
            self.prefix[idx]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_summary(values: &[u64]) -> WeightedSummary {
        WeightedSummary::from_items(
            values.iter().map(|&v| WeightedItem { value_bits: v, weight: 1 }).collect(),
        )
    }

    #[test]
    fn empty_summary_has_no_quantiles() {
        let s = WeightedSummary::empty();
        assert_eq!(s.stream_len(), 0);
        assert_eq!(s.quantile_bits(0.5), None);
        assert_eq!(s.rank_bits(42), 0);
    }

    #[test]
    fn single_item_answers_everything() {
        let s = unit_summary(&[7]);
        for phi in [0.0, 0.3, 0.5, 1.0] {
            assert_eq!(s.quantile_bits(phi), Some(7));
        }
        assert_eq!(s.rank_bits(7), 0);
        assert_eq!(s.rank_bits(8), 1);
    }

    /// With unit weights the estimator must return exact order statistics.
    #[test]
    fn unit_weights_give_exact_order_statistics() {
        let s = unit_summary(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(s.quantile_bits(0.0), Some(10));
        assert_eq!(s.quantile_bits(0.5), Some(60)); // ⌊0.5·10⌋ = 5 → index 5
        assert_eq!(s.quantile_bits(0.99), Some(100));
        assert_eq!(s.quantile_bits(1.0), Some(100));
    }

    #[test]
    fn paper_selection_rule_on_weighted_items() {
        // items: (5, w=2), (8, w=4), (12, w=2); n = 8.
        // W(5)=0, W(8)=2, W(12)=6.
        let s = WeightedSummary::from_items(vec![
            WeightedItem { value_bits: 5, weight: 2 },
            WeightedItem { value_bits: 8, weight: 4 },
            WeightedItem { value_bits: 12, weight: 2 },
        ]);
        assert_eq!(s.stream_len(), 8);
        // ⌊φn⌋ = 0, 1 → x_j = 5;  2..=5 → 8;  6, 7 → 12.
        assert_eq!(s.quantile_bits(0.0), Some(5));
        assert_eq!(s.quantile_bits(0.24), Some(5)); // target 1
        assert_eq!(s.quantile_bits(0.25), Some(8)); // target 2
        assert_eq!(s.quantile_bits(0.74), Some(8)); // target 5
        assert_eq!(s.quantile_bits(0.75), Some(12)); // target 6
        assert_eq!(s.quantile_bits(1.0), Some(12));
    }

    #[test]
    fn from_parts_combines_levels_with_weights() {
        // level-0-ish part (weight 1) and level-2-ish part (weight 4).
        let s = WeightedSummary::from_parts([(&[1u64, 9][..], 1), (&[4u64][..], 4)]);
        assert_eq!(s.stream_len(), 6);
        assert_eq!(s.num_retained(), 3);
        // sorted items: 1(w1), 4(w4), 9(w1); prefix: 0, 1, 5.
        assert_eq!(s.quantile_bits(0.0), Some(1)); // target 0
        assert_eq!(s.quantile_bits(0.2), Some(4)); // target 1
        assert_eq!(s.quantile_bits(0.8), Some(4)); // target ⌊4.8⌋=4: W(9)=5 > 4, so x_j = 4
        assert_eq!(s.quantile_bits(0.99), Some(9)); // target 5: W(9)=5 ≤ 5
    }

    #[test]
    fn rank_counts_strictly_smaller_weight() {
        let s = WeightedSummary::from_parts([(&[10u64, 20, 30][..], 2)]);
        assert_eq!(s.rank_bits(5), 0);
        assert_eq!(s.rank_bits(10), 0);
        assert_eq!(s.rank_bits(11), 2);
        assert_eq!(s.rank_bits(20), 2);
        assert_eq!(s.rank_bits(30), 4);
        assert_eq!(s.rank_bits(31), 6);
    }

    #[test]
    fn rank_and_quantile_are_dual() {
        let values: Vec<u64> = (0..1000).map(|i| i * 7).collect();
        let s = unit_summary(&values);
        let n = s.stream_len();
        for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let q = s.quantile_bits(phi).unwrap();
            let r = s.rank_bits(q);
            // rank(quantile(φ)) must bracket ⌊φn⌋ within one item's weight.
            let target = (phi * n as f64).floor() as u64;
            assert!(r <= target && target < r + 1 + 1, "phi={phi} r={r} target={target}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let s = unit_summary(&(0..100).collect::<Vec<_>>());
        let points: Vec<u64> = vec![0, 10, 50, 99, 100, 200];
        let cdf = s.cdf_bits(&points);
        assert_eq!(cdf.len(), points.len());
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(cdf[0], 0.0);
        assert_eq!(*cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn cdf_of_empty_summary_is_zero() {
        let s = WeightedSummary::empty();
        assert_eq!(s.cdf_bits(&[1, 2, 3]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn typed_queries_roundtrip_through_bits() {
        let xs = [-5.0f64, -1.0, 0.0, 2.0, 10.0];
        let s = WeightedSummary::from_items(
            xs.iter()
                .map(|x| WeightedItem { value_bits: x.to_ordered_bits(), weight: 1 })
                .collect(),
        );
        assert_eq!(s.quantile::<f64>(0.0), Some(-5.0));
        assert_eq!(s.quantile::<f64>(0.5), Some(0.0));
        assert_eq!(s.quantile::<f64>(1.0), Some(10.0));
        // Absolute weight below the probe.
        assert_eq!(s.rank_weight(0.0f64), 2);
        // Normalized fraction.
        assert!((s.rank_fraction(0.0f64) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn normalized_rank_and_cdf() {
        let s = unit_summary(&[10, 20, 30, 40]);
        // u64 probes use the identity embedding.
        assert_eq!(s.rank_fraction(5u64), 0.0);
        assert_eq!(s.rank_fraction(25u64), 0.5);
        assert_eq!(s.rank_fraction(100u64), 1.0);
        assert_eq!(s.cdf(&[5u64, 25, 100]), vec![0.0, 0.5, 1.0]);
        // Empty summaries rank everything at 0.
        assert_eq!(WeightedSummary::empty().rank_fraction(7u64), 0.0);
        assert_eq!(WeightedSummary::empty().cdf(&[1u64, 2]), vec![0.0, 0.0]);
    }

    #[test]
    fn min_max_retained() {
        let s = unit_summary(&[42, 7, 99]);
        assert_eq!(s.min_bits(), Some(7));
        assert_eq!(s.max_bits(), Some(99));
    }

    #[test]
    fn unsorted_input_items_get_sorted() {
        let s = WeightedSummary::from_items(vec![
            WeightedItem { value_bits: 30, weight: 1 },
            WeightedItem { value_bits: 10, weight: 1 },
            WeightedItem { value_bits: 20, weight: 1 },
        ]);
        let vals: Vec<u64> = s.items().iter().map(|it| it.value_bits).collect();
        assert_eq!(vals, vec![10, 20, 30]);
    }

    #[test]
    fn histogram_partitions_the_stream() {
        let s = unit_summary(&(0..100).collect::<Vec<_>>());
        let h = s.histogram_bits(&[25, 50, 75]);
        assert_eq!(h, vec![25, 25, 25, 25]);
        assert_eq!(h.iter().sum::<u64>(), s.stream_len());
    }

    #[test]
    fn histogram_extremes() {
        let s = unit_summary(&(0..10).collect::<Vec<_>>());
        // All splits below the data: everything lands in the last bucket.
        assert_eq!(s.histogram_bits(&[0]), vec![0, 10]);
        // All above: everything in the first.
        assert_eq!(s.histogram_bits(&[100]), vec![10, 0]);
        // No splits: single bucket holding everything.
        assert_eq!(s.histogram_bits(&[]), vec![10]);
    }

    #[test]
    fn histogram_with_weighted_items() {
        let s = WeightedSummary::from_parts([(&[10u64, 20, 30][..], 4)]);
        let h = s.histogram_bits(&[15, 25]);
        assert_eq!(h, vec![4, 4, 4]);
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let s = unit_summary(&(0..50).collect::<Vec<_>>());
        let phis = [0.1, 0.5, 0.9];
        let batch = s.quantiles_bits(&phis);
        for (i, &phi) in phis.iter().enumerate() {
            assert_eq!(batch[i], s.quantile_bits(phi));
        }
    }
}
