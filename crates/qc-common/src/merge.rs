//! Sorted-merge kernels.
//!
//! Level propagation in every Quantiles sketch variant merges two sorted
//! arrays (§2.2: "the sketch samples the union of both arrays by performing
//! a merge sort"). These kernels are the single hottest non-atomic code in
//! the workspace, so they avoid reallocation, operate on raw `u64` keys, and
//! are written to let the optimizer keep the loop branch-predictable.

/// Merge two ascending slices into a fresh ascending `Vec`.
///
/// Stable with respect to ties (elements of `a` precede equal elements of
/// `b`), although the sketches never rely on tie order.
///
/// # Example
/// ```
/// let out = qc_common::merge::merge_sorted(&[1, 4, 9], &[2, 4, 8]);
/// assert_eq!(out, [1, 2, 4, 4, 8, 9]);
/// ```
pub fn merge_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    merge_sorted_into(a, b, &mut out);
    out
}

/// Merge two ascending slices into `out`, reusing its capacity.
///
/// `out` is cleared first. Use this in propagation loops to avoid an
/// allocation per merged level.
pub fn merge_sorted_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        // `<=` keeps the merge stable (a-side first on ties).
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// k-way merge of ascending slices into one ascending `Vec`.
///
/// Used when draining multiple buffers at once (quiescent drain, FCDS bulk
/// propagation). Implemented as repeated two-way merges over a size-sorted
/// worklist, which is optimal enough for the handful of inputs we feed it
/// and keeps the code free of heap-of-iterators machinery.
pub fn merge_sorted_many(inputs: &[&[u64]]) -> Vec<u64> {
    match inputs.len() {
        0 => Vec::new(),
        1 => inputs[0].to_vec(),
        _ => {
            let mut work: Vec<Vec<u64>> = inputs.iter().map(|s| s.to_vec()).collect();
            // Always merge the two shortest runs first (Huffman order) so the
            // total work is O(n log k) rather than O(n·k).
            work.sort_by_key(|v| std::cmp::Reverse(v.len()));
            while work.len() > 1 {
                let a = work.pop().unwrap();
                let b = work.pop().unwrap();
                let merged = merge_sorted(&a, &b);
                // Insert keeping the "shortest last" discipline.
                let pos = work.iter().position(|v| v.len() <= merged.len()).unwrap_or(work.len());
                work.insert(pos, merged);
            }
            work.pop().unwrap()
        }
    }
}

/// Verify that a slice is ascending (used by debug assertions and tests).
#[inline]
pub fn is_sorted(xs: &[u64]) -> bool {
    xs.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn merge_empty_sides() {
        assert_eq!(merge_sorted(&[], &[]), Vec::<u64>::new());
        assert_eq!(merge_sorted(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(merge_sorted(&[], &[3, 4]), vec![3, 4]);
    }

    #[test]
    fn merge_interleaved() {
        assert_eq!(merge_sorted(&[1, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_disjoint_ranges() {
        assert_eq!(merge_sorted(&[1, 2, 3], &[10, 11]), vec![1, 2, 3, 10, 11]);
        assert_eq!(merge_sorted(&[10, 11], &[1, 2, 3]), vec![1, 2, 3, 10, 11]);
    }

    #[test]
    fn merge_with_duplicates_is_stable_and_complete() {
        let out = merge_sorted(&[5, 5, 5], &[5, 5]);
        assert_eq!(out, vec![5, 5, 5, 5, 5]);
    }

    #[test]
    fn merge_into_reuses_buffer() {
        let mut buf = Vec::with_capacity(64);
        merge_sorted_into(&[2, 9], &[1, 4], &mut buf);
        assert_eq!(buf, vec![1, 2, 4, 9]);
        let cap = buf.capacity();
        merge_sorted_into(&[7], &[3], &mut buf);
        assert_eq!(buf, vec![3, 7]);
        assert_eq!(buf.capacity(), cap, "buffer was reallocated");
    }

    #[test]
    fn merge_random_matches_sort() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.next_below(200) as usize;
            let m = rng.next_below(200) as usize;
            let mut a: Vec<u64> = (0..n).map(|_| rng.next_below(1000)).collect();
            let mut b: Vec<u64> = (0..m).map(|_| rng.next_below(1000)).collect();
            a.sort_unstable();
            b.sort_unstable();
            let merged = merge_sorted(&a, &b);
            let mut expect = [a.clone(), b.clone()].concat();
            expect.sort_unstable();
            assert_eq!(merged, expect);
        }
    }

    #[test]
    fn many_way_merge_matches_sort() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut parts: Vec<Vec<u64>> = Vec::new();
        let mut all = Vec::new();
        for _ in 0..7 {
            let n = rng.next_below(64) as usize;
            let mut p: Vec<u64> = (0..n).map(|_| rng.next_below(500)).collect();
            p.sort_unstable();
            all.extend_from_slice(&p);
            parts.push(p);
        }
        let refs: Vec<&[u64]> = parts.iter().map(|p| p.as_slice()).collect();
        let merged = merge_sorted_many(&refs);
        all.sort_unstable();
        assert_eq!(merged, all);
    }

    #[test]
    fn many_way_merge_edge_cases() {
        assert_eq!(merge_sorted_many(&[]), Vec::<u64>::new());
        assert_eq!(merge_sorted_many(&[&[1, 2, 3]]), vec![1, 2, 3]);
        assert_eq!(merge_sorted_many(&[&[] as &[u64], &[], &[9]]), vec![9]);
    }

    #[test]
    fn is_sorted_detects_order() {
        assert!(is_sorted(&[]));
        assert!(is_sorted(&[1]));
        assert!(is_sorted(&[1, 1, 2]));
        assert!(!is_sorted(&[2, 1]));
    }
}
