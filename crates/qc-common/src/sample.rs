//! Odd-or-even subsampling.
//!
//! The propagation step of the Agarwal et al. sketch (§2.2) compacts a
//! sorted array of `2k` elements into `k` by keeping either the elements at
//! odd indices or the ones at even indices, chosen by a fair coin flip. The
//! retained elements double their weight. Quancurrent performs exactly the
//! same compaction concurrently (Algorithm 4, line 39: `sampleOddOrEven`).

use crate::rng::Xoshiro256;

/// Which half of a sorted array a compaction retains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parity {
    /// Keep indices 0, 2, 4, …
    Even,
    /// Keep indices 1, 3, 5, …
    Odd,
}

impl Parity {
    /// Flip a fair coin.
    #[inline]
    pub fn flip(rng: &mut Xoshiro256) -> Self {
        if rng.coin() {
            Parity::Odd
        } else {
            Parity::Even
        }
    }
}

/// Keep every other element of `src` starting from the parity's offset.
///
/// `src` must be sorted; the result is sorted too. For an input of length
/// `2k` both parities yield exactly `k` elements. Odd-length inputs (which
/// occur only in the quiescent-drain extension, never in paper propagation)
/// give `ceil(n/2)` for `Even` and `floor(n/2)` for `Odd`.
pub fn sample_with_parity(src: &[u64], parity: Parity) -> Vec<u64> {
    let offset = match parity {
        Parity::Even => 0,
        Parity::Odd => 1,
    };
    src.iter().skip(offset).step_by(2).copied().collect()
}

/// `sampleOddOrEven` of the paper: flip a fair coin and compact.
#[inline]
pub fn sample_odd_or_even(src: &[u64], rng: &mut Xoshiro256) -> Vec<u64> {
    sample_with_parity(src, Parity::flip(rng))
}

/// In-place variant writing into a reusable buffer (hot propagation path).
pub fn sample_with_parity_into(src: &[u64], parity: Parity, out: &mut Vec<u64>) {
    out.clear();
    out.reserve(src.len() / 2 + 1);
    let offset = match parity {
        Parity::Even => 0,
        Parity::Odd => 1,
    };
    out.extend(src.iter().skip(offset).step_by(2).copied());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_keeps_first_of_each_pair() {
        assert_eq!(sample_with_parity(&[1, 2, 3, 4], Parity::Even), vec![1, 3]);
    }

    #[test]
    fn odd_keeps_second_of_each_pair() {
        assert_eq!(sample_with_parity(&[1, 2, 3, 4], Parity::Odd), vec![2, 4]);
    }

    #[test]
    fn empty_input_yields_empty() {
        assert!(sample_with_parity(&[], Parity::Even).is_empty());
        assert!(sample_with_parity(&[], Parity::Odd).is_empty());
    }

    #[test]
    fn two_k_input_always_halves() {
        let src: Vec<u64> = (0..256).collect();
        assert_eq!(sample_with_parity(&src, Parity::Even).len(), 128);
        assert_eq!(sample_with_parity(&src, Parity::Odd).len(), 128);
    }

    #[test]
    fn odd_length_input_sizes() {
        let src: Vec<u64> = (0..7).collect();
        assert_eq!(sample_with_parity(&src, Parity::Even).len(), 4);
        assert_eq!(sample_with_parity(&src, Parity::Odd).len(), 3);
    }

    #[test]
    fn output_stays_sorted() {
        let src: Vec<u64> = (0..100).map(|i| i * 3).collect();
        for p in [Parity::Even, Parity::Odd] {
            let out = sample_with_parity(&src, p);
            assert!(crate::merge::is_sorted(&out));
        }
    }

    #[test]
    fn coin_chooses_both_parities() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let src = [10u64, 20];
        let mut saw_even = false;
        let mut saw_odd = false;
        for _ in 0..100 {
            match sample_odd_or_even(&src, &mut rng)[0] {
                10 => saw_even = true,
                20 => saw_odd = true,
                _ => unreachable!(),
            }
        }
        assert!(saw_even && saw_odd);
    }

    #[test]
    fn into_variant_matches_and_reuses() {
        let src: Vec<u64> = (0..64).collect();
        let mut buf = Vec::new();
        sample_with_parity_into(&src, Parity::Odd, &mut buf);
        assert_eq!(buf, sample_with_parity(&src, Parity::Odd));
        let cap = buf.capacity();
        sample_with_parity_into(&src, Parity::Even, &mut buf);
        assert_eq!(buf, sample_with_parity(&src, Parity::Even));
        assert!(buf.capacity() >= cap);
    }

    /// Each element must survive a single compaction with probability 1/2 —
    /// this is the property the sketch's unbiasedness rests on.
    #[test]
    fn survival_probability_is_half() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let src: Vec<u64> = (0..2).collect();
        let trials = 20_000;
        let mut survived_0 = 0u32;
        for _ in 0..trials {
            if sample_odd_or_even(&src, &mut rng)[0] == 0 {
                survived_0 += 1;
            }
        }
        let p = survived_0 as f64 / trials as f64;
        assert!((p - 0.5).abs() < 0.02, "survival probability {p}");
    }
}
