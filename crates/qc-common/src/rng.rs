//! Small deterministic PRNGs for sampling coin flips.
//!
//! Every propagation step of a Quantiles sketch flips a fair coin to retain
//! either the odd- or even-indexed elements (§2.2 of the paper). The
//! concurrent sketch flips these coins on *owner* threads, so each handle
//! carries its own generator:
//!
//! * reproducible experiments need per-sketch seeding, and
//! * the hot path must not contend on a shared RNG or take a lock.
//!
//! [`SplitMix64`] is used for seeding/stream-splitting; [`Xoshiro256`]
//! (xoshiro256\*\*) is the workhorse generator. Both match the published
//! reference outputs (tested below), so streams are stable across releases.

/// SplitMix64 — Sebastiano Vigna's 64-bit mixer.
///
/// Primarily used to derive well-distributed seeds for [`Xoshiro256`] from a
/// single user seed (possibly 0). Passes into each call advance an internal
/// counter by the golden-ratio increment.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an arbitrary seed (0 is fine).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — a fast, high-quality 256-bit-state generator
/// (Blackman & Vigna). Used for all sampling decisions and synthetic
/// streams that do not go through the `rand` crate.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as recommended by the xoshiro authors, so any
    /// `u64` (including 0) yields a healthy state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Construct directly from raw state. At least one word must be nonzero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256 state must be nonzero");
        Self { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A fair coin flip: `true` with probability 1/2.
    ///
    /// Uses the top bit, which has the best equidistribution properties in
    /// the xoshiro family.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (bias is negligible for the bounds used here and the method is
    /// branch-light on the hot path).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Split off an independent generator (jump-free stream splitting via
    /// SplitMix64 reseeding — adequate for test/bench stream derivation).
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from the public-domain `splitmix64.c` (Vigna),
    /// seed = 1234567.
    #[test]
    fn splitmix64_matches_reference() {
        let mut g = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    /// Reference values from the public-domain `xoshiro256starstar.c`
    /// with state {1, 2, 3, 4}.
    #[test]
    fn xoshiro_matches_reference() {
        let mut g = Xoshiro256::from_state([1, 2, 3, 4]);
        let expected =
            [11520u64, 0, 1509978240, 1215971899390074240, 1216172134540287360, 607988272756665600];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_healthy() {
        let mut g = Xoshiro256::seed_from_u64(0);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut g = Xoshiro256::seed_from_u64(42);
        let n = 100_000;
        let heads = (0..n).filter(|_| g.coin()).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "biased coin: {frac}");
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut g = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = g.next_below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residues never produced");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "unexpected mean {mean}");
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let mut g = Xoshiro256::seed_from_u64(5);
        let mut a = g.split();
        let mut b = g.split();
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Xoshiro256::seed_from_u64(11);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
