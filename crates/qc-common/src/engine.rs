//! The unified sketch-engine trait API.
//!
//! Every quantiles backend in this workspace — the sequential Agarwal et
//! al. sketch, the concurrent Quancurrent sketch, and the FCDS baseline —
//! answers the same abstract contract: ingest a stream, expose a weighted
//! summary, and estimate quantiles/ranks within the ε(k) error model. This
//! module captures that contract as small **capability traits**, so stores,
//! servers, benches, and workloads can be written once and run against any
//! backend (including tiered compositions that move a stream between
//! backends at runtime):
//!
//! | Trait | Capability | Typical implementors |
//! |-------|------------|----------------------|
//! | [`QuantileEstimator`] | read-side queries (quantile, rank, CDF) | all backends |
//! | [`StreamIngest`] | single-writer ingestion | sequential sketch, writer handles, engines |
//! | [`MergeableSketch`] | summary export / absorption | all backends |
//! | [`VersionedSketch`] | monotone state-version counter (read caching) | all backends |
//! | [`ConcurrentIngest`] | handle-based multi-writer ingestion | Quancurrent, FCDS |
//! | [`SharedIngest`] | leased writer handles through `&self` (shared-lock writes) | concurrent backends |
//! | [`InstrumentedSketch`] | backend-internal operation counters for telemetry | Quancurrent, engines wrapping it |
//! | [`SketchEngine`] | the single-object traits combined | store engines |
//!
//! The traits are object-safe: `Box<dyn SketchEngine<f64>>` is a fully
//! functional engine, which is what the engine-conformance suite exercises
//! and what lets a keyed store hold heterogeneous backends.
//!
//! # Rank semantics
//!
//! An ambiguous `rank` could mean an **absolute weight** or a
//! **fraction** — earlier revisions carried both meanings under one name.
//! The engine API names both explicitly — [`QuantileEstimator::rank_weight`]
//! (absolute weight of elements `< x`) and
//! [`QuantileEstimator::rank_fraction`] (that weight normalized by the
//! stream length) — and no bare `rank` exists on the summary or estimator
//! APIs.

use crate::bits::OrderedBits;
use crate::summary::WeightedSummary;

/// Read-side capability: estimate quantiles, ranks and CDFs of the stream
/// a sketch has ingested.
///
/// All methods take `&self`; concurrent backends answer from an atomic
/// snapshot. `stream_len` reports the weight visible to those queries —
/// for relaxed concurrent sketches this may trail the ingested count by at
/// most the backend's relaxation bound.
pub trait QuantileEstimator<T: OrderedBits> {
    /// Size of the stream visible to queries.
    fn stream_len(&self) -> u64;

    /// Estimate the φ-quantile. `None` iff the visible stream is empty.
    fn query(&self, phi: f64) -> Option<T>;

    /// Estimated **absolute** rank of `x`: the total weight of stream
    /// elements strictly smaller than `x`.
    fn rank_weight(&self, x: T) -> u64;

    /// Estimated **normalized** rank of `x` in `[0, 1]`: the fraction of
    /// the stream strictly below `x`. Returns `0.0` on an empty stream.
    fn rank_fraction(&self, x: T) -> f64 {
        let n = self.stream_len();
        if n == 0 {
            0.0
        } else {
            self.rank_weight(x) as f64 / n as f64
        }
    }

    /// Estimated CDF at each split point: `rank_fraction(p)` for every `p`.
    ///
    /// Implementors answering from a rebuilt snapshot should override this
    /// to evaluate all points against one snapshot.
    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        split_points.iter().map(|&p| self.rank_fraction(p)).collect()
    }

    /// Batch φ-quantile estimation.
    ///
    /// Like [`QuantileEstimator::cdf`], snapshot-based implementors should
    /// override this to answer from a single consistent snapshot.
    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        phis.iter().map(|&phi| self.query(phi)).collect()
    }

    /// The backend's normalized rank-error bound ε(k) (see
    /// [`crate::error`]): with high probability every quantile estimate is
    /// within `ε · stream_len` ranks of exact.
    fn error_bound(&self) -> f64;
}

/// Write-side capability: single-writer stream ingestion.
///
/// Implemented by owned sketches (`&mut self` is the writer) and by the
/// per-thread writer handles of concurrent backends (see
/// [`ConcurrentIngest`]).
pub trait StreamIngest<T: OrderedBits> {
    /// Process one stream element.
    fn update(&mut self, x: T);

    /// Process a batch of stream elements.
    fn update_many(&mut self, xs: &[T]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Push buffered elements toward query visibility where the backend
    /// supports it. Default: no-op.
    ///
    /// After `flush` returns, backends that can flush completely (the
    /// sequential sketch trivially, FCDS via publish + drain) account every
    /// update in [`QuantileEstimator::stream_len`]. Backends whose residual
    /// buffering is intrinsic (Quancurrent's sub-`b` thread-local tail)
    /// document what remains invisible and expose it out of band.
    fn flush(&mut self) {}
}

/// Merge capability: export the sketch's state as a [`WeightedSummary`]
/// and absorb summaries produced elsewhere.
///
/// Both directions conserve total weight **exactly**: for any engine `e`,
/// `e.to_summary().stream_len()` equals the weight `e` accounts for, and
/// absorbing a summary of weight `w` grows `e`'s accounted weight by
/// exactly `w`. This is the mergeable-summaries property (Agarwal et al.,
/// PODS'12) that makes cross-process aggregation and tier migration
/// possible.
pub trait MergeableSketch<T: OrderedBits> {
    /// Export the sketch's current state as a weighted summary.
    fn to_summary(&self) -> WeightedSummary;

    /// Fold a summary (from any backend, local or remote) into this
    /// sketch, conserving its total weight exactly.
    fn absorb_summary(&mut self, summary: &WeightedSummary);
}

/// Version capability: a monotone counter identifying the sketch's current
/// observable state, the contract behind summary caching (a materialized
/// [`WeightedSummary`] tagged with the version that produced it stays valid
/// for exactly as long as `version()` returns the same value).
///
/// The counter must advance across **every** transition that can change
/// what [`MergeableSketch::to_summary`] or any [`QuantileEstimator`] read
/// would return — updates, absorbs, internal compactions, tier migrations,
/// asynchronous propagation — and must never advance spuriously fast
/// enough to wrap. It carries no other meaning: values are not comparable
/// across sketches and not dense.
///
/// Sketches mutated only through `&mut self` implement this exactly.
/// Concurrent backends whose shared state moves under plain `&self` (e.g.
/// a background propagator) must still advance the version for every
/// visible transition, but may do so with relaxed atomics: under external
/// synchronization (a store's stripe lock, quiescence) the reading is
/// exact, while fully unsynchronized readers get a conservative hint.
pub trait VersionedSketch {
    /// The current state version (monotone, non-decreasing).
    fn version(&self) -> u64;
}

/// Shared-access write capability: lease an **owned** per-thread writer
/// handle through `&self`, so many threads can ingest into one engine
/// while holding only a shared (read) lock on whatever registry owns it.
///
/// This is the engine-API form of the paper's core discipline — each
/// writer thread fills a private buffer and synchronizes with the shared
/// sketch only at its internal propagation points (Gather&Sort / DCAS for
/// Quancurrent, buffer publication for FCDS) — threaded through to layers
/// that hold engines behind locks. An exclusive-lock writer serializes
/// every batch; leased handles synchronize only inside the engine.
///
/// # Contract
///
/// * The returned handle is self-contained (`'static`): it may be stored,
///   pooled, and used from any one thread at a time (`Send`, not `Sync`),
///   concurrently with other handles and with the engine's `&self` reads.
/// * A leased handle's [`StreamIngest::flush`] must account written
///   weight at least as completely as the backend's own flush contract
///   does (see [`StreamIngest::flush`]). For backends whose flush is
///   **complete** — every [`SketchEngine`], and anything a summary cache
///   sits on — that means: after the handle's `flush` returns, every
///   element written through it is visible to
///   [`MergeableSketch::to_summary`] and
///   [`QuantileEstimator::stream_len`], and [`VersionedSketch::version`]
///   has advanced past every reading taken before the flush (relaxed
///   atomics are fine — see [`VersionedSketch`]). Backends whose residual
///   buffering is intrinsic (bare Quancurrent's sub-`b` thread-local
///   tail, part of its r-relaxation bound) keep that relaxation in their
///   leased handles too and must document it. Between flushes, writes may
///   always stay buffered in the handle.
/// * `try_writer` returns `None` when the backend only supports exclusive
///   `&mut self` ingestion (the default); callers must keep an
///   exclusive-lock fallback path.
///
/// Unlike [`ConcurrentIngest::writer`], whose handles borrow the sketch,
/// leased handles share ownership of the engine's internals — which is
/// what lets a keyed store pool them inside the entry that owns the
/// engine. A handle outliving its engine's useful life (e.g. past a tier
/// migration) must simply go unused; dropping it is always safe.
pub trait SharedIngest<T: OrderedBits> {
    /// Lease an owned writer handle, or `None` if this backend only
    /// ingests through `&mut self`.
    fn try_writer(&self) -> Option<Box<dyn StreamIngest<T> + Send>> {
        None
    }
}

/// Telemetry capability: expose backend-internal operation counters as
/// stable `(name, cumulative value)` pairs.
///
/// This is the bridge that lets a metrics registry surface what a
/// concurrent backend is doing internally — DCAS retries, snapshot
/// cache miss rates, batch propagations — next to store- and
/// server-level instruments, without the telemetry layer knowing any
/// backend's concrete stats type.
///
/// # Contract
///
/// * Names are stable snake_case identifiers, unique within one call's
///   result, consistent across calls on the same engine.
/// * Values are cumulative since engine creation and read with relaxed
///   atomics: exact once the engine is quiescent (the same contract as
///   the counters they mirror). They may **reset to zero** when an
///   engine's internal state is rebuilt (e.g. a tier migration replacing
///   the hot sketch), so consumers aggregating across engines should
///   treat them as point-in-time samples, not monotone series.
/// * The default — no counters — is correct for backends with no
///   internal concurrency machinery worth reporting.
pub trait InstrumentedSketch {
    /// Backend-internal counters as `(name, value)` pairs; empty by
    /// default.
    fn internal_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// A full single-object sketch engine: queryable, single-writer ingestible,
/// mergeable, versioned, shared-ingest aware (most often via the
/// [`SharedIngest`] default `None`), and instrumentable (most often via the
/// [`InstrumentedSketch`] default of no counters). Blanket-implemented for
/// everything providing the capabilities — this is the bound stores and
/// harnesses program against, and it is object-safe
/// (`Box<dyn SketchEngine<T>>`).
pub trait SketchEngine<T: OrderedBits>:
    QuantileEstimator<T>
    + StreamIngest<T>
    + MergeableSketch<T>
    + VersionedSketch
    + SharedIngest<T>
    + InstrumentedSketch
{
}

impl<T: OrderedBits, E> SketchEngine<T> for E where
    E: QuantileEstimator<T>
        + StreamIngest<T>
        + MergeableSketch<T>
        + VersionedSketch
        + SharedIngest<T>
        + InstrumentedSketch
{
}

/// Multi-writer capability: hand out per-thread writer handles that ingest
/// concurrently into one shared sketch.
///
/// The returned writer borrows nothing mutable from the sketch — any
/// number of writers may be live at once, each owned by one thread (the
/// handles are `Send` but intentionally not `Sync`).
pub trait ConcurrentIngest<T: OrderedBits>: Sync {
    /// Register a writer handle for the calling thread.
    fn writer(&self) -> Box<dyn StreamIngest<T> + Send + '_>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{Summary, WeightedItem};

    /// A trivially exact reference engine over the trait API: retains the
    /// whole stream. Used to pin the default-method semantics.
    #[derive(Default)]
    struct Exact {
        xs: Vec<u64>,
        absorbed: Vec<(u64, u64)>,
    }

    impl QuantileEstimator<u64> for Exact {
        fn stream_len(&self) -> u64 {
            self.xs.len() as u64 + self.absorbed.iter().map(|&(_, w)| w).sum::<u64>()
        }
        fn query(&self, phi: f64) -> Option<u64> {
            self.to_summary().quantile_bits(phi)
        }
        fn rank_weight(&self, x: u64) -> u64 {
            self.to_summary().rank_bits(x)
        }
        fn error_bound(&self) -> f64 {
            0.0
        }
    }

    impl StreamIngest<u64> for Exact {
        fn update(&mut self, x: u64) {
            self.xs.push(x);
        }
    }

    impl VersionedSketch for Exact {
        fn version(&self) -> u64 {
            // Every mutation grows one of the two vectors, so their
            // combined length is an exact version.
            (self.xs.len() + self.absorbed.len()) as u64
        }
    }

    // Exclusive-only backend: the default `try_writer` (`None`) applies.
    impl SharedIngest<u64> for Exact {}

    // No internal machinery: the default (no counters) applies.
    impl InstrumentedSketch for Exact {}

    impl MergeableSketch<u64> for Exact {
        fn to_summary(&self) -> WeightedSummary {
            let mut items: Vec<WeightedItem> =
                self.xs.iter().map(|&v| WeightedItem { value_bits: v, weight: 1 }).collect();
            items.extend(
                self.absorbed.iter().map(|&(v, w)| WeightedItem { value_bits: v, weight: w }),
            );
            WeightedSummary::from_items(items)
        }
        fn absorb_summary(&mut self, summary: &WeightedSummary) {
            self.absorbed.extend(summary.items().iter().map(|it| (it.value_bits, it.weight)));
        }
    }

    fn boxed() -> Box<dyn SketchEngine<u64>> {
        Box::new(Exact::default())
    }

    #[test]
    fn trait_object_engine_round_trips() {
        let mut a = boxed();
        a.update_many(&[10, 20, 30, 40]);
        a.flush();
        assert_eq!(a.stream_len(), 4);
        assert_eq!(a.rank_weight(25), 2);
        assert!((a.rank_fraction(25) - 0.5).abs() < 1e-12);

        let mut b = boxed();
        b.absorb_summary(&a.to_summary());
        assert_eq!(b.stream_len(), 4);
        assert_eq!(b.query(0.0), Some(10));
    }

    #[test]
    fn default_rank_fraction_handles_empty() {
        let e = boxed();
        assert_eq!(e.rank_fraction(7), 0.0);
        assert_eq!(e.cdf(&[1, 2, 3]), vec![0.0, 0.0, 0.0]);
        assert_eq!(e.quantiles(&[0.5]), vec![None]);
    }

    #[test]
    fn version_advances_across_mutations_only() {
        let mut e = boxed();
        let v0 = e.version();
        e.update_many(&[1, 2, 3]);
        let v1 = e.version();
        assert!(v1 > v0, "updates must advance the version");
        // Pure reads leave the version alone.
        let _ = e.query(0.5);
        let _ = e.cdf(&[2]);
        assert_eq!(e.version(), v1);
        let snapshot = e.to_summary();
        assert_eq!(e.version(), v1);
        e.absorb_summary(&snapshot);
        assert!(e.version() > v1, "absorbs must advance the version");
    }

    #[test]
    fn exclusive_only_engines_decline_shared_writers() {
        let e = boxed();
        assert!(e.try_writer().is_none(), "default SharedIngest must report None");
    }

    #[test]
    fn default_cdf_is_rank_fraction_per_point() {
        let mut e = boxed();
        e.update_many(&[0, 1, 2, 3]);
        assert_eq!(e.cdf(&[0, 2, 10]), vec![0.0, 0.5, 1.0]);
        let qs = e.quantiles(&[0.0, 0.99]);
        assert_eq!(qs, vec![Some(0), Some(3)]);
    }
}
