//! Shared kernels for the Quancurrent reproduction.
//!
//! Every sketch in this workspace — the sequential Agarwal et al. sketch
//! (`qc-sequential`), the concurrent Quancurrent sketch (`quancurrent`),
//! and the FCDS baseline (`qc-fcds`) — operates internally on sorted arrays
//! of **64-bit ordered keys** and answers queries from **weighted sample
//! summaries**. This crate holds those shared pieces:
//!
//! * [`bits::OrderedBits`] — order-preserving embeddings of primitive types
//!   into `u64`, so the concurrent core can use plain `AtomicU64` slots for
//!   the racy Gather&Sort buffers without `unsafe` type punning.
//! * [`rng`] — small deterministic PRNGs (SplitMix64 / xoshiro256\*\*) used
//!   for the random odd/even sampling coin flips. Sketches must be seedable
//!   for reproducible tests, and the concurrent core must not depend on a
//!   global RNG.
//! * [`summary::WeightedSummary`] — the `samples` list of §2.2 of the paper:
//!   sorted `(value, weight)` tuples with the paper's quantile-selection rule
//!   (return `x_j` such that `W(x_j) <= ⌊φn⌋ < W(x_{j+1})`), plus rank and
//!   CDF estimation.
//! * [`merge`] / [`sample`] — the sorted-merge and odd-or-even subsampling
//!   kernels used by every propagation step.
//! * [`engine`] — the unified sketch-engine capability traits
//!   ([`QuantileEstimator`], [`StreamIngest`], [`MergeableSketch`],
//!   [`ConcurrentIngest`], [`SharedIngest`]) every backend in the
//!   workspace implements.
//! * [`error`] — the ε(k) error model of the classic Quantiles sketch and the
//!   relaxation/staleness error composition of §4.2 of the paper.
//!
//! The crate is intentionally dependency-free: the correctness of the
//! concurrent data structures upstream rests on this code, and keeping it
//! auditable (and deterministic) is worth more than convenience.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bits;
pub mod engine;
pub mod error;
pub mod merge;
pub mod rng;
pub mod sample;
pub mod summary;

pub use bits::OrderedBits;
pub use engine::{
    ConcurrentIngest, InstrumentedSketch, MergeableSketch, QuantileEstimator, SharedIngest,
    SketchEngine, StreamIngest, VersionedSketch,
};
pub use rng::{SplitMix64, Xoshiro256};
pub use summary::{Summary, WeightedItem, WeightedSummary};
