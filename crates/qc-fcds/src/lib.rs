//! FCDS — the *Fast Concurrent Data Sketches* framework of Rinberg et al.
//! (PPoPP'20), instantiated for the Quantiles sketch.
//!
//! This is the baseline the Quancurrent paper compares against in §5.5:
//! the only previously published concurrent sketch framework supporting
//! quantiles. Its design point is the opposite of Quancurrent's:
//!
//! * every worker buffers `B` elements **twice** (double buffering), and
//! * one **dedicated propagator thread** performs all merge-sorts into a
//!   single shared sequential sketch.
//!
//! Queries read the shared sketch under a reader lock (the original uses a
//! seqlock-style snapshot; a reader-writer lock preserves the property the
//! comparison depends on — queries never block the propagator for long and
//! updates never touch the shared sketch — while staying within safe Rust;
//! see DESIGN.md).
//!
//! The framework satisfies relaxed consistency with relaxation up to
//! `2·N·B`, so matching Quancurrent's freshness requires small `B` — and
//! with small `B` the single propagator saturates. Figure 10 of the paper
//! (and `qc-bench`'s `fig10` binary) quantifies exactly this trade-off.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod sketch;
mod slots;

pub use sketch::{Fcds, FcdsEngine, FcdsStats, FcdsUpdater, FCDS_LEASED_SLOTS};
