//! The FCDS quantiles sketch: shared state, propagator, handles.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, RwLock};

use qc_common::bits::OrderedBits;
use qc_common::engine::{
    ConcurrentIngest, InstrumentedSketch, MergeableSketch, QuantileEstimator, SharedIngest,
    StreamIngest, VersionedSketch,
};
use qc_common::summary::{Summary, WeightedSummary};
use qc_sequential::QuantilesSketch;

use crate::slots::{BufCell, WorkerSlot};

/// Counters exposed by [`Fcds::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FcdsStats {
    /// Buffers the propagator merged into the shared sketch.
    pub batches_propagated: u64,
    /// Elements those buffers contained.
    pub elements_propagated: u64,
    /// Times a worker had to wait because both its buffers were full —
    /// the sequential-propagator bottleneck the paper's §5.5 discusses.
    pub worker_stalls: u64,
    /// Idle scan passes of the propagator.
    pub idle_scans: u64,
}

pub(crate) struct FcdsShared {
    pub(crate) k: usize,
    pub(crate) buffer_size: usize,
    pub(crate) workers: Box<[WorkerSlot]>,
    pub(crate) sketch: RwLock<QuantilesSketch>,
    pub(crate) stop: AtomicBool,
    pub(crate) batches: AtomicU64,
    pub(crate) elements: AtomicU64,
    pub(crate) stalls: AtomicU64,
    pub(crate) idle_scans: AtomicU64,
}

impl FcdsShared {
    /// Drain one published buffer into the shared sketch. Returns whether
    /// any work was found.
    fn drain_once(&self) -> bool {
        let mut found = false;
        for slot in self.workers.iter() {
            for buf in &slot.bufs {
                if let Some(batch) = buf.try_drain() {
                    if !batch.is_empty() {
                        let mut sketch = self.sketch.write().unwrap();
                        // The heavy merge-sort: fold B sorted elements into
                        // the level hierarchy.
                        sketch.ingest_sorted(&batch);
                        drop(sketch);
                        self.batches.fetch_add(1, SeqCst);
                        self.elements.fetch_add(batch.len() as u64, SeqCst);
                    }
                    found = true;
                }
            }
        }
        found
    }

    fn any_published(&self) -> bool {
        self.workers.iter().any(|s| s.bufs.iter().any(BufCell::is_full))
    }
}

/// FCDS (Rinberg et al., *Fast Concurrent Data Sketches*) instantiated for
/// the Quantiles sketch — the state-of-the-art baseline the paper compares
/// against (§5.5).
///
/// Architecture: `N` worker threads each own **two local buffers of size
/// B**; a full buffer is sorted and published, and a **single dedicated
/// propagator thread** merges published buffers into one shared sequential
/// sketch. A worker whose buffers are both awaiting propagation stalls —
/// which is why FCDS needs large `B` to scale, at the cost of a relaxation
/// of up to `2·N·B` hidden updates.
///
/// # Example
///
/// ```
/// use qc_fcds::Fcds;
///
/// let fcds = Fcds::<u64>::new(128, 1024, 4); // k, B, max workers
/// let mut w = fcds.updater();
/// for x in 0..100_000u64 {
///     w.update(x);
/// }
/// w.flush();
/// fcds.drain();
/// let median = fcds.query(0.5).unwrap();
/// assert!((40_000..60_000).contains(&median));
/// ```
pub struct Fcds<T: OrderedBits> {
    shared: Arc<FcdsShared>,
    propagator: Option<std::thread::JoinHandle<()>>,
    next_worker: AtomicUsize,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

impl<T: OrderedBits> Fcds<T> {
    /// Create a sketch with level size `k`, per-worker buffer size
    /// `buffer_size` (B), and capacity for `max_workers` registered
    /// workers. Spawns the propagator thread.
    pub fn new(k: usize, buffer_size: usize, max_workers: usize) -> Self {
        Self::with_seed(k, buffer_size, max_workers, 0xFCD5)
    }

    /// As [`Fcds::new`] with an explicit sampling seed.
    pub fn with_seed(k: usize, buffer_size: usize, max_workers: usize, seed: u64) -> Self {
        assert!(buffer_size >= 1, "buffer size must be at least 1");
        assert!(max_workers >= 1, "at least one worker slot is required");
        let shared = Arc::new(FcdsShared {
            k,
            buffer_size,
            workers: (0..max_workers).map(|_| WorkerSlot::new()).collect(),
            sketch: RwLock::new(QuantilesSketch::with_seed(k, seed)),
            stop: AtomicBool::new(false),
            batches: AtomicU64::new(0),
            elements: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            idle_scans: AtomicU64::new(0),
        });
        let propagator = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fcds-propagator".into())
                .spawn(move || {
                    // The single propagation loop: scan, drain, repeat.
                    loop {
                        let worked = shared.drain_once();
                        if !worked {
                            if shared.stop.load(SeqCst) && !shared.any_published() {
                                break;
                            }
                            shared.idle_scans.fetch_add(1, SeqCst);
                            std::thread::yield_now();
                        }
                    }
                })
                .expect("spawn fcds propagator")
        };
        Self {
            shared,
            propagator: Some(propagator),
            next_worker: AtomicUsize::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// Register a worker (claims one of the `max_workers` slots).
    ///
    /// # Panics
    /// If all slots are taken.
    pub fn updater(&self) -> FcdsUpdater<T> {
        match self.try_updater() {
            Some(updater) => updater,
            None => panic!("all {} FCDS worker slots are registered", self.shared.workers.len()),
        }
    }

    /// Register a worker if a slot is free (the non-panicking form of
    /// [`Fcds::updater`]). Slots are released when the handle drops.
    pub fn try_updater(&self) -> Option<FcdsUpdater<T>> {
        let start = self.next_worker.fetch_add(1, SeqCst);
        let n = self.shared.workers.len();
        for off in 0..n {
            let slot = (start + off) % n;
            if self.shared.workers[slot]
                .registered
                .compare_exchange(false, true, SeqCst, SeqCst)
                .is_ok()
            {
                return Some(FcdsUpdater {
                    shared: Arc::clone(&self.shared),
                    slot,
                    current: 0,
                    pushed: 0,
                    _marker: std::marker::PhantomData,
                });
            }
        }
        None
    }

    /// Estimate the φ-quantile from the shared sketch.
    pub fn query(&self, phi: f64) -> Option<T> {
        self.summary().quantile_bits(phi).map(T::from_ordered_bits)
    }

    /// A weighted summary of the propagated stream (snapshot under the
    /// sketch lock).
    pub fn summary(&self) -> WeightedSummary {
        self.shared.sketch.read().unwrap().summary()
    }

    /// Stream size visible to queries (propagated updates only).
    pub fn stream_len(&self) -> u64 {
        self.shared.sketch.read().unwrap().n()
    }

    /// Block until every currently-published buffer has been merged.
    pub fn drain(&self) {
        while self.shared.any_published() {
            std::thread::yield_now();
        }
    }

    /// The relaxation bound 2·N·B for `n_workers` active workers (§5.5).
    pub fn relaxation_bound(&self, n_workers: usize) -> u64 {
        qc_common::error::fcds_relaxation(self.shared.buffer_size, n_workers)
    }

    /// Operation counters.
    pub fn stats(&self) -> FcdsStats {
        FcdsStats {
            batches_propagated: self.shared.batches.load(SeqCst),
            elements_propagated: self.shared.elements.load(SeqCst),
            worker_stalls: self.shared.stalls.load(SeqCst),
            idle_scans: self.shared.idle_scans.load(SeqCst),
        }
    }

    /// Level size parameter.
    pub fn k(&self) -> usize {
        self.shared.k
    }

    /// Per-worker buffer size B.
    pub fn buffer_size(&self) -> usize {
        self.shared.buffer_size
    }
}

impl<T: OrderedBits> Drop for Fcds<T> {
    fn drop(&mut self) {
        self.shared.stop.store(true, SeqCst);
        if let Some(handle) = self.propagator.take() {
            let _ = handle.join();
        }
    }
}

impl<T: OrderedBits> std::fmt::Debug for Fcds<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fcds")
            .field("k", &self.shared.k)
            .field("B", &self.shared.buffer_size)
            .field("stream_len", &self.stream_len())
            .finish()
    }
}

/// Read-side engine capability: queries see the **propagated** stream
/// (un-propagated worker buffers are FCDS's relaxation, up to `2·N·B`
/// hidden updates). Flush workers and [`Fcds::drain`] for exact
/// end-of-stream accounting.
impl<T: OrderedBits> QuantileEstimator<T> for Fcds<T> {
    fn stream_len(&self) -> u64 {
        Fcds::stream_len(self)
    }

    fn query(&self, phi: f64) -> Option<T> {
        Fcds::query(self, phi)
    }

    fn rank_weight(&self, x: T) -> u64 {
        self.summary().rank_bits(x.to_ordered_bits())
    }

    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        let bits: Vec<u64> = split_points.iter().map(|x| x.to_ordered_bits()).collect();
        self.summary().cdf_bits(&bits)
    }

    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        let summary = self.summary();
        phis.iter().map(|&phi| summary.quantile_bits(phi).map(T::from_ordered_bits)).collect()
    }

    fn error_bound(&self) -> f64 {
        qc_common::error::sequential_epsilon(self.shared.k)
    }
}

/// Merge capability: absorption bypasses the worker/propagator pipeline
/// and folds the summary straight into the shared sequential sketch under
/// the write lock, conserving total weight exactly.
impl<T: OrderedBits> MergeableSketch<T> for Fcds<T> {
    fn to_summary(&self) -> WeightedSummary {
        self.summary()
    }

    fn absorb_summary(&mut self, summary: &WeightedSummary) {
        self.shared.sketch.write().unwrap().absorb_summary(summary);
    }
}

/// Version capability: the shared sequential sketch is FCDS's only
/// query-visible state, and every transition of it — a drained buffer, an
/// absorbed summary — strictly increases its stream length, so the
/// propagated stream length is an exact version. The background propagator
/// advances it asynchronously, which is precisely what a summary cache
/// needs to notice.
impl<T: OrderedBits> VersionedSketch for Fcds<T> {
    fn version(&self) -> u64 {
        Fcds::stream_len(self)
    }
}

/// Multi-writer engine capability.
///
/// # Panics
/// Like [`Fcds::updater`]: when all `max_workers` slots are registered.
impl<T: OrderedBits> ConcurrentIngest<T> for Fcds<T> {
    fn writer(&self) -> Box<dyn StreamIngest<T> + Send + '_> {
        Box::new(self.updater())
    }
}

/// An FCDS worker handle (one per thread; `Send`, not `Sync`).
pub struct FcdsUpdater<T: OrderedBits> {
    shared: Arc<FcdsShared>,
    slot: usize,
    current: usize,
    pushed: u64,
    _marker: std::marker::PhantomData<fn(T) -> T>,
}

impl<T: OrderedBits> FcdsUpdater<T> {
    /// Process one stream element.
    #[inline]
    pub fn update(&mut self, x: T) {
        let cell = &self.shared.workers[self.slot].bufs[self.current];
        // SAFETY: this thread is the registered worker of `slot`, and
        // `current` always points at a WORKER-state buffer.
        let data = unsafe { cell.worker_data() };
        data.push(x.to_ordered_bits());
        self.pushed += 1;
        if data.len() == self.shared.buffer_size {
            data.sort_unstable();
            cell.publish();
            self.swap_buffers();
        }
    }

    /// Publish a partially filled buffer (end-of-stream flush).
    pub fn flush(&mut self) {
        let cell = &self.shared.workers[self.slot].bufs[self.current];
        // SAFETY: as in `update`.
        let data = unsafe { cell.worker_data() };
        if !data.is_empty() {
            data.sort_unstable();
            cell.publish();
            self.swap_buffers();
        }
    }

    /// Total elements pushed through this handle.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    fn swap_buffers(&mut self) {
        self.current ^= 1;
        let next = &self.shared.workers[self.slot].bufs[self.current];
        // Double buffering: wait until the propagator has drained the
        // other buffer. This wait is FCDS's scalability bottleneck.
        let mut stalled = false;
        while next.is_full() {
            if !stalled {
                self.shared.stalls.fetch_add(1, SeqCst);
                stalled = true;
            }
            std::thread::yield_now();
        }
    }
}

/// Writer-side engine capability. `flush` publishes the partial buffer;
/// pair it with [`Fcds::drain`] (or use [`FcdsEngine`]) to make every
/// update query-visible.
impl<T: OrderedBits> StreamIngest<T> for FcdsUpdater<T> {
    fn update(&mut self, x: T) {
        FcdsUpdater::update(self, x);
    }

    fn flush(&mut self) {
        FcdsUpdater::flush(self);
    }
}

impl<T: OrderedBits> Drop for FcdsUpdater<T> {
    fn drop(&mut self) {
        self.flush();
        self.shared.workers[self.slot].registered.store(false, SeqCst);
    }
}

impl<T: OrderedBits> std::fmt::Debug for FcdsUpdater<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FcdsUpdater")
            .field("slot", &self.slot)
            .field("pushed", &self.pushed)
            .finish()
    }
}

/// A single-object FCDS engine: the shared sketch bundled with one
/// resident worker handle, so the FCDS baseline satisfies the full
/// [`qc_common::engine::SketchEngine`] contract (the raw [`Fcds`] offers
/// only handle-based ingestion).
///
/// [`StreamIngest::flush`] publishes the worker's partial buffer **and**
/// drains the propagator, so `stream_len` equals the ingested count
/// exactly after a flush — which is what the engine-conformance suite and
/// tier migration rely on.
pub struct FcdsEngine<T: OrderedBits> {
    /// Declared before `fcds`: dropping the handle flushes its buffer,
    /// then the sketch's own drop joins the propagator (which drains all
    /// published buffers before exiting).
    writer: FcdsUpdater<T>,
    fcds: Fcds<T>,
}

/// Worker slots an [`FcdsEngine`] keeps free for shared-ingest leases on
/// top of its resident writer (the engine's private [`Fcds`] is built with
/// `1 +` this many `max_workers`). Spare slots are nearly free: worker
/// buffers allocate lazily on first use, so an engine that never leases
/// pays only the slot bookkeeping, not `2·B` words per slot.
pub const FCDS_LEASED_SLOTS: usize = 7;

impl<T: OrderedBits> FcdsEngine<T> {
    /// Create an engine with level size `k`, worker buffer size `b`, and
    /// an explicit sampling seed. The engine reserves one worker slot of
    /// its private [`Fcds`] instance for the resident writer and leaves
    /// [`FCDS_LEASED_SLOTS`] more for [`SharedIngest`] leases.
    pub fn with_seed(k: usize, buffer_size: usize, seed: u64) -> Self {
        let fcds = Fcds::with_seed(k, buffer_size, 1 + FCDS_LEASED_SLOTS, seed);
        let writer = fcds.updater();
        Self { writer, fcds }
    }

    /// The underlying FCDS instance (propagator stats, relaxation bound).
    pub fn fcds(&self) -> &Fcds<T> {
        &self.fcds
    }
}

/// A leased FCDS writer: a worker handle plus enough shared state to wait
/// for the propagator, so its `flush` gives the **exact** post-flush
/// visibility [`SharedIngest`] demands (a bare [`FcdsUpdater::flush`] only
/// publishes; the weight becomes query-visible asynchronously).
struct LeasedFcdsWriter<T: OrderedBits> {
    inner: FcdsUpdater<T>,
    shared: Arc<FcdsShared>,
}

impl<T: OrderedBits> StreamIngest<T> for LeasedFcdsWriter<T> {
    fn update(&mut self, x: T) {
        FcdsUpdater::update(&mut self.inner, x);
    }

    fn flush(&mut self) {
        FcdsUpdater::flush(&mut self.inner);
        // Drain: every published buffer (ours included) is merged into the
        // shared sketch before we report the flush complete — which is
        // also what advances `Fcds::version` past the written weight.
        while self.shared.any_published() {
            std::thread::yield_now();
        }
    }
}

impl<T: OrderedBits> StreamIngest<T> for FcdsEngine<T> {
    fn update(&mut self, x: T) {
        FcdsUpdater::update(&mut self.writer, x);
    }

    fn flush(&mut self) {
        FcdsUpdater::flush(&mut self.writer);
        self.fcds.drain();
    }
}

impl<T: OrderedBits> QuantileEstimator<T> for FcdsEngine<T> {
    fn stream_len(&self) -> u64 {
        self.fcds.stream_len()
    }

    fn query(&self, phi: f64) -> Option<T> {
        self.fcds.query(phi)
    }

    fn rank_weight(&self, x: T) -> u64 {
        QuantileEstimator::rank_weight(&self.fcds, x)
    }

    fn cdf(&self, split_points: &[T]) -> Vec<f64> {
        QuantileEstimator::cdf(&self.fcds, split_points)
    }

    fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        QuantileEstimator::quantiles(&self.fcds, phis)
    }

    fn error_bound(&self) -> f64 {
        QuantileEstimator::error_bound(&self.fcds)
    }
}

impl<T: OrderedBits> VersionedSketch for FcdsEngine<T> {
    fn version(&self) -> u64 {
        VersionedSketch::version(&self.fcds)
    }
}

/// Shared-access leases: worker slots beyond the resident writer are
/// handed out as self-contained handles whose `flush` publishes **and**
/// drains, so leased weight is exactly visible post-flush. `None` once all
/// [`FCDS_LEASED_SLOTS`] are out (slots return when handles drop).
impl<T: OrderedBits> SharedIngest<T> for FcdsEngine<T> {
    fn try_writer(&self) -> Option<Box<dyn StreamIngest<T> + Send>> {
        let inner = self.fcds.try_updater()?;
        Some(Box::new(LeasedFcdsWriter { inner, shared: Arc::clone(&self.fcds.shared) }))
    }
}

/// The FCDS baseline keeps no operation counters worth bridging: the
/// default (no counters) applies.
impl<T: OrderedBits> InstrumentedSketch for FcdsEngine<T> {}

impl<T: OrderedBits> MergeableSketch<T> for FcdsEngine<T> {
    fn to_summary(&self) -> WeightedSummary {
        self.fcds.summary()
    }

    fn absorb_summary(&mut self, summary: &WeightedSummary) {
        MergeableSketch::absorb_summary(&mut self.fcds, summary);
    }
}

impl<T: OrderedBits> std::fmt::Debug for FcdsEngine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FcdsEngine").field("fcds", &self.fcds).finish()
    }
}
