//! Worker double-buffers: the FCDS hand-off cells.
//!
//! Each worker owns two buffers of capacity `B`. The worker fills one while
//! the propagator may be draining the other; ownership of a buffer is
//! transferred through its `state` atomic (release/acquire), the classic
//! single-producer/single-consumer hand-off:
//!
//! * `WORKER` — the registered worker may mutate `data`;
//! * `FULL` — the propagator may take `data` (worker finished and
//!   published it with a `Release` store).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Buffer owned by its worker (being filled).
pub(crate) const WORKER: u8 = 0;
/// Buffer published to the propagator.
pub(crate) const FULL: u8 = 1;

pub(crate) struct BufCell {
    pub(crate) state: AtomicU8,
    pub(crate) data: UnsafeCell<Vec<u64>>,
}

// SAFETY: `data` is accessed only by the single party the `state` machine
// designates; transfers are Release→Acquire ordered.
unsafe impl Sync for BufCell {}

impl BufCell {
    /// Starts **unallocated**: a slot costs nothing until its worker
    /// actually pushes (the vector grows amortized to `B` on first fill,
    /// and [`BufCell::try_drain`] hands back full-capacity vectors from
    /// then on). This is what lets an engine reserve spare worker slots
    /// for shared-ingest leases without paying `2·B` words per slot that
    /// may never register.
    pub(crate) fn new() -> Self {
        Self { state: AtomicU8::new(WORKER), data: UnsafeCell::new(Vec::new()) }
    }

    /// Worker-side access. Caller must be the registered worker and the
    /// state must be `WORKER`.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn worker_data(&self) -> &mut Vec<u64> {
        debug_assert_eq!(self.state.load(Ordering::Relaxed), WORKER);
        // SAFETY: per the contract above, the worker has exclusive access.
        unsafe { &mut *self.data.get() }
    }

    /// Publish a filled buffer to the propagator.
    pub(crate) fn publish(&self) {
        self.state.store(FULL, Ordering::Release);
    }

    /// Propagator-side: take the contents if published. Returns `None`
    /// when the buffer is still being filled.
    pub(crate) fn try_drain(&self) -> Option<Vec<u64>> {
        if self.state.load(Ordering::Acquire) != FULL {
            return None;
        }
        // SAFETY: state FULL transfers exclusive access to the propagator
        // (single propagator thread).
        let data = unsafe { &mut *self.data.get() };
        let batch = std::mem::take(data);
        // Hand an empty-but-allocated vector back to the worker.
        *data = Vec::with_capacity(batch.capacity().max(1));
        self.state.store(WORKER, Ordering::Release);
        Some(batch)
    }

    /// Is the buffer currently published?
    pub(crate) fn is_full(&self) -> bool {
        self.state.load(Ordering::Acquire) == FULL
    }
}

/// One worker's pair of buffers plus its registration flag.
pub(crate) struct WorkerSlot {
    pub(crate) bufs: [BufCell; 2],
    pub(crate) registered: AtomicBool,
}

impl WorkerSlot {
    pub(crate) fn new() -> Self {
        Self { bufs: [BufCell::new(), BufCell::new()], registered: AtomicBool::new(false) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_of_unpublished_buffer_is_none() {
        let cell = BufCell::new();
        assert!(cell.try_drain().is_none());
    }

    #[test]
    fn publish_then_drain_transfers_contents() {
        let cell = BufCell::new();
        unsafe { cell.worker_data() }.extend_from_slice(&[3, 1, 2]);
        cell.publish();
        assert!(cell.is_full());
        let batch = cell.try_drain().unwrap();
        assert_eq!(batch, vec![3, 1, 2]);
        assert!(!cell.is_full());
        assert!(unsafe { cell.worker_data() }.is_empty());
    }

    #[test]
    fn drain_preserves_capacity_for_reuse() {
        let cell = BufCell::new();
        unsafe { cell.worker_data() }.extend_from_slice(&[1; 64]);
        cell.publish();
        let _ = cell.try_drain().unwrap();
        assert!(unsafe { cell.worker_data() }.capacity() >= 64);
    }
}
