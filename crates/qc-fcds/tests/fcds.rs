//! FCDS behaviour tests: hand-off correctness, accounting, relaxation,
//! accuracy, and concurrent stress.

use qc_fcds::Fcds;
use std::sync::Barrier;

#[test]
fn single_worker_roundtrip() {
    let fcds = Fcds::<u64>::new(64, 256, 1);
    let mut w = fcds.updater();
    for x in 0..10_000u64 {
        w.update(x);
    }
    w.flush();
    fcds.drain();
    assert_eq!(fcds.stream_len(), 10_000);
    let median = fcds.query(0.5).unwrap();
    assert!((3_000..7_000).contains(&median), "median {median}");
}

#[test]
fn flush_publishes_partial_buffer() {
    let fcds = Fcds::<u64>::new(16, 1000, 1);
    let mut w = fcds.updater();
    for x in 0..5u64 {
        w.update(x);
    }
    assert_eq!(fcds.stream_len(), 0, "nothing propagated before flush");
    w.flush();
    fcds.drain();
    assert_eq!(fcds.stream_len(), 5);
    assert_eq!(fcds.query(0.0), Some(0));
    assert_eq!(fcds.query(1.0), Some(4));
}

#[test]
fn updater_drop_flushes() {
    let fcds = Fcds::<u64>::new(16, 1000, 1);
    {
        let mut w = fcds.updater();
        for x in 0..7u64 {
            w.update(x);
        }
    } // drop flushes
    fcds.drain();
    assert_eq!(fcds.stream_len(), 7);
}

#[test]
fn worker_slots_recycle_after_drop() {
    let fcds = Fcds::<u64>::new(16, 8, 2);
    let w1 = fcds.updater();
    let w2 = fcds.updater();
    drop(w1);
    drop(w2);
    let _w3 = fcds.updater();
    let _w4 = fcds.updater();
}

#[test]
#[should_panic(expected = "worker slots")]
fn worker_slot_exhaustion_panics() {
    let fcds = Fcds::<u64>::new(16, 8, 1);
    let _a = fcds.updater();
    let _b = fcds.updater();
}

#[test]
fn relaxation_bound_formula() {
    let fcds = Fcds::<u64>::new(4096, 1920, 8);
    assert_eq!(fcds.relaxation_bound(8), 2 * 8 * 1920); // §5.5's 30720
}

#[test]
fn unpropagated_lag_is_within_relaxation() {
    const WORKERS: usize = 4;
    const PER_WORKER: u64 = 50_000;
    const B: usize = 512;

    let fcds = Fcds::<u64>::new(256, B, WORKERS);
    let barrier = Barrier::new(WORKERS);
    std::thread::scope(|s| {
        for t in 0..WORKERS as u64 {
            let mut w = fcds.updater();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..PER_WORKER {
                    w.update(t * PER_WORKER + i);
                }
                // No flush: leave residue in local buffers.
                let lag_bound = 2 * B as u64; // this worker's two buffers
                assert!(w.pushed() >= PER_WORKER - lag_bound);
                std::mem::forget(w); // keep residue unflushed for the check
            });
        }
    });

    let total = WORKERS as u64 * PER_WORKER;
    fcds.drain();
    let visible = fcds.stream_len();
    assert!(
        total - visible <= fcds.relaxation_bound(WORKERS),
        "lag {} exceeds 2NB {}",
        total - visible,
        fcds.relaxation_bound(WORKERS)
    );
}

#[test]
fn concurrent_workers_accuracy() {
    const WORKERS: usize = 8;
    const PER_WORKER: u64 = 40_000;

    let fcds = Fcds::<u64>::new(256, 1024, WORKERS);
    let barrier = Barrier::new(WORKERS);
    std::thread::scope(|s| {
        for t in 0..WORKERS as u64 {
            let mut w = fcds.updater();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..PER_WORKER {
                    w.update(i * WORKERS as u64 + t);
                }
                w.flush();
            });
        }
    });
    fcds.drain();

    let n = WORKERS as u64 * PER_WORKER;
    assert_eq!(fcds.stream_len(), n, "every flushed element propagated");
    for phi in [0.1, 0.5, 0.9] {
        let est = fcds.query(phi).unwrap() as f64;
        let err = (est - phi * n as f64).abs() / n as f64;
        assert!(err < 0.05, "phi={phi}: err {err}");
    }
    let stats = fcds.stats();
    assert!(stats.batches_propagated >= (n / 1024) * 9 / 10);
    assert_eq!(stats.elements_propagated, n);
}

#[test]
fn queries_run_concurrently_with_updates() {
    use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
    let fcds = Fcds::<u64>::new(64, 128, 2);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        s.spawn(|| {
            let mut w = fcds.updater();
            for i in 0..200_000u64 {
                w.update(i);
            }
            w.flush();
            stop.store(true, SeqCst);
        });
        s.spawn(|| {
            let mut last_n = 0;
            while !stop.load(SeqCst) {
                let n = fcds.stream_len();
                assert!(n >= last_n, "visible stream shrank");
                last_n = n;
                let _ = fcds.query(0.5);
            }
        });
    });
    fcds.drain();
    assert_eq!(fcds.stream_len(), 200_000);
}

/// Small B under many workers forces worker stalls — the bottleneck the
/// paper attributes FCDS's poor freshness-adjusted scaling to.
#[test]
fn small_buffers_cause_stalls() {
    const WORKERS: usize = 8;
    let fcds = Fcds::<u64>::new(64, 16, WORKERS);
    let barrier = Barrier::new(WORKERS);
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            let mut w = fcds.updater();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..20_000u64 {
                    w.update(i);
                }
                w.flush();
            });
        }
    });
    fcds.drain();
    let stats = fcds.stats();
    assert!(
        stats.worker_stalls > 0,
        "8 workers on B=16 must stall on the single propagator: {stats:?}"
    );
}
