//! Property tests of FCDS's relaxation accounting: however updates and
//! propagation interleave, the visible lag never exceeds 2·N·B and the
//! stream size is conserved end-to-end.

use proptest::prelude::*;
use qc_fcds::Fcds;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single worker, arbitrary update counts and buffer sizes: lag ≤ 2B
    /// (the worker's two buffers) before flush, 0 after flush + drain.
    #[test]
    fn single_worker_lag_bound(
        buffer in 1usize..64,
        n in 0u64..5000,
    ) {
        let fcds = Fcds::<u64>::new(16, buffer, 1);
        let mut worker = fcds.updater();
        for i in 0..n {
            worker.update(i);
        }
        // Unflushed: up to 2B may be invisible (current + published).
        fcds.drain();
        let visible = fcds.stream_len();
        prop_assert!(n - visible <= 2 * buffer as u64,
            "lag {} > 2B = {}", n - visible, 2 * buffer as u64);

        worker.flush();
        fcds.drain();
        prop_assert_eq!(fcds.stream_len(), n, "flush + drain must expose everything");
    }

    /// Estimates from arbitrary FCDS runs are stream members.
    #[test]
    fn estimates_are_members(
        buffer in 1usize..32,
        n in 1u64..3000,
    ) {
        let fcds = Fcds::<u64>::new(8, buffer, 1);
        let mut worker = fcds.updater();
        for i in 0..n {
            worker.update(i * 7 + 1);
        }
        worker.flush();
        fcds.drain();
        for phi in [0.0, 0.5, 1.0] {
            let est = fcds.query(phi).unwrap();
            prop_assert!(est >= 1 && est <= (n - 1) * 7 + 1 && (est - 1).is_multiple_of(7),
                "estimate {} not in stream", est);
        }
    }
}

/// The propagator must make progress even when workers stop abruptly
/// (drop without flush): published buffers still drain.
#[test]
fn published_buffers_drain_after_worker_drop() {
    let fcds = Fcds::<u64>::new(8, 16, 2);
    {
        let mut w = fcds.updater();
        for i in 0..16 {
            w.update(i); // exactly one full buffer published
        }
        // Dropped here: flush publishes the (empty) current buffer too.
    }
    fcds.drain();
    assert_eq!(fcds.stream_len(), 16);
}
