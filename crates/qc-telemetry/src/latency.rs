//! Latency quantiles from the repo's own sketch engine.
//!
//! A [`LatencyRecorder`] is a stripe of mutexes over
//! [`qc_sequential::Sketch<f64>`]: writers `try_lock` stripes starting at
//! their thread's home stripe, so under contention they spread out instead
//! of queueing, and only block when every stripe is busy (rare: the
//! critical section is a single sketch update). Reads merge the stripes
//! with the standard mergeability property (Agarwal et al.), so the error
//! bound of the merged summary is still ε(k) — the recorder dogfoods the
//! exact machinery the paper builds on.

use std::sync::{Arc, Mutex, TryLockError};
use std::time::Duration;

use qc_common::bits::OrderedBits;
use qc_common::summary::{Summary, WeightedSummary};
use qc_sequential::Sketch;

/// Number of sketch stripes. Small on purpose: each stripe costs O(k log n)
/// retained samples and reads merge all of them.
const STRIPES: usize = 4;

/// Default sketch accuracy parameter (ε ≈ 1.7%).
pub(crate) const DEFAULT_K: usize = 128;

/// Fixed seed so summaries are reproducible run-to-run in tests; stripe
/// index is mixed in so stripes sample independently.
const SEED: u64 = 0x9cb2_77d1;

struct RecorderCore {
    stripes: [Mutex<Sketch<f64>>; STRIPES],
    k: usize,
}

/// Records observations (typically seconds of latency) into striped
/// quantile sketches; see the module docs.
///
/// Handles are cheap clones sharing the stripes; the default value (and
/// [`LatencyRecorder::disabled`]) is a no-op handle.
#[derive(Clone, Default)]
pub struct LatencyRecorder {
    core: Option<Arc<RecorderCore>>,
}

impl LatencyRecorder {
    /// A live recorder with accuracy parameter `k`.
    pub fn new(k: usize) -> Self {
        let stripes =
            std::array::from_fn(|i| Mutex::new(Sketch::with_seed(k, SEED.wrapping_add(i as u64))));
        Self { core: Some(Arc::new(RecorderCore { stripes, k })) }
    }

    /// A no-op handle: `record` does nothing, `summary` is empty.
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record one observation.
    ///
    /// Lock discipline: try each stripe starting from this thread's home
    /// stripe; if all `try_lock`s fail (every stripe mid-update), fall back
    /// to a blocking lock on the home stripe. The observation is never
    /// dropped — latency tails are exactly what we must not lose.
    pub fn record(&self, value: f64) {
        let Some(core) = &self.core else { return };
        let home = crate::instrument::shard_index() % STRIPES;
        for offset in 0..STRIPES {
            let stripe = &core.stripes[(home + offset) % STRIPES];
            match stripe.try_lock() {
                Ok(mut sketch) => {
                    sketch.update(value);
                    return;
                }
                Err(TryLockError::Poisoned(poisoned)) => {
                    poisoned.into_inner().update(value);
                    return;
                }
                Err(TryLockError::WouldBlock) => continue,
            }
        }
        lock_recovering(&core.stripes[home]).update(value);
    }

    /// Record a [`Duration`] in seconds (the exposition convention).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Total observations recorded so far (relaxed across stripes).
    pub fn count(&self) -> u64 {
        match &self.core {
            Some(core) => core.stripes.iter().map(|s| lock_recovering(s).n()).sum(),
            None => 0,
        }
    }

    /// Merge the stripes into one sketch and summarize it. The result is a
    /// mergeable [`WeightedSummary`] with the usual ε(k) rank guarantee.
    pub fn summary(&self) -> WeightedSummary {
        match &self.core {
            Some(core) => {
                let mut merged = Sketch::<f64>::with_seed(core.k, SEED);
                for stripe in &core.stripes {
                    let sketch = lock_recovering(stripe);
                    merged.merge_from(&sketch);
                }
                merged.summary()
            }
            None => WeightedSummary::empty(),
        }
    }

    /// Estimate the φ-quantile of the recorded observations.
    pub fn quantile(&self, phi: f64) -> Option<f64> {
        self.summary().quantile_bits(phi).map(f64::from_ordered_bits)
    }

    /// The accuracy parameter this recorder was built with.
    pub fn k(&self) -> usize {
        match &self.core {
            Some(core) => core.k,
            None => 0,
        }
    }

    /// See [`Counter::same_instrument`](crate::Counter::same_instrument).
    pub fn same_instrument(&self, other: &LatencyRecorder) -> bool {
        match (&self.core, &other.core) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }
}

impl std::fmt::Debug for LatencyRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyRecorder")
            .field("enabled", &self.is_enabled())
            .field("count", &self.count())
            .finish()
    }
}

/// Telemetry must keep working after a writer panic: recover the guard.
fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p50/p99 within the sketch's ε(k) rank bound of an exact oracle,
    /// even with observations spread across stripes by many threads.
    #[test]
    fn quantiles_match_exact_oracle_within_epsilon() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 5_000;
        const N: usize = THREADS * PER_THREAD;
        let recorder = LatencyRecorder::new(DEFAULT_K);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let recorder = recorder.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Distinct values across all threads: t + THREADS*i.
                        recorder.record((t + THREADS * i) as f64);
                    }
                });
            }
        });
        assert_eq!(recorder.count(), N as u64);

        // Merging STRIPES sketches of the same k keeps the rank error
        // O(ε(k)); allow a 3ε cushion for the stripe merge.
        let eps = Sketch::<f64>::new(DEFAULT_K).epsilon();
        let tolerance = 3.0 * eps * N as f64;
        for phi in [0.5, 0.99, 0.999] {
            let estimate = recorder.quantile(phi).expect("non-empty recorder");
            // Values are exactly 0..N, so the true rank of `estimate` is
            // `estimate` itself.
            let target_rank = phi * N as f64;
            assert!(
                (estimate - target_rank).abs() <= tolerance,
                "phi={phi}: estimate {estimate} vs target rank {target_rank} (tol {tolerance})"
            );
        }
    }

    #[test]
    fn summary_is_mergeable_and_counts_everything() {
        use qc_common::engine::MergeableSketch;
        let a = LatencyRecorder::new(64);
        let b = LatencyRecorder::new(64);
        for i in 0..1000 {
            a.record(i as f64);
            b.record((i + 1000) as f64);
        }
        let sa = a.summary();
        let sb = b.summary();
        assert_eq!(sa.stream_len(), 1000);
        assert_eq!(sb.stream_len(), 1000);
        // Federation path: absorb both summaries into a fresh sketch.
        let mut merged = Sketch::<f64>::new(64);
        merged.absorb_summary(&sa);
        merged.absorb_summary(&sb);
        assert_eq!(merged.n(), 2000);
        let median = merged.quantile(0.5).unwrap();
        assert!((700.0..1300.0).contains(&median), "median {median}");
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = LatencyRecorder::disabled();
        r.record(1.0);
        r.record_duration(Duration::from_millis(5));
        assert_eq!(r.count(), 0);
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.summary(), WeightedSummary::empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn record_duration_records_seconds() {
        let r = LatencyRecorder::new(32);
        r.record_duration(Duration::from_millis(250));
        assert_eq!(r.count(), 1);
        let v = r.quantile(0.5).unwrap();
        assert!((v - 0.25).abs() < 1e-9, "got {v}");
    }
}
