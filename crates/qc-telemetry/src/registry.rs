//! The instrument registry and its snapshot/exposition formats.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qc_common::bits::OrderedBits;
use qc_common::summary::{Summary, WeightedSummary};

use crate::events::{EventKind, EventRing};
use crate::instrument::{Counter, Gauge};
use crate::latency::{LatencyRecorder, DEFAULT_K};

/// Default event-ring capacity for [`Registry::new`].
const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Quantiles rendered in text exposition (`render_text`).
const RENDERED_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    latencies: BTreeMap<String, LatencyRecorder>,
}

/// A named collection of instruments plus one event ring.
///
/// `counter`/`gauge`/`latency` are get-or-register: the first call for a
/// name creates the instrument, later calls hand out another handle to
/// the same one, so independent subsystems can share an instrument by
/// name. Registration takes a mutex; the returned handles do not (keep
/// handles, don't re-look-up on hot paths).
///
/// [`Registry::disabled`] is the no-op mode: every instrument it hands
/// out is inert and nothing is registered, which is what the overhead
/// benchmark compares against.
pub struct Registry {
    enabled: bool,
    instruments: Mutex<Instruments>,
    events: EventRing,
    started: Instant,
}

impl Registry {
    /// A live registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A live registry whose event ring keeps the newest `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self {
            enabled: true,
            instruments: Mutex::new(Instruments::default()),
            events: EventRing::new(capacity),
            started: Instant::now(),
        }
    }

    /// The no-op registry: instruments are inert, events vanish,
    /// snapshots are empty.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            instruments: Mutex::new(Instruments::default()),
            events: EventRing::disabled(),
            started: Instant::now(),
        }
    }

    /// Whether instruments from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Time since the registry was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::disabled();
        }
        let mut inner = lock_recovering(&self.instruments);
        // NOT `or_default()`: the Default handle is the *disabled* no-op,
        // `new()` is the live instrument.
        #[allow(clippy::unwrap_or_default)]
        inner.counters.entry(name.to_owned()).or_insert_with(Counter::new).clone()
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::disabled();
        }
        let mut inner = lock_recovering(&self.instruments);
        // NOT `or_default()`: the Default handle is the *disabled* no-op.
        #[allow(clippy::unwrap_or_default)]
        inner.gauges.entry(name.to_owned()).or_insert_with(Gauge::new).clone()
    }

    /// Get or register the latency recorder named `name` (default k).
    pub fn latency(&self, name: &str) -> LatencyRecorder {
        self.latency_with_k(name, DEFAULT_K)
    }

    /// Get or register a latency recorder with an explicit accuracy
    /// parameter. If the name already exists the existing recorder is
    /// returned and `k` is ignored.
    pub fn latency_with_k(&self, name: &str, k: usize) -> LatencyRecorder {
        if !self.enabled {
            return LatencyRecorder::disabled();
        }
        let mut inner = lock_recovering(&self.instruments);
        inner.latencies.entry(name.to_owned()).or_insert_with(|| LatencyRecorder::new(k)).clone()
    }

    /// Record a structured event (never blocks).
    pub fn event(&self, kind: EventKind, detail: impl Into<String>) {
        self.events.push(kind, detail);
    }

    /// The event ring (drain it to inspect recent events).
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock_recovering(&self.instruments);
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(n, g)| (n.clone(), g.get())).collect(),
            latencies: inner.latencies.iter().map(|(n, l)| (n.clone(), l.summary())).collect(),
        }
    }

    /// Prometheus-style text exposition of a fresh snapshot.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = lock_recovering(&self.instruments);
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("latencies", &inner.latencies.len())
            .field("events", &self.events)
            .finish()
    }
}

fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A point-in-time copy of a registry: counter values, gauge values, and
/// one [`WeightedSummary`] per latency recorder.
///
/// Entries are sorted by name. This is the payload of the server's
/// `Metrics` protocol frame; the latency summaries travel in the store's
/// CRC-checked wire format and merge with `merge_summaries` on the far
/// side, so snapshots from several servers federate into one quantile
/// estimate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, cumulative value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, current value)`, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, merged stripe summary)`, sorted by name.
    pub latencies: Vec<(String, WeightedSummary)>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Latency summary named `name`, if present.
    pub fn latency(&self, name: &str) -> Option<&WeightedSummary> {
        self.latencies.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// φ-quantile of the latency summary named `name` (None if the name
    /// is unknown or the summary is empty).
    pub fn quantile(&self, name: &str, phi: f64) -> Option<f64> {
        self.latency(name)?.quantile_bits(phi).map(f64::from_ordered_bits)
    }

    /// Prometheus-style text exposition:
    ///
    /// ```text
    /// # TYPE requests counter
    /// requests 42
    /// # TYPE queue_depth gauge
    /// queue_depth 3
    /// # TYPE request_seconds summary
    /// request_seconds{quantile="0.5"} 0.0042
    /// request_seconds_count 42
    /// ```
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, summary) in &self.latencies {
            let _ = writeln!(out, "# TYPE {name} summary");
            for phi in RENDERED_QUANTILES {
                if let Some(v) = summary.quantile_bits(phi).map(f64::from_ordered_bits) {
                    let _ = writeln!(out, "{name}{{quantile=\"{phi}\"}} {v}");
                }
            }
            let _ = writeln!(out, "{name}_count {}", summary.stream_len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_shares_instruments() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.incr();
        b.add(2);
        assert!(a.same_instrument(&b));
        assert_eq!(registry.snapshot().counter("hits"), Some(3));

        let l1 = registry.latency("lat");
        let l2 = registry.latency_with_k("lat", 999); // k ignored: exists
        assert!(l1.same_instrument(&l2));
        assert_eq!(l1.k(), l2.k());
    }

    #[test]
    fn snapshot_contains_all_instrument_kinds_sorted() {
        let registry = Registry::new();
        registry.counter("b_counter").add(7);
        registry.counter("a_counter").add(1);
        registry.gauge("depth").set(-2);
        registry.latency("lat").record(0.5);

        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_counter", "b_counter"]);
        assert_eq!(snap.gauge("depth"), Some(-2));
        assert_eq!(snap.latency("lat").unwrap().stream_len(), 1);
        assert_eq!(snap.quantile("lat", 0.5), Some(0.5));
        assert_eq!(snap.quantile("missing", 0.5), None);
    }

    #[test]
    fn disabled_registry_registers_nothing() {
        let registry = Registry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("hits");
        c.add(10);
        registry.gauge("g").set(5);
        registry.latency("l").record(1.0);
        registry.event(EventKind::ConnOpen, "peer=x");
        let snap = registry.snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
        assert_eq!(registry.render_text(), "");
        assert!(registry.events().drain().is_empty());
    }

    #[test]
    fn render_text_has_prometheus_shape() {
        let registry = Registry::new();
        registry.counter("reqs").add(3);
        registry.gauge("depth").set(2);
        let lat = registry.latency("lat_seconds");
        for i in 0..100 {
            lat.record(i as f64 / 100.0);
        }
        let text = registry.render_text();
        assert!(text.contains("# TYPE reqs counter"));
        assert!(text.contains("reqs 3"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 2"));
        assert!(text.contains("# TYPE lat_seconds summary"));
        assert!(text.contains("lat_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("lat_seconds_count 100"));
    }

    #[test]
    fn events_flow_through_registry() {
        let registry = Registry::new();
        registry.event(EventKind::LeaseFallback, "key=k1");
        let events = registry.events().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::LeaseFallback);
    }

    #[test]
    fn uptime_advances() {
        let registry = Registry::new();
        std::thread::sleep(Duration::from_millis(1));
        assert!(registry.uptime() > Duration::ZERO);
    }
}
