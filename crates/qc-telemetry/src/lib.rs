//! # qc-telemetry — the suite observing itself with its own sketches
//!
//! A std-only metrics layer shared by [`qc-store`] and [`qc-server`]. The
//! design goal is *always-on* instrumentation: every instrument is cheap
//! enough to leave enabled in production, and the whole registry collapses
//! to no-ops via [`Registry::disabled`] so the overhead can be measured
//! (and is benched in `qc-bench` to stay under 2% on the hot update path).
//!
//! ## Instruments
//!
//! | Instrument          | Implementation                              | Cost per op |
//! |---------------------|---------------------------------------------|-------------|
//! | [`Counter`]         | 16 cache-line-padded relaxed `AtomicU64`s, sharded by thread | one relaxed `fetch_add` |
//! | [`Gauge`]           | a single relaxed `AtomicI64`                | one relaxed RMW |
//! | [`LatencyRecorder`] | stripe of mutexes over `qc_sequential::Sketch<f64>` | one `try_lock` + sketch update |
//! | [`EventRing`]       | fixed-size lock-free ring of structured [`Event`]s | `fetch_add` + `try_lock`, never blocks |
//!
//! ## Self-sketching
//!
//! The latency "histogram" is not a histogram at all: it **is** the repo's
//! own quantile sketch ([`qc_sequential::Sketch`]), so p50/p99/p999 come
//! from the same ε(k)-guaranteed estimator the paper reproduces, and a
//! telemetry snapshot is a set of named [`WeightedSummary`]s that reuse
//! the store's CRC-checked wire format and merge with `merge_summaries`
//! for multi-server federation.
//!
//! ```
//! use qc_telemetry::{EventKind, Registry};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests");
//! let latency = registry.latency("request_seconds");
//!
//! requests.incr();
//! latency.record(0.0042);
//! registry.event(EventKind::SlowRequest, "peer=127.0.0.1:9 op=query");
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("requests"), Some(1));
//! assert!(snap.quantile("request_seconds", 0.99).is_some());
//! println!("{}", snap.render_text());
//! ```
//!
//! [`qc-store`]: ../qc_store/index.html
//! [`qc-server`]: ../qc_server/index.html
//! [`WeightedSummary`]: qc_common::summary::WeightedSummary

pub mod events;
pub mod instrument;
pub mod latency;
pub mod registry;

pub use events::{Event, EventKind, EventRing};
pub use instrument::{Counter, Gauge};
pub use latency::LatencyRecorder;
pub use registry::{MetricsSnapshot, Registry};
