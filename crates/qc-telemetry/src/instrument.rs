//! Sharded counters and gauges.
//!
//! Counters are the hottest instrument (one per store update, per request
//! byte, …) so they shard across cache-line-padded atomics indexed by a
//! per-thread slot: concurrent writers on different threads touch
//! different cache lines, and [`Counter::get`] sums the shards. Relaxed
//! ordering everywhere — a counter read races its writers by design and
//! is exact once the writers are quiescent (the same contract as
//! quancurrent's own `SketchStats`).

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

/// Number of counter shards; power of two so the thread slot maps with a
/// mask. 16 × 64 B = 1 KiB per counter, paid only for enabled registries.
pub(crate) const SHARDS: usize = 16;

/// Monotone thread slot allocator (never reused; only the low bits matter).
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's shard index, assigned round-robin on first use.
#[inline]
pub(crate) fn shard_index() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut ix = slot.get();
        if ix == usize::MAX {
            ix = NEXT_THREAD_SLOT.fetch_add(1, Relaxed);
            slot.set(ix);
        }
        ix & (SHARDS - 1)
    })
}

/// One atomic per cache line so shards don't false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

struct CounterCore {
    shards: [PaddedU64; SHARDS],
}

/// A monotone event counter.
///
/// Handles are cheap clones sharing one set of shards; the default value
/// (and [`Counter::disabled`]) is a no-op handle whose operations compile
/// to a branch on a null `Option`.
#[derive(Clone, Default)]
pub struct Counter {
    core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// A live counter starting at zero.
    pub fn new() -> Self {
        Self { core: Some(Arc::new(CounterCore { shards: Default::default() })) }
    }

    /// A no-op handle: `add` does nothing, `get` reads zero.
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Add `n` to the counter (relaxed, on this thread's shard).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.core {
            core.shards[shard_index()].0.fetch_add(n, Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all shards. Exact when writers are quiescent; otherwise a
    /// relaxed snapshot that never under-reports a completed `add`.
    pub fn get(&self) -> u64 {
        match &self.core {
            Some(core) => core.shards.iter().map(|s| s.0.load(Relaxed)).sum(),
            None => 0,
        }
    }

    /// Two handles are siblings if they share the same shards (used by the
    /// registry's get-or-register to hand out the same instrument twice).
    pub fn same_instrument(&self, other: &Counter) -> bool {
        match (&self.core, &other.core) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("enabled", &self.is_enabled())
            .field("value", &self.get())
            .finish()
    }
}

/// A signed point-in-time value (queue depth, live connections, resident
/// keys). Single atomic — gauges are read-mostly and rarely contended.
#[derive(Clone, Default)]
pub struct Gauge {
    core: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A live gauge starting at zero.
    pub fn new() -> Self {
        Self { core: Some(Arc::new(AtomicI64::new(0))) }
    }

    /// A no-op handle.
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(core) = &self.core {
            core.store(v, Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(core) = &self.core {
            core.fetch_add(delta, Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        match &self.core {
            Some(core) => core.load(Relaxed),
            None => 0,
        }
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("enabled", &self.is_enabled())
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    /// The headline contract: sharding never loses an increment.
    #[test]
    fn counter_sums_exactly_under_8_threads() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 100_000;
        let counter = Counter::new();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    barrier.wait();
                    for _ in 0..PER_THREAD {
                        counter.incr();
                    }
                });
            }
        });
        assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn counter_add_and_clone_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(b.get(), 7);
        assert!(a.same_instrument(&b));
        assert!(!a.same_instrument(&Counter::new()));
    }

    #[test]
    fn disabled_counter_is_inert() {
        let c = Counter::disabled();
        c.add(100);
        c.incr();
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());
        assert!(c.same_instrument(&Counter::disabled()));
    }

    #[test]
    fn gauge_tracks_signed_values() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 6);
        let h = g.clone();
        h.add(-6);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn disabled_gauge_is_inert() {
        let g = Gauge::disabled();
        g.set(42);
        g.inc();
        assert_eq!(g.get(), 0);
    }
}
