//! A fixed-size, lock-free-for-writers ring of structured events.
//!
//! Replaces ad-hoc silent drops (swallowed protocol errors, invisible
//! promotions) with a bounded buffer a debugging session can drain. The
//! contract writers get:
//!
//! - **push never blocks**: one relaxed `fetch_add` to claim a sequence
//!   number, then a single `try_lock` on the target slot. If the slot is
//!   busy the event is dropped — and *counted*.
//! - **oldest-first drop**: the ring keeps the newest `capacity` events.
//! - **exact accounting**: every claimed sequence number is eventually
//!   classified by [`EventRing::drain`] as drained or dropped, exactly
//!   once, so `pushed() == drained_events() + dropped_events()` whenever
//!   the ring is quiescent and fully drained.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, TryLockError};
use std::time::Instant;

/// What happened. Labels are stable snake_case strings used in events
/// exposition and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A connection was accepted.
    ConnOpen,
    /// A connection closed cleanly (EOF).
    ConnClose,
    /// A connection terminated on an I/O error.
    IoError,
    /// A frame failed to decode (malformed, oversized, unknown opcode).
    ProtoError,
    /// A request exceeded the server's slow-request threshold.
    SlowRequest,
    /// A key's engine was promoted to the hot tier.
    Promotion,
    /// A key's engine was demoted back to the cold tier.
    Demotion,
    /// A leased writer went stale and the write fell back to the
    /// exclusive path.
    LeaseFallback,
    /// A key was removed from the store.
    Eviction,
    /// A store recovered its state from a durable data directory.
    Recovery,
    /// The store wrote a checkpoint and pruned the log behind it.
    Checkpoint,
    /// An append or sync of the durable log failed; the store keeps
    /// serving from memory but durability has degraded.
    WalError,
    /// The ingest processor queue saturated and datagrams were dropped
    /// (queue-full shedding began).
    Overload,
    /// The ingest circuit breaker opened: datagrams shed on arrival for a
    /// backoff window.
    CircuitOpen,
    /// The ingest circuit breaker closed: a probe datagram got through
    /// and normal admission resumed.
    CircuitClose,
}

impl EventKind {
    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::ConnOpen => "conn_open",
            EventKind::ConnClose => "conn_close",
            EventKind::IoError => "io_error",
            EventKind::ProtoError => "proto_error",
            EventKind::SlowRequest => "slow_request",
            EventKind::Promotion => "promotion",
            EventKind::Demotion => "demotion",
            EventKind::LeaseFallback => "lease_fallback",
            EventKind::Eviction => "eviction",
            EventKind::Recovery => "recovery",
            EventKind::Checkpoint => "checkpoint",
            EventKind::WalError => "wal_error",
            EventKind::Overload => "overload",
            EventKind::CircuitOpen => "circuit_open",
            EventKind::CircuitClose => "circuit_close",
        }
    }
}

/// One structured event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (dense across pushed events, including
    /// dropped ones).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub at_micros: u64,
    /// Category.
    pub kind: EventKind,
    /// Free-form context (`peer=… op=…`), kept short by callers.
    pub detail: String,
}

/// A slot holds the event for sequence `seq`, or an older/poisoned state
/// that drain classifies. `seq == u64::MAX` marks a never-written slot.
struct Slot {
    seq: u64,
    event: Option<Event>,
}

/// See the module docs for the writer contract.
pub struct EventRing {
    /// `None` for the disabled ring (pushes are no-ops).
    slots: Option<Box<[Mutex<Slot>]>>,
    /// `slots.len() - 1`; capacity is a power of two.
    mask: u64,
    /// Next sequence number to claim.
    head: AtomicU64,
    /// Cumulative events returned by `drain`.
    drained: AtomicU64,
    /// Cumulative events classified as dropped.
    dropped: AtomicU64,
    /// Serializes drainers; holds the next undrained sequence number.
    cursor: Mutex<u64>,
    epoch: Instant,
}

impl EventRing {
    /// A live ring holding the newest `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| Mutex::new(Slot { seq: u64::MAX, event: None }))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots: Some(slots),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cursor: Mutex::new(0),
            epoch: Instant::now(),
        }
    }

    /// A ring that records nothing.
    pub fn disabled() -> Self {
        Self {
            slots: None,
            mask: 0,
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cursor: Mutex::new(0),
            epoch: Instant::now(),
        }
    }

    /// Whether pushes record anything.
    pub fn is_enabled(&self) -> bool {
        self.slots.is_some()
    }

    /// Slot count (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.slots.as_ref().map_or(0, |s| s.len())
    }

    /// Record an event. Never blocks: a busy slot drops the event (it is
    /// counted as dropped when drain reaches its sequence number).
    pub fn push(&self, kind: EventKind, detail: impl Into<String>) {
        let Some(slots) = &self.slots else { return };
        let seq = self.head.fetch_add(1, Relaxed);
        let slot = &slots[(seq & self.mask) as usize];
        let written = Slot {
            seq,
            event: Some(Event {
                seq,
                at_micros: self.epoch.elapsed().as_micros() as u64,
                kind,
                detail: detail.into(),
            }),
        };
        match slot.try_lock() {
            Ok(mut guard) => *guard = written,
            Err(TryLockError::Poisoned(poisoned)) => *poisoned.into_inner() = written,
            // Busy (a drain or a lapped writer holds it): drop the event.
            Err(TryLockError::WouldBlock) => {}
        }
    }

    /// Total events ever pushed (including dropped ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Relaxed)
    }

    /// Cumulative events returned by [`EventRing::drain`].
    pub fn drained_events(&self) -> u64 {
        self.drained.load(Relaxed)
    }

    /// Cumulative events classified as dropped (lapped before drain, or
    /// lost a `try_lock` race). Only advances during `drain`.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Remove and return all undrained events, in sequence order.
    ///
    /// Every sequence number between the drain cursor and the current head
    /// is classified exactly once: returned, or added to
    /// [`EventRing::dropped_events`].
    pub fn drain(&self) -> Vec<Event> {
        let Some(slots) = &self.slots else { return Vec::new() };
        let mut cursor = match self.cursor.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let head = self.head.load(Relaxed);
        let capacity = slots.len() as u64;
        // Sequences older than head - capacity were overwritten (oldest
        // dropped first); count them without touching their slots.
        let start = (*cursor).max(head.saturating_sub(capacity));
        let mut dropped = start - *cursor;
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let mut slot = match slots[(seq & self.mask) as usize].lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if slot.seq == seq {
                match slot.event.take() {
                    Some(event) => out.push(event),
                    None => dropped += 1,
                }
            } else {
                // Either a newer event lapped this one, or the push for
                // `seq` lost its try_lock race and never wrote.
                dropped += 1;
            }
        }
        *cursor = head;
        self.dropped.fetch_add(dropped, Relaxed);
        self.drained.fetch_add(out.len() as u64, Relaxed);
        out
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped_events())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_and_counts_drops_exactly() {
        let ring = EventRing::new(8);
        for i in 0..100 {
            ring.push(EventKind::ConnOpen, format!("n={i}"));
        }
        let events = ring.drain();
        // Oldest-first drop: exactly the newest `capacity` survive.
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (92..100).collect::<Vec<u64>>());
        assert_eq!(ring.dropped_events(), 92);
        assert_eq!(ring.pushed(), ring.drained_events() + ring.dropped_events());
    }

    #[test]
    fn drain_is_incremental() {
        let ring = EventRing::new(16);
        ring.push(EventKind::Promotion, "key=a");
        ring.push(EventKind::Demotion, "key=a");
        assert_eq!(ring.drain().len(), 2);
        assert_eq!(ring.drain().len(), 0);
        ring.push(EventKind::Eviction, "key=b");
        let next = ring.drain();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].kind, EventKind::Eviction);
        assert_eq!(next[0].detail, "key=b");
        assert_eq!(ring.dropped_events(), 0);
    }

    /// Concurrency conservation law: after the writers quiesce and a final
    /// drain runs, every pushed event was either drained or dropped.
    #[test]
    fn concurrent_pushes_never_block_and_conserve_counts() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        let ring = EventRing::new(64);
        let mut drained_total = 0u64;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        ring.push(EventKind::SlowRequest, format!("t={t} i={i}"));
                    }
                });
            }
            // A concurrent drainer exercising the try_lock contention path.
            drained_total += ring.drain().len() as u64;
        });
        drained_total += ring.drain().len() as u64;
        assert_eq!(ring.pushed(), (THREADS * PER_THREAD) as u64);
        assert_eq!(ring.drained_events(), drained_total);
        assert_eq!(
            ring.pushed(),
            ring.drained_events() + ring.dropped_events(),
            "conservation: pushed = drained + dropped"
        );
    }

    #[test]
    fn events_carry_ordered_timestamps() {
        let ring = EventRing::new(8);
        ring.push(EventKind::ConnOpen, "peer=a");
        std::thread::sleep(std::time::Duration::from_millis(2));
        ring.push(EventKind::ConnClose, "peer=a");
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert!(events[0].at_micros <= events[1].at_micros);
        assert_eq!(events[0].kind.label(), "conn_open");
    }

    #[test]
    fn disabled_ring_is_inert() {
        let ring = EventRing::disabled();
        ring.push(EventKind::ProtoError, "x");
        assert_eq!(ring.pushed(), 0);
        assert!(ring.drain().is_empty());
        assert_eq!(ring.capacity(), 0);
        assert!(!ring.is_enabled());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::new(0).capacity(), 8);
        assert_eq!(EventRing::new(9).capacity(), 16);
        assert_eq!(EventRing::new(64).capacity(), 64);
    }
}
