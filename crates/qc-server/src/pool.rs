//! A fixed-size blocking thread pool with a bounded handoff queue.
//!
//! The server uses one pool for connection handling: the accept loop
//! [`execute`](ThreadPool::execute)s each accepted socket, and when all
//! workers are busy the bounded queue is the *accept backlog* — once it
//! fills, the accept loop itself blocks, which in turn lets the kernel's
//! listen queue exert backpressure on clients instead of the server
//! buffering unboundedly.
//!
//! An instrumented pool ([`ThreadPool::with_instruments`]) reports its
//! queue depth through a [`Gauge`] (jobs submitted but not yet picked up
//! by a worker) and counts *saturation* events — submissions that found
//! the queue full and had to block — through a [`Counter`]. Saturation is
//! the backpressure signal: a persistently climbing counter means the
//! pool is undersized for the accept rate.

use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use qc_telemetry::{Counter, Gauge};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool has shut down and accepts no further jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool is shut down")
    }
}

impl std::error::Error for PoolClosed {}

/// Fixed worker threads pulling jobs from one bounded queue.
pub struct ThreadPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs submitted but not yet picked up by a worker.
    depth: Gauge,
    /// Submissions that found the queue full and blocked.
    saturation: Counter,
}

impl ThreadPool {
    /// Spawn `threads` workers (minimum 1) sharing a queue of `backlog`
    /// pending jobs (minimum 1). `name` prefixes worker thread names.
    /// Uninstrumented: see [`ThreadPool::with_instruments`].
    pub fn new(threads: usize, backlog: usize, name: &str) -> Self {
        Self::with_instruments(threads, backlog, name, Gauge::disabled(), Counter::disabled())
    }

    /// [`ThreadPool::new`] plus instruments: `depth` tracks the number of
    /// queued (not yet picked up) jobs, `saturation` counts submissions
    /// that found the queue full and had to block.
    pub fn with_instruments(
        threads: usize,
        backlog: usize,
        name: &str,
        depth: Gauge,
        saturation: Counter,
    ) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Job>(backlog.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { sender: Some(sender), workers, depth, saturation }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Hand a job to the pool. Blocks while the backlog queue is full;
    /// fails only after [`shutdown`](ThreadPool::shutdown).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed> {
        let sender = self.sender.as_ref().ok_or(PoolClosed)?;
        // The job decrements the depth gauge itself the moment a worker
        // picks it up, so the gauge reads "queued, not yet started".
        let depth = self.depth.clone();
        let job = Box::new(move || {
            depth.dec();
            job();
        });
        self.depth.inc();
        // Non-blocking attempt first purely to *observe* saturation; the
        // blocking send that follows preserves the backpressure contract.
        let job = match sender.try_send(job) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Full(job)) => {
                self.saturation.incr();
                job
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.dec();
                return Err(PoolClosed);
            }
        };
        sender.send(job).map_err(|_| {
            self.depth.dec();
            PoolClosed
        })
    }

    /// Graceful shutdown: stop accepting jobs, run everything already
    /// queued, join all workers.
    pub fn shutdown(mut self) {
        self.join_workers();
    }

    fn join_workers(&mut self) {
        // Dropping the sender closes the channel; workers drain and exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.join_workers();
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only for the dequeue, never while running a job.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // a worker panicked mid-recv; stop cleanly
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = ThreadPool::new(4, 16, "test");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_joins_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2, 8, "drop");
            for _ in 0..20 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
        } // Drop must behave like shutdown: drain the queue, join workers.
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn blocked_backlog_drains_and_completes() {
        // Single worker, queue depth 1: deeper submissions block in
        // execute() until the worker frees slots, and every job still
        // runs exactly once.
        let pool = ThreadPool::new(1, 1, "full");
        let gate = Arc::new(std::sync::Barrier::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let enter = Arc::clone(&gate);
        pool.execute(move || {
            enter.wait();
        })
        .unwrap();
        {
            let counter = Arc::clone(&counter);
            let pool = &pool;
            std::thread::scope(|s| {
                s.spawn(move || {
                    for _ in 0..10 {
                        let counter = Arc::clone(&counter);
                        pool.execute(move || {
                            counter.fetch_add(1, Ordering::Relaxed);
                        })
                        .unwrap();
                    }
                });
                gate.wait(); // release the worker while submissions block
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn instruments_track_depth_and_saturation() {
        let registry = qc_telemetry::Registry::new();
        let depth = registry.gauge("pool_depth");
        let saturation = registry.counter("pool_saturation");
        let pool = ThreadPool::with_instruments(1, 1, "inst", depth.clone(), saturation.clone());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let enter = Arc::clone(&gate);
        // Occupy the single worker so further submissions pile into the
        // depth-1 queue and at least one finds it full.
        pool.execute(move || {
            enter.wait();
        })
        .unwrap();
        {
            let counter = Arc::clone(&counter);
            let pool = &pool;
            std::thread::scope(|s| {
                s.spawn(move || {
                    for _ in 0..5 {
                        let counter = Arc::clone(&counter);
                        pool.execute(move || {
                            counter.fetch_add(1, Ordering::Relaxed);
                        })
                        .unwrap();
                    }
                });
                gate.wait(); // release the worker while submissions block
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 5);
        assert!(saturation.get() >= 1, "a full queue must count saturation");
        assert_eq!(depth.get(), 0, "every picked-up job must decrement the gauge");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0, 0, "clamp");
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
