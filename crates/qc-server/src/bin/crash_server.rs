//! Child-process target for the crash-injection suite.
//!
//! Binds a durable server on an ephemeral port, publishes the address
//! through a ready file (written atomically: temp + rename, so the
//! parent never reads a half-written address), then parks forever — the
//! parent test ends this process with SIGKILL, which is the whole point:
//! no destructor, no flush, no goodbye. Everything the parent can then
//! recover must have come through the write-ahead log's fsyncs.
//!
//! Usage: `crash_server <data_dir> <ready_file> [cool_down_ms] [windowed] [group]`
//!
//! The literal argument `windowed` switches the store to one-second
//! time windows (mirrored by `windowed_recover_cfg` in the crash suite —
//! recovery must be configured like the store that wrote the log). The
//! literal argument `group` sets a 2ms group-commit leader hold-off, so
//! concurrent writers form real multi-append commit groups and the
//! parent's SIGKILL lands mid-group.

use std::time::Duration;

use qc_server::{Server, ServerConfig};
use qc_store::{StoreConfig, WindowConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: crash_server <data_dir> <ready_file> [cool_down_ms] [windowed] [group]";
    let data_dir = args.next().expect(usage);
    let ready_file = args.next().expect(usage);
    let mut cool_down_ms: Option<u64> = None;
    let mut windowed = false;
    let mut group = false;
    for arg in args {
        if arg == "windowed" {
            windowed = true;
        } else if arg == "group" {
            group = true;
        } else {
            cool_down_ms = Some(arg.parse().expect("cool_down_ms: u64"));
        }
    }

    let mut store = if windowed {
        StoreConfig::default().window(WindowConfig::default().width(Duration::from_secs(1)))
    } else {
        StoreConfig::default()
    };
    if group {
        store = store.group_commit_delay(Duration::from_millis(2));
    }
    let cfg = ServerConfig {
        store,
        data_dir: Some(data_dir.into()),
        cool_down_interval: cool_down_ms.map(Duration::from_millis),
        ..Default::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind durable server");

    let tmp = format!("{ready_file}.tmp");
    std::fs::write(&tmp, handle.local_addr().to_string()).expect("write ready file");
    std::fs::rename(&tmp, &ready_file).expect("publish ready file");

    // Park until SIGKILLed. The handle must stay alive (dropping it would
    // shut the server down gracefully, defeating the test).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
