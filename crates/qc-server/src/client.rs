//! A small blocking client for the serving protocol.
//!
//! One [`Client`] wraps one TCP connection with buffered framing; it is
//! deliberately `!Sync` (methods take `&mut self`) — open one client per
//! thread, exactly like the sketch's own per-thread [`quancurrent::Updater`]
//! discipline. Used by the examples, the benchmarks, and the integration
//! tests.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use qc_common::summary::WeightedSummary;
use qc_store::wire::{decode_summary, WireError};
use qc_store::StoreStats;
use qc_telemetry::MetricsSnapshot;

use crate::proto::{
    read_frame, write_frame, ErrorCode, ProtoError, RecvError, Request, Response,
    DEFAULT_MAX_FRAME_LEN,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (including the server closing mid-exchange).
    Io(std::io::Error),
    /// The server sent bytes the protocol rejects.
    Proto(ProtoError),
    /// The server answered with [`Response::Error`].
    Remote {
        /// Failure category reported by the server.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong kind
    /// for the request (protocol version drift or a server bug).
    UnexpectedResponse {
        /// What the issued request expects.
        expected: &'static str,
    },
    /// A snapshot frame failed summary decoding client-side.
    Wire(WireError),
    /// An earlier framing violation desynchronized this connection; it
    /// is closed and every further call fails with this error. Reconnect.
    Poisoned,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::UnexpectedResponse { expected } => {
                write!(f, "unexpected response kind (expected {expected})")
            }
            ClientError::Wire(e) => write!(f, "snapshot frame invalid: {e}"),
            ClientError::Poisoned => {
                write!(f, "connection desynchronized by an earlier framing error; reconnect")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Proto(e) => ClientError::Proto(e),
        }
    }
}

/// A blocking connection to a `qc-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_len: usize,
    /// Set when a framing-level error leaves the byte stream out of sync
    /// (e.g. an over-cap frame whose body was never consumed): responses
    /// after that point would be garbage, so the connection is condemned.
    poisoned: bool,
}

impl Client {
    /// Connect with the default frame cap.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Self::connect_with_max_frame(addr, DEFAULT_MAX_FRAME_LEN)
    }

    /// Connect, capping response frames at `max_frame_len` bytes.
    pub fn connect_with_max_frame<A: ToSocketAddrs>(
        addr: A,
        max_frame_len: usize,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client { reader, writer, max_frame_len, poisoned: false })
    }

    /// Issue one request and read its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.exchange(&req.encode())
    }

    /// Send a pre-encoded body, then receive and decode the response.
    fn exchange(&mut self, body: &[u8]) -> Result<Response, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        write_frame(&mut self.writer, body)?;
        self.writer.flush()?;
        match read_frame(&mut self.reader, self.max_frame_len) {
            Ok(Some(body)) => Response::decode(&body).map_err(ClientError::Proto),
            Ok(None) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Err(RecvError::Io(e)) => Err(ClientError::Io(e)),
            Err(RecvError::Proto(e)) => {
                // Framing violation: the unread body is still in the pipe,
                // so the stream can never resynchronize. Condemn it.
                self.poisoned = true;
                let _ = self.writer.get_ref().shutdown(Shutdown::Both);
                Err(ClientError::Proto(e))
            }
        }
    }

    fn expect_ok(&mut self, req: &Request) -> Result<(), ClientError> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => unexpected(other, "Ok"),
        }
    }

    /// Feed one value into `key`'s stream.
    pub fn update(&mut self, key: &str, value: f64) -> Result<(), ClientError> {
        self.expect_ok(&Request::Update { key: key.into(), value })
    }

    /// Feed a batch of values into `key`'s stream in one round-trip.
    /// Encodes straight from the slice — no intermediate copy on the
    /// ingest hot path.
    pub fn update_many(&mut self, key: &str, values: &[f64]) -> Result<(), ClientError> {
        match self.exchange(&crate::proto::encode_update_many(key, values))? {
            Response::Ok => Ok(()),
            other => unexpected(other, "Ok"),
        }
    }

    /// Feed a batch of values stamped at event time `ts_ms` into `key`'s
    /// stream. On a windowed server the batch lands in the window covering
    /// `ts_ms` (rolling the active window forward, or taking the late path
    /// within the lateness bound); an unwindowed server treats this as
    /// [`Client::update_many`].
    pub fn update_at(&mut self, key: &str, ts_ms: u64, values: &[f64]) -> Result<(), ClientError> {
        self.expect_ok(&Request::UpdateAt { key: key.into(), ts: ts_ms, values: values.to_vec() })
    }

    /// φ-quantile estimate for `key` (`None`: absent or empty key).
    pub fn query(&mut self, key: &str, phi: f64) -> Result<Option<f64>, ClientError> {
        match self.call(&Request::Query { key: key.into(), phi })? {
            Response::MaybeValue(v) => Ok(v),
            other => unexpected(other, "MaybeValue"),
        }
    }

    /// φ-quantile estimate for `key` over event-time range `[t0_ms, t1_ms)`
    /// (`None`: absent key or no weight in the range). Sealed windows
    /// overlapping the range contribute whole — window-width granularity,
    /// exactly like [`qc_store::SketchStore::query_range`].
    pub fn query_range(
        &mut self,
        key: &str,
        t0_ms: u64,
        t1_ms: u64,
        phi: f64,
    ) -> Result<Option<f64>, ClientError> {
        match self.call(&Request::QueryRange { key: key.into(), t0: t0_ms, t1: t1_ms, phi })? {
            Response::MaybeValue(v) => Ok(v),
            other => unexpected(other, "MaybeValue"),
        }
    }

    /// Normalized rank of `value` in `key`'s stream.
    pub fn rank(&mut self, key: &str, value: f64) -> Result<Option<f64>, ClientError> {
        match self.call(&Request::Rank { key: key.into(), value })? {
            Response::MaybeValue(v) => Ok(v),
            other => unexpected(other, "MaybeValue"),
        }
    }

    /// φ-quantile over the union of `keys`.
    pub fn merged_query<K: AsRef<str>>(
        &mut self,
        keys: &[K],
        phi: f64,
    ) -> Result<Option<f64>, ClientError> {
        let keys = keys.iter().map(|k| k.as_ref().to_owned()).collect();
        match self.call(&Request::MergedQuery { keys, phi })? {
            Response::MaybeValue(v) => Ok(v),
            other => unexpected(other, "MaybeValue"),
        }
    }

    /// φ-quantile over the union of `keys` restricted to event-time range
    /// `[t0_ms, t1_ms)` — same window-width granularity as
    /// [`Client::query_range`], merged across keys server-side.
    pub fn merged_query_range<K: AsRef<str>>(
        &mut self,
        keys: &[K],
        t0_ms: u64,
        t1_ms: u64,
        phi: f64,
    ) -> Result<Option<f64>, ClientError> {
        let keys = keys.iter().map(|k| k.as_ref().to_owned()).collect();
        match self.call(&Request::MergedQueryRange { keys, t0: t0_ms, t1: t1_ms, phi })? {
            Response::MaybeValue(v) => Ok(v),
            other => unexpected(other, "MaybeValue"),
        }
    }

    /// Store-wide statistics.
    pub fn stats(&mut self) -> Result<StoreStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => unexpected(other, "Stats"),
        }
    }

    /// The server's telemetry snapshot: counters, gauges, and latency
    /// summaries (each latency is a mergeable [`WeightedSummary`] built by
    /// the server's own sketch engine — see
    /// [`MetricsSnapshot::quantile`]). Snapshots from several servers
    /// federate with [`qc_store::merge_summaries`].
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            other => unexpected(other, "Metrics"),
        }
    }

    /// Drop `key`; returns whether it existed.
    pub fn remove(&mut self, key: &str) -> Result<bool, ClientError> {
        match self.call(&Request::Remove { key: key.into() })? {
            Response::Flag(b) => Ok(b),
            other => unexpected(other, "Flag"),
        }
    }

    /// All resident keys (unordered).
    pub fn keys(&mut self) -> Result<Vec<String>, ClientError> {
        match self.call(&Request::Keys)? {
            Response::Keys(keys) => Ok(keys),
            other => unexpected(other, "Keys"),
        }
    }

    /// `key`'s resident summary as raw wire bytes (`None`: absent key).
    pub fn snapshot_bytes(&mut self, key: &str) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&Request::Snapshot { key: key.into() })? {
            Response::MaybeFrame(f) => Ok(f),
            other => unexpected(other, "MaybeFrame"),
        }
    }

    /// `key`'s resident summary, decoded (`None`: absent key).
    pub fn snapshot_summary(&mut self, key: &str) -> Result<Option<WeightedSummary>, ClientError> {
        match self.snapshot_bytes(key)? {
            None => Ok(None),
            Some(frame) => decode_summary(&frame).map(Some).map_err(ClientError::Wire),
        }
    }

    /// Merge a summary wire frame into `key`; returns the ingested stream
    /// length. A frame the store rejects surfaces as
    /// [`ClientError::Remote`] with [`ErrorCode::Wire`].
    pub fn ingest_bytes(&mut self, key: &str, frame: &[u8]) -> Result<u64, ClientError> {
        match self.call(&Request::Ingest { key: key.into(), frame: frame.to_vec() })? {
            Response::Count(n) => Ok(n),
            other => unexpected(other, "Count"),
        }
    }

    /// Close the connection (also happens on drop).
    pub fn shutdown(self) {
        let _ = self.writer.get_ref().shutdown(Shutdown::Both);
    }
}

fn unexpected<T>(resp: Response, expected: &'static str) -> Result<T, ClientError> {
    match resp {
        Response::Error { code, message } => Err(ClientError::Remote { code, message }),
        _ => Err(ClientError::UnexpectedResponse { expected }),
    }
}
