//! **qc-server** — a concurrent TCP serving layer over the keyed sketch
//! store.
//!
//! The ROADMAP's north star is a production system serving quantile
//! streams from millions of users; this crate is the socket in front of
//! [`qc_store::SketchStore`]:
//!
//! * [`proto`] — a length-prefixed binary protocol with typed
//!   [`proto::ProtoError`]s and panic-free total decoding. Snapshot and
//!   ingest payloads travel as `qc-store` wire frames, so the bytes a
//!   server emits are exactly the bytes any store (local or remote)
//!   ingests;
//! * [`server`] — a thread-pooled blocking server
//!   ([`server::Server::bind`]) with per-connection buffering, an
//!   application-level accept backlog, and graceful shutdown
//!   ([`server::ServerHandle::shutdown`]);
//! * [`pool`] — the bounded-queue worker pool behind it;
//! * [`client`] — a blocking [`client::Client`] used by the examples, the
//!   `server_ops` benchmarks, and the soak tests.
//!
//! Everything is `std`-only: no registry dependencies, no async runtime —
//! concurrency comes from worker threads, exactly like the paper's
//! N-updaters/unbounded-queriers model.
//!
//! The server observes itself through `qc-telemetry` instruments in the
//! store's registry: per-opcode request counts/bytes/latencies (the
//! latency histograms *are* quantile sketches), pool queue depth and
//! saturation, connection outcomes, and housekeeping sweep durations. One
//! `Metrics` frame ([`client::Client::metrics`]) ships the whole snapshot
//! — latency summaries travel in the store's CRC-checked wire format and
//! merge across servers with [`qc_store::merge_summaries`].
//!
//! ```no_run
//! use qc_server::{Client, Server, ServerConfig};
//!
//! let handle = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(handle.local_addr())?;
//! client.update_many("checkout-latency", &[3.1, 4.1, 5.9])?;
//! let p50 = client.query("checkout-latency", 0.5)?;
//! assert!(p50.is_some());
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod pool;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use pool::ThreadPool;
pub use proto::{ErrorCode, ProtoError, RecvError, Request, Response, METRICS_VERSION};
pub use qc_ingest::{IngestConfig, IngestDaemon, IngestHandle};
pub use qc_telemetry::MetricsSnapshot;
pub use server::{Server, ServerConfig, ServerHandle, LEASE_IDLE_FRAMES};
