//! The serving protocol: length-prefixed binary request/response frames.
//!
//! Every message on the socket is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     body length `L` (u32 LE; excludes these four bytes)
//! 4       L     body = opcode (u8) + payload
//! ```
//!
//! Payload primitives reuse the `qc-store` wire conventions — LEB128
//! varints ([`qc_store::wire::put_varint`]), little-endian `f64` bit
//! patterns, and length-prefixed UTF-8 strings — so a snapshot frame
//! travels as the *exact bytes* [`qc_store::wire::encode_summary`]
//! produces, checksummed and versioned by that layer. The protocol layer
//! itself stays checksum-free: TCP already protects the transport, and the
//! summary payloads (the only bulk data) carry their own CRC.
//!
//! # Safety contract
//!
//! Decoding is **total**: any byte sequence maps to `Ok` or a typed
//! [`ProtoError`] — never a panic. No decode path allocates
//! attacker-controlled sizes: every declared length/count is validated
//! against the bytes actually present (a count of `u64::MAX` is rejected
//! before any `Vec::with_capacity`), and the frame reader refuses bodies
//! larger than the configured [`max frame length`](read_frame) before
//! allocating.
//!
//! # Request/response catalogue (version 1)
//!
//! | opcode | request            | payload                               | response   |
//! |--------|--------------------|---------------------------------------|------------|
//! | `0x01` | [`Request::Update`]      | key, value(f64)                 | `Ok`       |
//! | `0x02` | [`Request::UpdateMany`]  | key, n, n×value(f64)            | `Ok`       |
//! | `0x03` | [`Request::Query`]       | key, φ(f64)                     | `MaybeValue` |
//! | `0x04` | [`Request::Rank`]        | key, value(f64)                 | `MaybeValue` |
//! | `0x05` | [`Request::MergedQuery`] | n, n×key, φ(f64)                | `MaybeValue` |
//! | `0x06` | [`Request::Stats`]       | —                               | `Stats`    |
//! | `0x07` | [`Request::Remove`]      | key                             | `Flag`     |
//! | `0x08` | [`Request::Keys`]        | —                               | `Keys`     |
//! | `0x09` | [`Request::Snapshot`]    | key                             | `MaybeFrame` |
//! | `0x0a` | [`Request::Ingest`]      | key, len, summary wire frame    | `Count`    |
//! | `0x0b` | [`Request::Metrics`]     | —                               | `Metrics`  |
//! | `0x0c` | [`Request::UpdateAt`]    | key, ts, n, n×value(f64)        | `Ok`       |
//! | `0x0d` | [`Request::QueryRange`]  | key, t0, t1, φ(f64)             | `MaybeValue` |
//! | `0x0e` | [`Request::MergedQueryRange`] | n, n×key, t0, t1, φ(f64)   | `MaybeValue` |
//!
//! Responses use the high bit: `0x80` `Ok`, `0x81` `MaybeValue`, `0x82`
//! `Count`, `0x83` `Flag`, `0x84` `Stats`, `0x85` `Keys`, `0x86`
//! `MaybeFrame`, `0x87` `Metrics`, `0x8f` `Error`.
//!
//! The `Metrics` payload is versioned independently of the frame
//! catalogue (leading version byte, currently [`METRICS_VERSION`]): it is
//! the one response whose shape grows as instruments are added, and the
//! version byte lets old clients fail typed instead of misparsing.
//! Latency instruments travel as embedded
//! [`qc_store::wire::encode_summary`] frames — CRC-checked, and mergeable
//! with [`qc_store::merge_summaries`] across servers.

use std::io::{self, Read, Write};

use qc_store::wire::{decode_summary, encode_summary, get_varint, put_varint, WireError};
use qc_store::StoreStats;
use qc_telemetry::MetricsSnapshot;

/// Bytes of the frame length prefix.
pub const LEN_PREFIX: usize = 4;

/// Default cap on a frame body; [`read_frame`] rejects longer bodies
/// before allocating. Generous for snapshot frames (a `k = 4096` summary
/// with 60 levels is still well under 4 MiB).
pub const DEFAULT_MAX_FRAME_LEN: usize = 8 << 20;

/// Version byte leading a [`Response::Metrics`] payload. Bumped whenever
/// the metrics payload layout changes shape (instrument *names* may come
/// and go freely; only the byte layout is versioned).
pub const METRICS_VERSION: u8 = 1;

/// Error codes carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// An embedded summary frame failed `qc-store` wire validation.
    Wire = 1,
    /// The request body could not be decoded (the connection survives:
    /// frame boundaries are intact, only this body was malformed).
    Proto = 2,
    /// The server refused the request (e.g. shutting down).
    Unavailable = 3,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::Wire),
            2 => Some(ErrorCode::Proto),
            3 => Some(ErrorCode::Unavailable),
            _ => None,
        }
    }
}

/// Typed protocol decode failures. Decoding must never panic, whatever
/// the bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Body ended before the payload it declares.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Frame length prefix exceeds the configured maximum.
    FrameTooLarge {
        /// Declared body length.
        len: u64,
        /// Configured cap.
        max: usize,
    },
    /// Empty body, or an opcode this build does not know.
    UnknownOpcode {
        /// The opcode byte found (0 for an empty body).
        found: u8,
    },
    /// A varint ran past 64 bits or past the end of the body.
    MalformedVarint {
        /// Byte offset of the varint's first byte.
        offset: usize,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string's first content byte.
        offset: usize,
    },
    /// A presence flag byte was neither 0 nor 1.
    BadFlag {
        /// Byte offset of the flag.
        offset: usize,
        /// The byte found.
        found: u8,
    },
    /// An unknown [`ErrorCode`] in an error response.
    UnknownErrorCode {
        /// The code byte found.
        found: u8,
    },
    /// A declared count does not fit this platform's `usize`.
    IntOutOfRange {
        /// Byte offset of the offending varint.
        offset: usize,
    },
    /// Well-formed message followed by unexpected extra bytes.
    TrailingBytes {
        /// Number of surplus bytes.
        extra: usize,
    },
    /// A metrics payload declared a version this build does not speak.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// An embedded latency summary failed `qc-store` wire validation
    /// (truncated frame, bad magic, CRC mismatch, …).
    BadSummary {
        /// Byte offset of the embedded frame's first byte.
        offset: usize,
        /// The wire-layer rejection.
        error: WireError,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated { needed, have } => {
                write!(f, "truncated body: need {needed} bytes, have {have}")
            }
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds cap {max}")
            }
            ProtoError::UnknownOpcode { found } => write!(f, "unknown opcode {found:#04x}"),
            ProtoError::MalformedVarint { offset } => {
                write!(f, "malformed varint at byte {offset}")
            }
            ProtoError::BadUtf8 { offset } => write!(f, "invalid UTF-8 at byte {offset}"),
            ProtoError::BadFlag { offset, found } => {
                write!(f, "bad presence flag {found:#04x} at byte {offset}")
            }
            ProtoError::UnknownErrorCode { found } => write!(f, "unknown error code {found}"),
            ProtoError::IntOutOfRange { offset } => {
                write!(f, "count at byte {offset} exceeds platform usize")
            }
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
            ProtoError::UnsupportedVersion { found } => {
                write!(f, "unsupported metrics payload version {found}")
            }
            ProtoError::BadSummary { offset, error } => {
                write!(f, "embedded summary at byte {offset} invalid: {error}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// A frame could not be received: transport failure or protocol violation.
#[derive(Debug)]
pub enum RecvError {
    /// The socket failed (including mid-frame EOF).
    Io(io::Error),
    /// The peer sent bytes the protocol rejects.
    Proto(ProtoError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Io(e) => write!(f, "transport error: {e}"),
            RecvError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for RecvError {}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

/// Requests a client can issue; one request yields exactly one response.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Feed one value into `key`'s sketch.
    Update {
        /// Target stream.
        key: String,
        /// The observation.
        value: f64,
    },
    /// Feed a batch of values into `key` (one lock acquisition server-side,
    /// one round-trip on the wire — the serving layer's throughput lever).
    UpdateMany {
        /// Target stream.
        key: String,
        /// The observations.
        values: Vec<f64>,
    },
    /// φ-quantile estimate for `key`.
    Query {
        /// Target stream.
        key: String,
        /// Quantile in `[0, 1]`.
        phi: f64,
    },
    /// Normalized rank of `value` within `key`'s stream.
    Rank {
        /// Target stream.
        key: String,
        /// The probe value.
        value: f64,
    },
    /// φ-quantile over the union of several keys' streams.
    MergedQuery {
        /// Streams to union; absent keys contribute nothing.
        keys: Vec<String>,
        /// Quantile in `[0, 1]`.
        phi: f64,
    },
    /// Store-wide statistics.
    Stats,
    /// Drop a key.
    Remove {
        /// Stream to drop.
        key: String,
    },
    /// List resident keys.
    Keys,
    /// Serialize `key`'s resident summary as a `qc-store` wire frame.
    Snapshot {
        /// Stream to snapshot.
        key: String,
    },
    /// Merge a `qc-store` wire frame into `key`'s absorbed aggregate.
    Ingest {
        /// Target stream (created if absent).
        key: String,
        /// A frame as produced by [`qc_store::wire::encode_summary`];
        /// opaque to this layer, validated by the store.
        frame: Vec<u8>,
    },
    /// The server's telemetry snapshot: counters, gauges, and latency
    /// summaries from the store's registry (the server observing itself
    /// with its own sketches).
    Metrics,
    /// Feed a timestamped batch into the window holding `ts` (event-time
    /// milliseconds; see `qc_store::window`). On an unwindowed server
    /// this degrades to [`Request::UpdateMany`].
    UpdateAt {
        /// Target stream.
        key: String,
        /// Event-time timestamp in milliseconds.
        ts: u64,
        /// The observations.
        values: Vec<f64>,
    },
    /// φ-quantile over the event-time range `[t0, t1)` of `key`'s stream
    /// — one round trip; the server merges the covered windows.
    QueryRange {
        /// Target stream.
        key: String,
        /// Range start (event-time ms, inclusive).
        t0: u64,
        /// Range end (event-time ms, exclusive).
        t1: u64,
        /// Quantile in `[0, 1]`.
        phi: f64,
    },
    /// φ-quantile over the union of several keys' streams restricted to
    /// the event-time range `[t0, t1)`.
    MergedQueryRange {
        /// Streams to union; absent keys contribute nothing.
        keys: Vec<String>,
        /// Range start (event-time ms, inclusive).
        t0: u64,
        /// Range end (event-time ms, exclusive).
        t1: u64,
        /// Quantile in `[0, 1]`.
        phi: f64,
    },
}

/// Stable per-opcode labels, indexed by [`Request::op_index`]. These name
/// the server's per-opcode instruments (`server_requests_{label}`, …), so
/// they are part of the observable surface: treat them as append-only.
pub const OP_LABELS: [&str; 14] = [
    "update",
    "update_many",
    "query",
    "rank",
    "merged_query",
    "stats",
    "remove",
    "keys",
    "snapshot",
    "ingest",
    "metrics",
    "update_at",
    "query_range",
    "merged_query_range",
];

/// Responses the server sends; see the module-level catalogue for which
/// request yields which.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Acknowledgement with no payload (`Update`, `UpdateMany`).
    Ok,
    /// An optional scalar (`Query`, `Rank`, `MergedQuery`; `None` = the
    /// key(s) hold no data).
    MaybeValue(Option<f64>),
    /// An unsigned counter (`Ingest`: the ingested stream length).
    Count(u64),
    /// A boolean (`Remove`: whether the key existed).
    Flag(bool),
    /// Store-wide statistics (`Stats`).
    Stats(StoreStats),
    /// Resident keys (`Keys`).
    Keys(Vec<String>),
    /// An optional summary wire frame (`Snapshot`; `None` = absent key).
    MaybeFrame(Option<Vec<u8>>),
    /// A telemetry snapshot (`Metrics`). Latency entries cross the wire
    /// as CRC-checked `qc-store` summary frames.
    Metrics(MetricsSnapshot),
    /// The request failed; the connection remains usable.
    Error {
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, ProtoError> {
    let Some(bytes) = buf.get(*pos..*pos + 8) else {
        return Err(ProtoError::Truncated { needed: *pos + 8, have: buf.len() });
    };
    *pos += 8;
    Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("slice of 8"))))
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8, ProtoError> {
    let Some(&b) = buf.get(*pos) else {
        return Err(ProtoError::Truncated { needed: *pos + 1, have: buf.len() });
    };
    *pos += 1;
    Ok(b)
}

fn varint(buf: &[u8], pos: &mut usize) -> Result<u64, ProtoError> {
    get_varint(buf, pos).map_err(|e| match e {
        WireError::MalformedVarint { offset } => ProtoError::MalformedVarint { offset },
        // `get_varint` only fails with MalformedVarint; keep the mapping
        // total anyway.
        _ => ProtoError::MalformedVarint { offset: *pos },
    })
}

/// Read a declared length/count and validate it against the bytes left,
/// assuming each counted element occupies at least `min_element_bytes`.
/// This is the allocation guard: no `Vec::with_capacity(count)` may happen
/// before this check.
fn bounded_count(
    buf: &[u8],
    pos: &mut usize,
    min_element_bytes: usize,
) -> Result<usize, ProtoError> {
    let at = *pos;
    let raw = varint(buf, pos)?;
    let remaining = (buf.len() - *pos) as u64;
    let fits =
        raw.checked_mul(min_element_bytes.max(1) as u64).is_some_and(|need| need <= remaining);
    if !fits {
        let needed = usize::try_from(raw)
            .ok()
            .and_then(|c| c.checked_mul(min_element_bytes.max(1)))
            .and_then(|c| c.checked_add(*pos))
            .unwrap_or(usize::MAX);
        return Err(ProtoError::Truncated { needed, have: buf.len() });
    }
    usize::try_from(raw).map_err(|_| ProtoError::IntOutOfRange { offset: at })
}

/// ZigZag map for signed gauge values: small-magnitude integers of either
/// sign take few varint bytes (`0 → 0, -1 → 1, 1 → 2, -2 → 3, …`).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8], ProtoError> {
    let len = bounded_count(buf, pos, 1)?;
    let slice = &buf[*pos..*pos + len];
    *pos += len;
    Ok(slice)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, ProtoError> {
    let start_of_content = {
        let mut probe = *pos;
        varint(buf, &mut probe)?;
        probe
    };
    let bytes = get_bytes(buf, pos)?;
    std::str::from_utf8(bytes)
        .map(str::to_owned)
        .map_err(|_| ProtoError::BadUtf8 { offset: start_of_content })
}

fn check_done(buf: &[u8], pos: usize) -> Result<(), ProtoError> {
    if pos != buf.len() {
        return Err(ProtoError::TrailingBytes { extra: buf.len() - pos });
    }
    Ok(())
}

impl Request {
    /// Dense index of this request's opcode (0-based, in catalogue
    /// order) — use it to index per-opcode instrument arrays.
    pub fn op_index(&self) -> usize {
        match self {
            Request::Update { .. } => 0,
            Request::UpdateMany { .. } => 1,
            Request::Query { .. } => 2,
            Request::Rank { .. } => 3,
            Request::MergedQuery { .. } => 4,
            Request::Stats => 5,
            Request::Remove { .. } => 6,
            Request::Keys => 7,
            Request::Snapshot { .. } => 8,
            Request::Ingest { .. } => 9,
            Request::Metrics => 10,
            Request::UpdateAt { .. } => 11,
            Request::QueryRange { .. } => 12,
            Request::MergedQueryRange { .. } => 13,
        }
    }

    /// Stable snake_case label of this request's opcode (see
    /// [`OP_LABELS`]).
    pub fn op_label(&self) -> &'static str {
        OP_LABELS[self.op_index()]
    }

    /// Encode into a frame body (opcode + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::Update { key, value } => {
                out.push(0x01);
                put_str(&mut out, key);
                put_f64(&mut out, *value);
            }
            Request::UpdateMany { key, values } => {
                out.push(0x02);
                put_str(&mut out, key);
                put_varint(&mut out, values.len() as u64);
                out.reserve(values.len() * 8);
                for &v in values {
                    put_f64(&mut out, v);
                }
            }
            Request::Query { key, phi } => {
                out.push(0x03);
                put_str(&mut out, key);
                put_f64(&mut out, *phi);
            }
            Request::Rank { key, value } => {
                out.push(0x04);
                put_str(&mut out, key);
                put_f64(&mut out, *value);
            }
            Request::MergedQuery { keys, phi } => {
                out.push(0x05);
                put_varint(&mut out, keys.len() as u64);
                for key in keys {
                    put_str(&mut out, key);
                }
                put_f64(&mut out, *phi);
            }
            Request::Stats => out.push(0x06),
            Request::Remove { key } => {
                out.push(0x07);
                put_str(&mut out, key);
            }
            Request::Keys => out.push(0x08),
            Request::Snapshot { key } => {
                out.push(0x09);
                put_str(&mut out, key);
            }
            Request::Ingest { key, frame } => {
                out.push(0x0a);
                put_str(&mut out, key);
                put_bytes(&mut out, frame);
            }
            Request::Metrics => out.push(0x0b),
            Request::UpdateAt { key, ts, values } => {
                out.push(0x0c);
                put_str(&mut out, key);
                put_varint(&mut out, *ts);
                put_varint(&mut out, values.len() as u64);
                out.reserve(values.len() * 8);
                for &v in values {
                    put_f64(&mut out, v);
                }
            }
            Request::QueryRange { key, t0, t1, phi } => {
                out.push(0x0d);
                put_str(&mut out, key);
                put_varint(&mut out, *t0);
                put_varint(&mut out, *t1);
                put_f64(&mut out, *phi);
            }
            Request::MergedQueryRange { keys, t0, t1, phi } => {
                out.push(0x0e);
                put_varint(&mut out, keys.len() as u64);
                for key in keys {
                    put_str(&mut out, key);
                }
                put_varint(&mut out, *t0);
                put_varint(&mut out, *t1);
                put_f64(&mut out, *phi);
            }
        }
        out
    }

    /// Decode a frame body. Total: consumes exactly `body` or returns a
    /// typed error.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut pos = 0usize;
        let op = get_u8(body, &mut pos).map_err(|_| ProtoError::UnknownOpcode { found: 0 })?;
        let req = match op {
            0x01 => {
                let key = get_str(body, &mut pos)?;
                let value = get_f64(body, &mut pos)?;
                Request::Update { key, value }
            }
            0x02 => {
                let key = get_str(body, &mut pos)?;
                let n = bounded_count(body, &mut pos, 8)?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(get_f64(body, &mut pos)?);
                }
                Request::UpdateMany { key, values }
            }
            0x03 => {
                let key = get_str(body, &mut pos)?;
                let phi = get_f64(body, &mut pos)?;
                Request::Query { key, phi }
            }
            0x04 => {
                let key = get_str(body, &mut pos)?;
                let value = get_f64(body, &mut pos)?;
                Request::Rank { key, value }
            }
            0x05 => {
                // Each key costs at least one length byte.
                let n = bounded_count(body, &mut pos, 1)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(get_str(body, &mut pos)?);
                }
                let phi = get_f64(body, &mut pos)?;
                Request::MergedQuery { keys, phi }
            }
            0x06 => Request::Stats,
            0x07 => Request::Remove { key: get_str(body, &mut pos)? },
            0x08 => Request::Keys,
            0x09 => Request::Snapshot { key: get_str(body, &mut pos)? },
            0x0a => {
                let key = get_str(body, &mut pos)?;
                let frame = get_bytes(body, &mut pos)?.to_vec();
                Request::Ingest { key, frame }
            }
            0x0b => Request::Metrics,
            0x0c => {
                let key = get_str(body, &mut pos)?;
                let ts = varint(body, &mut pos)?;
                let n = bounded_count(body, &mut pos, 8)?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(get_f64(body, &mut pos)?);
                }
                Request::UpdateAt { key, ts, values }
            }
            0x0d => {
                let key = get_str(body, &mut pos)?;
                let t0 = varint(body, &mut pos)?;
                let t1 = varint(body, &mut pos)?;
                let phi = get_f64(body, &mut pos)?;
                Request::QueryRange { key, t0, t1, phi }
            }
            0x0e => {
                // Each key costs at least one length byte.
                let n = bounded_count(body, &mut pos, 1)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(get_str(body, &mut pos)?);
                }
                let t0 = varint(body, &mut pos)?;
                let t1 = varint(body, &mut pos)?;
                let phi = get_f64(body, &mut pos)?;
                Request::MergedQueryRange { keys, t0, t1, phi }
            }
            found => return Err(ProtoError::UnknownOpcode { found }),
        };
        check_done(body, pos)?;
        Ok(req)
    }
}

/// Encode an `UpdateMany` body straight from a borrowed slice —
/// byte-identical to `Request::UpdateMany { .. }.encode()` but without
/// materializing the intermediate `Vec<f64>`/`String`. This is the
/// client's hot ingest path.
pub fn encode_update_many(key: &str, values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + key.len() + 2 + 10 + values.len() * 8);
    out.push(0x02);
    put_str(&mut out, key);
    put_varint(&mut out, values.len() as u64);
    for &v in values {
        put_f64(&mut out, v);
    }
    out
}

impl Response {
    /// Encode into a frame body (opcode + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Response::Ok => out.push(0x80),
            Response::MaybeValue(v) => {
                out.push(0x81);
                match v {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        put_f64(&mut out, *v);
                    }
                }
            }
            Response::Count(n) => {
                out.push(0x82);
                put_varint(&mut out, *n);
            }
            Response::Flag(b) => {
                out.push(0x83);
                out.push(*b as u8);
            }
            Response::Stats(s) => {
                out.push(0x84);
                put_varint(&mut out, s.keys as u64);
                put_varint(&mut out, s.stripes as u64);
                put_varint(&mut out, s.updates);
                put_varint(&mut out, s.ingests);
                put_varint(&mut out, s.ingest_errors);
                put_varint(&mut out, s.stream_len);
                put_varint(&mut out, s.bytes_out);
                put_varint(&mut out, s.bytes_in);
            }
            Response::Keys(keys) => {
                out.push(0x85);
                put_varint(&mut out, keys.len() as u64);
                for key in keys {
                    put_str(&mut out, key);
                }
            }
            Response::MaybeFrame(f) => {
                out.push(0x86);
                match f {
                    None => out.push(0),
                    Some(frame) => {
                        out.push(1);
                        put_bytes(&mut out, frame);
                    }
                }
            }
            Response::Metrics(snap) => {
                out.push(0x87);
                out.push(METRICS_VERSION);
                put_varint(&mut out, snap.counters.len() as u64);
                for (name, value) in &snap.counters {
                    put_str(&mut out, name);
                    put_varint(&mut out, *value);
                }
                put_varint(&mut out, snap.gauges.len() as u64);
                for (name, value) in &snap.gauges {
                    put_str(&mut out, name);
                    put_varint(&mut out, zigzag(*value));
                }
                put_varint(&mut out, snap.latencies.len() as u64);
                for (name, summary) in &snap.latencies {
                    put_str(&mut out, name);
                    put_bytes(&mut out, &encode_summary(summary));
                }
            }
            Response::Error { code, message } => {
                out.push(0x8f);
                out.push(*code as u8);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decode a frame body. Total: consumes exactly `body` or returns a
    /// typed error.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut pos = 0usize;
        let op = get_u8(body, &mut pos).map_err(|_| ProtoError::UnknownOpcode { found: 0 })?;
        let resp = match op {
            0x80 => Response::Ok,
            0x81 => {
                let at = pos;
                match get_u8(body, &mut pos)? {
                    0 => Response::MaybeValue(None),
                    1 => Response::MaybeValue(Some(get_f64(body, &mut pos)?)),
                    found => return Err(ProtoError::BadFlag { offset: at, found }),
                }
            }
            0x82 => Response::Count(varint(body, &mut pos)?),
            0x83 => {
                let at = pos;
                match get_u8(body, &mut pos)? {
                    0 => Response::Flag(false),
                    1 => Response::Flag(true),
                    found => return Err(ProtoError::BadFlag { offset: at, found }),
                }
            }
            0x84 => {
                let keys_at = pos;
                let keys = varint(body, &mut pos)?;
                let stripes_at = pos;
                let stripes = varint(body, &mut pos)?;
                Response::Stats(StoreStats {
                    keys: usize::try_from(keys)
                        .map_err(|_| ProtoError::IntOutOfRange { offset: keys_at })?,
                    stripes: usize::try_from(stripes)
                        .map_err(|_| ProtoError::IntOutOfRange { offset: stripes_at })?,
                    updates: varint(body, &mut pos)?,
                    ingests: varint(body, &mut pos)?,
                    ingest_errors: varint(body, &mut pos)?,
                    stream_len: varint(body, &mut pos)?,
                    bytes_out: varint(body, &mut pos)?,
                    bytes_in: varint(body, &mut pos)?,
                    // Tier/memory fields are node-local diagnostics and do
                    // not cross the wire (format unchanged since v1);
                    // remote stats report them as zero.
                    ..Default::default()
                })
            }
            0x85 => {
                let n = bounded_count(body, &mut pos, 1)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(get_str(body, &mut pos)?);
                }
                Response::Keys(keys)
            }
            0x86 => {
                let at = pos;
                match get_u8(body, &mut pos)? {
                    0 => Response::MaybeFrame(None),
                    1 => Response::MaybeFrame(Some(get_bytes(body, &mut pos)?.to_vec())),
                    found => return Err(ProtoError::BadFlag { offset: at, found }),
                }
            }
            0x87 => {
                let version = get_u8(body, &mut pos)?;
                if version != METRICS_VERSION {
                    return Err(ProtoError::UnsupportedVersion { found: version });
                }
                // Each counter entry is at least a 1-byte name length plus
                // a 1-byte value varint; same floor for gauges and latency
                // entries (whose summary frames are far larger in practice
                // — the floor only guards the Vec::with_capacity).
                let n = bounded_count(body, &mut pos, 2)?;
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(body, &mut pos)?;
                    counters.push((name, varint(body, &mut pos)?));
                }
                let n = bounded_count(body, &mut pos, 2)?;
                let mut gauges = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(body, &mut pos)?;
                    gauges.push((name, unzigzag(varint(body, &mut pos)?)));
                }
                let n = bounded_count(body, &mut pos, 2)?;
                let mut latencies = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(body, &mut pos)?;
                    let frame_at = {
                        let mut probe = pos;
                        varint(body, &mut probe)?;
                        probe
                    };
                    let frame = get_bytes(body, &mut pos)?;
                    let summary = decode_summary(frame)
                        .map_err(|error| ProtoError::BadSummary { offset: frame_at, error })?;
                    latencies.push((name, summary));
                }
                Response::Metrics(MetricsSnapshot { counters, gauges, latencies })
            }
            0x8f => {
                let code_byte = get_u8(body, &mut pos)?;
                let code = ErrorCode::from_u8(code_byte)
                    .ok_or(ProtoError::UnknownErrorCode { found: code_byte })?;
                let message = get_str(body, &mut pos)?;
                Response::Error { code, message }
            }
            found => return Err(ProtoError::UnknownOpcode { found }),
        };
        check_done(body, pos)?;
        Ok(resp)
    }
}

/// Write one frame (length prefix + body) to `w`. Callers flush.
///
/// # Panics
/// If `body` exceeds `u32::MAX` bytes — locally-built bodies are bounded
/// far below that by the store's summary sizes.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len()).expect("frame body exceeds u32::MAX");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)
}

/// Read one frame body from `r`, bounded by `max_len`.
///
/// * `Ok(None)` — the peer closed the connection cleanly between frames;
/// * `Err(Io)` — transport failure, including EOF mid-frame;
/// * `Err(Proto(FrameTooLarge))` — declared body length over `max_len`
///   (checked **before** any allocation).
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> Result<Option<Vec<u8>>, RecvError> {
    let mut prefix = [0u8; LEN_PREFIX];
    // Distinguish clean EOF (no bytes of a next frame) from truncation.
    let mut filled = 0usize;
    while filled < LEN_PREFIX {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(RecvError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as u64;
    if len > max_len as u64 {
        return Err(RecvError::Proto(ProtoError::FrameTooLarge { len, max: max_len }));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_request_roundtrip() {
        let reqs = [
            Request::Update { key: "k".into(), value: 1.5 },
            Request::UpdateMany { key: "k".into(), values: vec![1.0, 2.0, f64::NAN] },
            Request::Query { key: "k".into(), phi: 0.5 },
            Request::Rank { key: "k".into(), value: -0.0 },
            Request::MergedQuery { keys: vec!["a".into(), "b".into()], phi: 0.99 },
            Request::Stats,
            Request::Remove { key: "k".into() },
            Request::Keys,
            Request::Snapshot { key: "k".into() },
            Request::Ingest { key: "k".into(), frame: vec![1, 2, 3] },
            Request::Metrics,
            Request::UpdateAt { key: "k".into(), ts: u64::MAX, values: vec![1.0, f64::NAN] },
            Request::QueryRange { key: "k".into(), t0: 0, t1: u64::MAX, phi: 0.5 },
            Request::MergedQueryRange {
                keys: vec!["a".into(), "b".into()],
                t0: 60_000,
                t1: 120_000,
                phi: 0.99,
            },
        ];
        for req in reqs {
            let body = req.encode();
            let back = Request::decode(&body).unwrap();
            // NaN-tolerant comparison: compare re-encodings.
            assert_eq!(back.encode(), body, "{req:?}");
        }
    }

    #[test]
    fn simple_response_roundtrip() {
        let resps = [
            Response::Ok,
            Response::MaybeValue(None),
            Response::MaybeValue(Some(42.0)),
            Response::Count(u64::MAX),
            Response::Flag(true),
            Response::Stats(StoreStats { keys: 3, stripes: 16, updates: 7, ..Default::default() }),
            Response::Keys(vec!["a".into(), "ü".into()]),
            Response::MaybeFrame(None),
            Response::MaybeFrame(Some(vec![9; 100])),
            Response::Error { code: ErrorCode::Wire, message: "bad frame".into() },
        ];
        for resp in resps {
            let body = resp.encode();
            assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }

    fn sample_metrics() -> MetricsSnapshot {
        let recorder = qc_telemetry::LatencyRecorder::new(64);
        for i in 0..1000 {
            recorder.record(i as f64 / 1000.0);
        }
        MetricsSnapshot {
            counters: vec![("a".into(), 0), ("requests".into(), u64::MAX)],
            gauges: vec![("balance".into(), -3), ("depth".into(), i64::MIN)],
            latencies: vec![("req_seconds".into(), recorder.summary())],
        }
    }

    #[test]
    fn metrics_response_roundtrip() {
        let resp = Response::Metrics(sample_metrics());
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
        // An empty snapshot also roundtrips (fresh registry).
        let empty = Response::Metrics(MetricsSnapshot::default());
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn metrics_version_drift_is_typed() {
        let mut body = Response::Metrics(MetricsSnapshot::default()).encode();
        body[1] = METRICS_VERSION + 1;
        assert_eq!(
            Response::decode(&body),
            Err(ProtoError::UnsupportedVersion { found: METRICS_VERSION + 1 })
        );
    }

    #[test]
    fn corrupted_embedded_summary_is_typed() {
        let body = Response::Metrics(sample_metrics()).encode();
        // Flip one bit inside the embedded summary frame (the last byte of
        // the body sits in the summary's CRC trailer).
        let mut corrupt = body.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        match Response::decode(&corrupt) {
            Err(ProtoError::BadSummary { offset, error: _ }) => {
                assert!(offset > 0 && offset < body.len());
            }
            other => panic!("expected BadSummary, got {other:?}"),
        }
        // Truncating the body mid-summary is caught before the CRC runs.
        let cut = &body[..body.len() - 4];
        assert!(matches!(Response::decode(cut), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn op_labels_are_dense_and_unique() {
        let reqs = [
            Request::Update { key: String::new(), value: 0.0 },
            Request::UpdateMany { key: String::new(), values: vec![] },
            Request::Query { key: String::new(), phi: 0.5 },
            Request::Rank { key: String::new(), value: 0.0 },
            Request::MergedQuery { keys: vec![], phi: 0.5 },
            Request::Stats,
            Request::Remove { key: String::new() },
            Request::Keys,
            Request::Snapshot { key: String::new() },
            Request::Ingest { key: String::new(), frame: vec![] },
            Request::Metrics,
            Request::UpdateAt { key: String::new(), ts: 0, values: vec![] },
            Request::QueryRange { key: String::new(), t0: 0, t1: 0, phi: 0.5 },
            Request::MergedQueryRange { keys: vec![], t0: 0, t1: 0, phi: 0.5 },
        ];
        assert_eq!(reqs.len(), OP_LABELS.len());
        for (i, req) in reqs.iter().enumerate() {
            assert_eq!(req.op_index(), i);
            assert_eq!(req.op_label(), OP_LABELS[i]);
        }
        let mut labels: Vec<_> = OP_LABELS.to_vec();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), OP_LABELS.len(), "duplicate op label");
    }

    #[test]
    fn encode_update_many_matches_request_encode() {
        for values in [&[][..], &[1.5][..], &[f64::NAN, -0.0, f64::MAX][..]] {
            let direct = encode_update_many("latency", values);
            let via_enum =
                Request::UpdateMany { key: "latency".into(), values: values.to_vec() }.encode();
            assert_eq!(direct, via_enum);
        }
    }

    #[test]
    fn empty_body_is_unknown_opcode() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::UnknownOpcode { found: 0 }));
        assert_eq!(Response::decode(&[]), Err(ProtoError::UnknownOpcode { found: 0 }));
    }

    #[test]
    fn absurd_count_is_rejected_before_allocation() {
        // UpdateMany claiming u64::MAX values with a 0-length key.
        let mut body = vec![0x02];
        put_str(&mut body, "");
        put_varint(&mut body, u64::MAX);
        assert!(matches!(Request::decode(&body), Err(ProtoError::Truncated { .. })));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut body = vec![0x07];
        put_bytes(&mut body, &[0xff, 0xfe]);
        assert_eq!(Request::decode(&body), Err(ProtoError::BadUtf8 { offset: 2 }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Request::Stats.encode();
        body.push(0);
        assert_eq!(Request::decode(&body), Err(ProtoError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn frame_io_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), Some(Vec::new()));
        assert!(read_frame(&mut cursor, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_typed_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &buf[..];
        match read_frame(&mut cursor, 1024) {
            Err(RecvError::Proto(ProtoError::FrameTooLarge { len, max })) => {
                assert_eq!(len, u32::MAX as u64);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn mid_frame_eof_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6); // prefix + 2 of 5 body bytes
        let mut cursor = &buf[..];
        assert!(matches!(read_frame(&mut cursor, 64), Err(RecvError::Io(_))));
        // Truncated prefix too.
        let mut cursor = &buf[..2];
        assert!(matches!(read_frame(&mut cursor, 64), Err(RecvError::Io(_))));
    }
}
