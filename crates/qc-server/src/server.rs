//! The TCP serving loop: accept, dispatch to the pool, answer frames.
//!
//! One [`ThreadPool`] worker owns each connection for its whole lifetime
//! (blocking request/response loop over buffered reads/writes), matching
//! the store's lock-striped design: concurrency comes from many
//! connections on many workers, and every request is one store call. The
//! paper's N-updaters/unbounded-queriers model maps onto writer
//! connections issuing `Update`/`UpdateMany` and reader connections
//! issuing `Query`/`MergedQuery` against the same [`SketchStore`].
//!
//! Writer connections are the paper's update threads end to end: each
//! connection caches one [`qc_store::WriterLease`] per recently written
//! key, so repeated `Update`/`UpdateMany` frames reuse the same
//! per-thread writer handle under only the **shared** stripe lock —
//! N connections hammering one hot key synchronize inside the sketch
//! (Gather&Sort/DCAS), not on a store mutex. Leases are generation-
//! checked by the store on every use (`remove`/demotion invalidates them
//! mid-connection, falling back transparently), evicted after sitting
//! idle for [`LEASE_IDLE_FRAMES`] frames, and returned to the store's
//! per-key pools when the connection closes.
//!
//! On a durable store, a mutating request is **acked only after its log
//! record is on disk** (under `FsyncPolicy::PerFrame`): the worker's
//! store call appends under the stripe lock, releases it, and then waits
//! on the store's group-commit watermark — so N writer connections share
//! one fsync per commit group instead of paying N sequential ones, and
//! readers on the same stripe never wait behind a disk flush. The group
//! knobs (`group_commit_delay`, the policy itself) ride
//! [`ServerConfig::store`].
//!
//! Shutdown is graceful and bounded: [`ServerHandle::shutdown`] stops the
//! accept loop, closes every live connection's socket (unblocking any
//! worker parked in a read), joins the pool, and finally syncs the
//! durable log's buffered tail — a clean stop loses no acked write under
//! *any* fsync policy.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qc_store::{SketchStore, StoreConfig, WriterLease};
use qc_telemetry::{Counter, EventKind, Gauge, LatencyRecorder, Registry};

use crate::pool::ThreadPool;
use crate::proto::{
    read_frame, write_frame, ErrorCode, RecvError, Request, Response, DEFAULT_MAX_FRAME_LEN,
    OP_LABELS,
};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection-handling worker threads (each owns one live connection,
    /// so this is also the concurrent-connection cap).
    pub pool_threads: usize,
    /// Accepted connections that may queue for a free worker before the
    /// accept loop blocks (application-level accept backlog; beyond it,
    /// backpressure falls to the kernel listen queue).
    pub accept_backlog: usize,
    /// Per-frame body cap; larger frames are rejected before allocation.
    pub max_frame_len: usize,
    /// Configuration for the store built by [`Server::bind`] (ignored by
    /// [`Server::bind_with_store`]).
    pub store: StoreConfig,
    /// Interval between store cool-down sweeps
    /// ([`SketchStore::cool_down`]): each sweep demotes hot-tier keys that
    /// saw no updates for a full interval, reclaiming their concurrent
    /// buffers. With a durable store ([`ServerConfig::data_dir`]), each
    /// sweep also flushes pending log frames and writes a checkpoint,
    /// compacting the log behind it. `None` disables housekeeping.
    pub cool_down_interval: Option<Duration>,
    /// Requests whose server-side handling exceeds this duration emit a
    /// [`qc_telemetry::EventKind::SlowRequest`] event into the store's
    /// registry (the request still completes normally).
    pub slow_request_threshold: Duration,
    /// Durable data directory. `Some` makes [`Server::bind`] recover the
    /// store from disk **before** accepting connections (replaying the
    /// checkpoint and log tail) and log every mutation from then on; the
    /// housekeeping thread checkpoints on each sweep. Overrides
    /// `store.data_dir`. `None` (the default) leaves durability to
    /// whatever `store.data_dir` says — also `None` by default, a purely
    /// in-memory server.
    pub data_dir: Option<std::path::PathBuf>,
    /// UDP ingest front-end. `Some` makes [`Server::bind`] spawn a
    /// [`qc_ingest::IngestDaemon`] over the same store (its instruments
    /// land in the store's registry, so the `Metrics` frame covers it);
    /// read the bound datagram address back from
    /// [`ServerHandle::ingest_addr`]. `None` (the default) serves TCP
    /// only.
    pub ingest: Option<qc_ingest::IngestConfig>,
    /// Test hook: pretend every connection's registry registration fails
    /// (as a real `try_clone` failure under fd exhaustion would). An
    /// unregistered connection cannot be severed by `stop()`, so it must
    /// be closed on the spot — the shutdown regression suite pins that.
    #[doc(hidden)]
    pub fail_connection_registration: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pool_threads: 8,
            accept_backlog: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            store: StoreConfig::default(),
            cool_down_interval: Some(Duration::from_secs(30)),
            slow_request_threshold: Duration::from_millis(100),
            data_dir: None,
            ingest: None,
            fail_connection_registration: false,
        }
    }
}

/// Entry point: binds a listener and spawns the serving threads.
pub struct Server;

impl Server {
    /// Bind `addr` and serve a fresh store built from `cfg.store` — or,
    /// with [`ServerConfig::data_dir`] set, a store **recovered** from
    /// that directory before the listener accepts its first connection,
    /// so no request can ever observe (or write into) a half-replayed
    /// store. Recovery failures surface as the bind error.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let mut store_cfg = cfg.store.clone();
        if cfg.data_dir.is_some() {
            store_cfg.data_dir = cfg.data_dir.clone();
        }
        let store = if store_cfg.data_dir.is_some() {
            let (store, _report) =
                SketchStore::recover(store_cfg).map_err(std::io::Error::other)?;
            Arc::new(store)
        } else {
            Arc::new(SketchStore::new(store_cfg))
        };
        Self::bind_with_store(addr, cfg, store)
    }

    /// Bind `addr` and serve an existing store (lets one process expose a
    /// store it also updates in-process).
    pub fn bind_with_store<A: ToSocketAddrs>(
        addr: A,
        cfg: ServerConfig,
        store: Arc<SketchStore>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Conns = Arc::new(Mutex::new(HashMap::new()));
        // All serving-layer instruments live in the *store's* registry, so
        // one `Metrics` frame (and one `render_text`) covers both layers.
        // A store built with `Registry::disabled()` therefore disables the
        // server's instruments too.
        let instruments =
            ServerInstruments::register(store.telemetry(), cfg.slow_request_threshold);
        let pool = Arc::new(ThreadPool::with_instruments(
            cfg.pool_threads,
            cfg.accept_backlog,
            "qc-conn",
            instruments.registry.gauge("server_pool_queue_depth"),
            instruments.registry.counter("server_pool_saturation"),
        ));
        // Housekeeping before the accept thread: once the accept loop runs
        // the server is externally reachable, and a spawn failure after
        // that point would return Err while leaking a live, unstoppable
        // server on the port. In this order each failure path can still
        // tear down everything it started.
        let housekeeping = match cfg.cool_down_interval {
            // On failure, plain `return Err` tears down cleanly: dropping
            // the last pool Arc joins the (idle) workers via Drop.
            Some(interval) => {
                Some(Housekeeping::spawn(Arc::clone(&store), interval, Arc::clone(&instruments))?)
            }
            None => None,
        };
        // The UDP front door opens before the TCP one for the same
        // reason housekeeping does: every failure path below can still
        // tear down what it started, and nothing is externally reachable
        // until the accept loop runs. (The daemon accepting datagrams a
        // moment before TCP accepts is harmless — both write into the
        // same fully-constructed store.)
        let ingest = match &cfg.ingest {
            Some(ingest_cfg) => {
                let spawned =
                    qc_ingest::IngestDaemon::spawn(Arc::clone(&store), ingest_cfg.clone());
                match spawned {
                    Ok(handle) => Some(handle),
                    Err(e) => {
                        if let Some(housekeeping) = housekeeping {
                            housekeeping.stop();
                        }
                        return Err(e);
                    }
                }
            }
            None => None,
        };
        let accept = {
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let accept_pool = Arc::clone(&pool);
            let instruments = Arc::clone(&instruments);
            let opts = ConnOptions {
                max_frame_len: cfg.max_frame_len,
                fail_registration: cfg.fail_connection_registration,
            };
            let spawned = std::thread::Builder::new().name("qc-accept".into()).spawn(move || {
                accept_loop(&listener, &store, &shutdown, &conns, &accept_pool, &instruments, opts)
            });
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    // Stop housekeeping explicitly; the pool tears itself
                    // down when its Arcs drop (the spawn closure holding
                    // the clone was dropped on failure).
                    if let Some(ingest) = ingest {
                        ingest.shutdown();
                    }
                    if let Some(housekeeping) = housekeeping {
                        housekeeping.stop();
                    }
                    return Err(e);
                }
            }
        };
        Ok(ServerHandle {
            local_addr,
            store,
            shutdown,
            conns,
            accept: Some(accept),
            pool: Some(pool),
            housekeeping,
            ingest,
        })
    }
}

/// Per-opcode instrument handles (one entry of
/// [`ServerInstruments::ops`], indexed by [`Request::op_index`]).
struct OpInstruments {
    /// `server_requests_{op}`: requests of this opcode served.
    requests: Counter,
    /// `server_request_bytes_{op}`: request body bytes of this opcode.
    bytes: Counter,
    /// `server_request_seconds_{op}`: handling latency, recorded into the
    /// store's own sketch engine (the self-sketching layer).
    latency: LatencyRecorder,
}

/// Every serving-layer instrument, registered once at bind time into the
/// store's [`Registry`] and shared (via `Arc`) by the accept loop, the
/// connection handlers, and the housekeeping thread. Handles are held,
/// never re-looked-up: the hot path touches only relaxed atomics and a
/// striped sketch.
struct ServerInstruments {
    registry: Arc<Registry>,
    /// Per-opcode triples, indexed by [`Request::op_index`].
    ops: Vec<OpInstruments>,
    /// `server_proto_errors`: malformed frames/bodies (each also emits a
    /// [`EventKind::ProtoError`] event with the peer address — satellite
    /// fix for the previously silent swallow in the connection loop).
    proto_errors: Counter,
    /// `server_io_errors`: connections dropped by transport failure.
    io_errors: Counter,
    /// `server_conns_accepted`: connections handed to the pool.
    conns_accepted: Counter,
    /// `server_conns_closed_eof`: clean client-side closes.
    conns_closed_eof: Counter,
    /// `server_conns_closed_error`: closes after an I/O or protocol error.
    conns_closed_error: Counter,
    /// `server_conns_closed_shutdown`: closes forced by server shutdown.
    conns_closed_shutdown: Counter,
    /// `server_active_connections`: currently served connections.
    active_connections: Gauge,
    /// `server_lease_fallbacks`: stale-lease rejections that fell back to
    /// the store's two-tier write path.
    lease_fallbacks: Counter,
    /// `server_sweeps`: housekeeping cool-down sweeps completed.
    sweeps: Counter,
    /// `server_sweep_seconds`: sweep duration sketch.
    sweep_seconds: LatencyRecorder,
    /// Threshold above which a request emits a `SlowRequest` event.
    slow_threshold: Duration,
}

impl ServerInstruments {
    fn register(registry: &Arc<Registry>, slow_threshold: Duration) -> Arc<Self> {
        let ops = OP_LABELS
            .iter()
            .map(|label| OpInstruments {
                requests: registry.counter(&format!("server_requests_{label}")),
                bytes: registry.counter(&format!("server_request_bytes_{label}")),
                latency: registry.latency(&format!("server_request_seconds_{label}")),
            })
            .collect();
        Arc::new(ServerInstruments {
            registry: Arc::clone(registry),
            ops,
            proto_errors: registry.counter("server_proto_errors"),
            io_errors: registry.counter("server_io_errors"),
            conns_accepted: registry.counter("server_conns_accepted"),
            conns_closed_eof: registry.counter("server_conns_closed_eof"),
            conns_closed_error: registry.counter("server_conns_closed_error"),
            conns_closed_shutdown: registry.counter("server_conns_closed_shutdown"),
            active_connections: registry.gauge("server_active_connections"),
            lease_fallbacks: registry.counter("server_lease_fallbacks"),
            sweeps: registry.counter("server_sweeps"),
            sweep_seconds: registry.latency("server_sweep_seconds"),
            slow_threshold,
        })
    }
}

/// The periodic store-maintenance thread: runs
/// [`SketchStore::cool_down`] every `interval` so idle hot-tier keys
/// demote and release their concurrent buffers (without it, any key that
/// ever crossed the promotion threshold would hold its Gather&Sort
/// footprint forever). Stopped promptly through a condvar on shutdown.
struct Housekeeping {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: JoinHandle<()>,
}

impl Housekeeping {
    fn spawn(
        store: Arc<SketchStore>,
        interval: Duration,
        instruments: Arc<ServerInstruments>,
    ) -> std::io::Result<Self> {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new().name("qc-housekeeping".into()).spawn(move || {
                let (lock, cvar) = &*stop;
                let mut stopped = lock.lock().unwrap();
                while !*stopped {
                    let (guard, timeout) = cvar.wait_timeout(stopped, interval).unwrap();
                    stopped = guard;
                    if timeout.timed_out() && !*stopped {
                        drop(stopped);
                        let start = Instant::now();
                        store.cool_down();
                        instruments.sweeps.incr();
                        instruments.sweep_seconds.record_duration(start.elapsed());
                        stopped = lock.lock().unwrap();
                    }
                }
            })?
        };
        Ok(Self { stop, thread })
    }

    fn stop(self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
        let _ = self.thread.join();
    }
}

type Conns = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Per-connection serving parameters threaded from [`ServerConfig`]
/// through the accept loop.
#[derive(Clone, Copy)]
struct ConnOptions {
    max_frame_len: usize,
    fail_registration: bool,
}

/// A running server; dropping it (or calling
/// [`shutdown`](ServerHandle::shutdown)) stops it gracefully.
pub struct ServerHandle {
    local_addr: SocketAddr,
    store: Arc<SketchStore>,
    shutdown: Arc<AtomicBool>,
    conns: Conns,
    accept: Option<JoinHandle<()>>,
    pool: Option<Arc<ThreadPool>>,
    housekeeping: Option<Housekeeping>,
    ingest: Option<qc_ingest::IngestHandle>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store this server answers from.
    pub fn store(&self) -> &Arc<SketchStore> {
        &self.store
    }

    /// The telemetry registry this server records into (the store's own
    /// registry — store and server instruments share one namespace, one
    /// `Metrics` frame, one [`Registry::render_text`] exposition).
    pub fn telemetry(&self) -> &Arc<Registry> {
        self.store.telemetry()
    }

    /// Number of currently live connections.
    pub fn active_connections(&self) -> usize {
        self.conns.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// The UDP ingest daemon's bound address, when
    /// [`ServerConfig::ingest`] enabled one.
    pub fn ingest_addr(&self) -> Option<SocketAddr> {
        self.ingest.as_ref().map(|handle| handle.local_addr())
    }

    /// Graceful shutdown: stop accepting, close live connections, join
    /// every serving thread. In-flight requests finish; subsequent reads
    /// on client sockets see EOF.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Sever the UDP front door first: the ingest daemon stops
        // accepting datagrams, drains its already-accepted queue into the
        // store, and joins its threads — so everything the daemon ever
        // accepted is applied (or counted dropped) before the TCP side
        // (and with it, the last chance to query the store) goes away.
        // The daemon's own ordering contract guarantees the socket thread
        // is severed before the drain begins.
        if let Some(ingest) = self.ingest.take() {
            ingest.shutdown();
        }
        // Stop housekeeping next: a sweep holds stripe locks briefly, and
        // joining it here keeps shutdown deterministic.
        if let Some(housekeeping) = self.housekeeping.take() {
            housekeeping.stop();
        }
        // Close every live socket first so workers parked in read() return.
        // This also unwedges an accept loop blocked on a full backlog
        // queue: freed workers drain it, letting the loop reach accept().
        if let Ok(conns) = self.conns.lock() {
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // Unblock the accept loop with a dummy connection to ourselves.
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform; dial the loopback of the same family instead.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // The accept thread has exited, so we hold the last pool reference;
        // consume it to drain the queue and join the workers.
        if let Some(pool) = self.pool.take() {
            match Arc::try_unwrap(pool) {
                Ok(pool) => pool.shutdown(),
                Err(_) => unreachable!("accept loop joined above still holds the pool"),
            }
        }
        // Every writer has drained: flush the durable log's buffered
        // tail so a clean stop loses nothing under `Interval`/`Off`
        // (`PerFrame` acks were already durable; this is a no-op there).
        self.store.sync();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    store: &Arc<SketchStore>,
    shutdown: &Arc<AtomicBool>,
    conns: &Conns,
    pool: &Arc<ThreadPool>,
    instruments: &Arc<ServerInstruments>,
    opts: ConnOptions,
) {
    let mut next_id = 0u64;
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                // Transient accept failure (e.g. EMFILE under fd
                // exhaustion): back off briefly instead of hot-spinning,
                // giving workers a chance to close sockets and free fds.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::Relaxed) {
            // Covers the wake-up dummy connection from `stop`.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        instruments.conns_accepted.incr();
        instruments.registry.event(EventKind::ConnOpen, format!("peer={peer}"));
        let id = next_id;
        next_id += 1;
        let store = Arc::clone(store);
        let shutdown = Arc::clone(shutdown);
        let conns = Arc::clone(conns);
        let instruments = Arc::clone(instruments);
        let enqueued = pool.execute(move || {
            handle_connection(stream, id, peer, &store, &shutdown, &conns, &instruments, opts);
        });
        if enqueued.is_err() {
            return;
        }
    }
}

/// Why a connection's serving loop ended — classified so connection
/// outcomes are countable (previously every exit path was silent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnOutcome {
    /// The client closed cleanly between frames.
    Eof,
    /// The transport failed (disconnect, reset, mid-frame EOF, or a
    /// failed response write).
    IoError,
    /// The peer violated framing; the server answered once and closed.
    ProtoError,
    /// Server shutdown severed the connection.
    Shutdown,
}

#[allow(clippy::too_many_arguments)] // one private call site, mirror of accept_loop's captures
fn handle_connection(
    stream: TcpStream,
    id: u64,
    peer: SocketAddr,
    store: &SketchStore,
    shutdown: &AtomicBool,
    conns: &Conns,
    instruments: &ServerInstruments,
    opts: ConnOptions,
) {
    instruments.active_connections.inc();
    // Register a clone so `stop` can sever the socket under a stuck read.
    // If registration fails (fd exhaustion breaking `try_clone`, a
    // poisoned registry), the connection MUST NOT be served: `stop()`
    // could never sever it, so a worker parked in `read()` would block
    // the pool join and wedge shutdown indefinitely. Close it and bail.
    let registered = !opts.fail_registration
        && match stream.try_clone() {
            Ok(clone) => match conns.lock() {
                Ok(mut map) => {
                    map.insert(id, clone);
                    true
                }
                Err(_) => false,
            },
            Err(_) => false,
        };
    let outcome = if registered {
        let outcome = serve_frames(&stream, peer, store, shutdown, instruments, opts.max_frame_len);
        let _ = stream.shutdown(Shutdown::Both);
        if let Ok(mut map) = conns.lock() {
            map.remove(&id);
        }
        outcome
    } else {
        let _ = stream.shutdown(Shutdown::Both);
        instruments.io_errors.incr();
        instruments.registry.event(EventKind::IoError, format!("peer={peer} registration failed"));
        ConnOutcome::IoError
    };
    match outcome {
        ConnOutcome::Eof => instruments.conns_closed_eof.incr(),
        ConnOutcome::IoError | ConnOutcome::ProtoError => instruments.conns_closed_error.incr(),
        ConnOutcome::Shutdown => instruments.conns_closed_shutdown.incr(),
    }
    instruments.active_connections.dec();
    instruments.registry.event(EventKind::ConnClose, format!("peer={peer} outcome={outcome:?}"));
}

/// A cached lease is evicted (and returned to the store's pool) once this
/// many frames pass without the connection writing to its key — a
/// connection that drifts across many keys must not pin a pool slot on
/// every one of them forever.
pub const LEASE_IDLE_FRAMES: u64 = 4096;

/// Frames between idle-lease sweeps of a connection's cache.
const LEASE_SWEEP_INTERVAL: u64 = 512;

/// A connection's writer leases: one per recently written key, tagged
/// with the frame number of its last use.
struct ConnLeases {
    leases: HashMap<String, (WriterLease<f64>, u64)>,
    frame: u64,
}

impl ConnLeases {
    fn new() -> Self {
        ConnLeases { leases: HashMap::new(), frame: 0 }
    }

    /// Write a batch for `key`, through the cached lease when it is still
    /// valid, else through the store's own two-tier path — acquiring a
    /// lease for next time when the key's engine hands one out.
    fn write(
        &mut self,
        store: &SketchStore,
        instruments: &ServerInstruments,
        key: String,
        values: &[f64],
    ) {
        if let Some((lease, used)) = self.leases.get_mut(&key) {
            match store.update_many_leased(&key, lease, values) {
                Ok(()) => {
                    *used = self.frame;
                    return;
                }
                // The key was removed, demoted, or re-created since the
                // lease was minted. The rejected lease holds no weight —
                // drop it and fall through to the normal path.
                Err(qc_store::StaleLease) => {
                    self.leases.remove(&key);
                    instruments.lease_fallbacks.incr();
                    instruments.registry.event(EventKind::LeaseFallback, format!("key={key}"));
                }
            }
        }
        store.update_many(&key, values);
        if let Some(lease) = store.lease_writer(&key) {
            let frame = self.frame;
            self.leases.insert(key, (lease, frame));
        }
    }

    /// Per-frame bookkeeping: every `LEASE_SWEEP_INTERVAL` frames, return
    /// leases that sat idle past `LEASE_IDLE_FRAMES` to the store.
    fn tick(&mut self, store: &SketchStore) {
        self.frame += 1;
        if !self.frame.is_multiple_of(LEASE_SWEEP_INTERVAL) {
            return;
        }
        let frame = self.frame;
        let idle: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, (_, used))| frame.saturating_sub(*used) > LEASE_IDLE_FRAMES)
            .map(|(key, _)| key.clone())
            .collect();
        for key in idle {
            if let Some((lease, _)) = self.leases.remove(&key) {
                store.return_lease(&key, lease);
            }
        }
    }

    /// Hand every lease back to the store's pools (connection teardown).
    fn release_all(&mut self, store: &SketchStore) {
        for (key, (lease, _)) in self.leases.drain() {
            store.return_lease(&key, lease);
        }
    }
}

fn serve_frames(
    stream: &TcpStream,
    peer: SocketAddr,
    store: &SketchStore,
    shutdown: &AtomicBool,
    instruments: &ServerInstruments,
    max: usize,
) -> ConnOutcome {
    // `&TcpStream` implements Read/Write, so buffering both directions
    // needs no extra fd duplication: two fds per connection total (the
    // stream itself plus the registry clone `stop` severs).
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);
    let mut leases = ConnLeases::new();
    let outcome = loop {
        if shutdown.load(Ordering::Relaxed) {
            break ConnOutcome::Shutdown;
        }
        let body = match read_frame(&mut reader, max) {
            Ok(Some(body)) => body,
            Ok(None) => break ConnOutcome::Eof, // client closed cleanly
            Err(RecvError::Io(e)) => {
                // Disconnects and shutdown-severed sockets land here too;
                // count them all — a reset storm and a deploy restart look
                // identical from inside, the event detail disambiguates.
                instruments.io_errors.incr();
                instruments.registry.event(EventKind::IoError, format!("peer={peer} {e}"));
                break if shutdown.load(Ordering::Relaxed) {
                    ConnOutcome::Shutdown
                } else {
                    ConnOutcome::IoError
                };
            }
            Err(RecvError::Proto(e)) => {
                // Framing itself is broken (oversized declaration): answer
                // once, then close — byte boundaries are untrustworthy.
                instruments.proto_errors.incr();
                instruments.registry.event(EventKind::ProtoError, format!("peer={peer} {e}"));
                let resp = Response::Error { code: ErrorCode::Proto, message: e.to_string() };
                let _ = write_frame(&mut writer, &resp.encode());
                let _ = writer.flush();
                break ConnOutcome::ProtoError;
            }
        };
        let response = match Request::decode(&body) {
            // A malformed *body* inside a well-delimited frame does not
            // desync the stream; answer the error and keep serving.
            Err(e) => {
                instruments.proto_errors.incr();
                instruments.registry.event(EventKind::ProtoError, format!("peer={peer} {e}"));
                Response::Error { code: ErrorCode::Proto, message: e.to_string() }
            }
            Ok(req) => {
                let op = &instruments.ops[req.op_index()];
                let label = req.op_label();
                op.requests.incr();
                op.bytes.add(body.len() as u64);
                let start = Instant::now();
                let response = execute(store, req, shutdown, &mut leases, instruments);
                let elapsed = start.elapsed();
                op.latency.record_duration(elapsed);
                if elapsed >= instruments.slow_threshold {
                    instruments.registry.event(
                        EventKind::SlowRequest,
                        format!("peer={peer} op={label} micros={}", elapsed.as_micros()),
                    );
                }
                response
            }
        };
        leases.tick(store);
        if write_frame(&mut writer, &response.encode()).is_err() || writer.flush().is_err() {
            instruments.io_errors.incr();
            instruments.registry.event(EventKind::IoError, format!("peer={peer} response write"));
            break ConnOutcome::IoError;
        }
    };
    // Give the held writer handles back to the store's per-key pools so
    // other connections can reuse them (a dropped lease would strand its
    // pool slot until the next housekeeping sweep).
    leases.release_all(store);
    outcome
}

fn execute(
    store: &SketchStore,
    req: Request,
    shutdown: &AtomicBool,
    leases: &mut ConnLeases,
    instruments: &ServerInstruments,
) -> Response {
    if shutdown.load(Ordering::Relaxed) {
        return Response::Error {
            code: ErrorCode::Unavailable,
            message: "server shutting down".into(),
        };
    }
    match req {
        Request::Update { key, value } => {
            leases.write(store, instruments, key, &[value]);
            Response::Ok
        }
        Request::UpdateMany { key, values } => {
            leases.write(store, instruments, key, &values);
            Response::Ok
        }
        Request::Query { key, phi } => Response::MaybeValue(store.query(&key, phi)),
        Request::Rank { key, value } => Response::MaybeValue(store.rank(&key, value)),
        Request::MergedQuery { keys, phi } => Response::MaybeValue(store.merged_query(&keys, phi)),
        Request::Stats => Response::Stats(store.stats()),
        Request::Remove { key } => {
            // The generation check would reject the lease anyway; dropping
            // it promptly frees its pool slot (it holds no weight).
            leases.leases.remove(&key);
            Response::Flag(store.remove(&key))
        }
        Request::Keys => Response::Keys(store.keys()),
        Request::Snapshot { key } => Response::MaybeFrame(store.snapshot_bytes(&key)),
        Request::Ingest { key, frame } => match store.ingest_bytes(&key, &frame) {
            Ok(n) => Response::Count(n),
            Err(e) => Response::Error { code: ErrorCode::Wire, message: e.to_string() },
        },
        Request::Metrics => Response::Metrics(store.telemetry_snapshot()),
        Request::UpdateAt { key, ts, values } => {
            // Timestamped writes take the store path directly: a window
            // roll retires leases anyway, and on an unwindowed store this
            // is plain `update_many`.
            store.update_at(&key, ts, &values);
            Response::Ok
        }
        Request::QueryRange { key, t0, t1, phi } => {
            Response::MaybeValue(store.query_range(&key, t0, t1, phi))
        }
        Request::MergedQueryRange { keys, t0, t1, phi } => {
            Response::MaybeValue(store.merged_query_range(&keys, t0, t1, phi))
        }
    }
}
