//! The TCP serving loop: accept, dispatch to the pool, answer frames.
//!
//! One [`ThreadPool`] worker owns each connection for its whole lifetime
//! (blocking request/response loop over buffered reads/writes), matching
//! the store's lock-striped design: concurrency comes from many
//! connections on many workers, and every request is one store call. The
//! paper's N-updaters/unbounded-queriers model maps onto writer
//! connections issuing `Update`/`UpdateMany` and reader connections
//! issuing `Query`/`MergedQuery` against the same [`SketchStore`].
//!
//! Writer connections are the paper's update threads end to end: each
//! connection caches one [`qc_store::WriterLease`] per recently written
//! key, so repeated `Update`/`UpdateMany` frames reuse the same
//! per-thread writer handle under only the **shared** stripe lock —
//! N connections hammering one hot key synchronize inside the sketch
//! (Gather&Sort/DCAS), not on a store mutex. Leases are generation-
//! checked by the store on every use (`remove`/demotion invalidates them
//! mid-connection, falling back transparently), evicted after sitting
//! idle for [`LEASE_IDLE_FRAMES`] frames, and returned to the store's
//! per-key pools when the connection closes.
//!
//! Shutdown is graceful and bounded: [`ServerHandle::shutdown`] stops the
//! accept loop, closes every live connection's socket (unblocking any
//! worker parked in a read), then joins the pool.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qc_store::{SketchStore, StoreConfig, WriterLease};

use crate::pool::ThreadPool;
use crate::proto::{
    read_frame, write_frame, ErrorCode, RecvError, Request, Response, DEFAULT_MAX_FRAME_LEN,
};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection-handling worker threads (each owns one live connection,
    /// so this is also the concurrent-connection cap).
    pub pool_threads: usize,
    /// Accepted connections that may queue for a free worker before the
    /// accept loop blocks (application-level accept backlog; beyond it,
    /// backpressure falls to the kernel listen queue).
    pub accept_backlog: usize,
    /// Per-frame body cap; larger frames are rejected before allocation.
    pub max_frame_len: usize,
    /// Configuration for the store built by [`Server::bind`] (ignored by
    /// [`Server::bind_with_store`]).
    pub store: StoreConfig,
    /// Interval between store cool-down sweeps
    /// ([`SketchStore::cool_down`]): each sweep demotes hot-tier keys that
    /// saw no updates for a full interval, reclaiming their concurrent
    /// buffers. `None` disables housekeeping.
    pub cool_down_interval: Option<Duration>,
    /// Test hook: pretend every connection's registry registration fails
    /// (as a real `try_clone` failure under fd exhaustion would). An
    /// unregistered connection cannot be severed by `stop()`, so it must
    /// be closed on the spot — the shutdown regression suite pins that.
    #[doc(hidden)]
    pub fail_connection_registration: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pool_threads: 8,
            accept_backlog: 64,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            store: StoreConfig::default(),
            cool_down_interval: Some(Duration::from_secs(30)),
            fail_connection_registration: false,
        }
    }
}

/// Entry point: binds a listener and spawns the serving threads.
pub struct Server;

impl Server {
    /// Bind `addr` and serve a fresh store built from `cfg.store`.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let store = Arc::new(SketchStore::new(cfg.store.clone()));
        Self::bind_with_store(addr, cfg, store)
    }

    /// Bind `addr` and serve an existing store (lets one process expose a
    /// store it also updates in-process).
    pub fn bind_with_store<A: ToSocketAddrs>(
        addr: A,
        cfg: ServerConfig,
        store: Arc<SketchStore>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Conns = Arc::new(Mutex::new(HashMap::new()));
        let pool = Arc::new(ThreadPool::new(cfg.pool_threads, cfg.accept_backlog, "qc-conn"));
        // Housekeeping before the accept thread: once the accept loop runs
        // the server is externally reachable, and a spawn failure after
        // that point would return Err while leaking a live, unstoppable
        // server on the port. In this order each failure path can still
        // tear down everything it started.
        let housekeeping = match cfg.cool_down_interval {
            // On failure, plain `return Err` tears down cleanly: dropping
            // the last pool Arc joins the (idle) workers via Drop.
            Some(interval) => Some(Housekeeping::spawn(Arc::clone(&store), interval)?),
            None => None,
        };
        let accept = {
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let accept_pool = Arc::clone(&pool);
            let opts = ConnOptions {
                max_frame_len: cfg.max_frame_len,
                fail_registration: cfg.fail_connection_registration,
            };
            let spawned = std::thread::Builder::new().name("qc-accept".into()).spawn(move || {
                accept_loop(&listener, &store, &shutdown, &conns, &accept_pool, opts)
            });
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    // Stop housekeeping explicitly; the pool tears itself
                    // down when its Arcs drop (the spawn closure holding
                    // the clone was dropped on failure).
                    if let Some(housekeeping) = housekeeping {
                        housekeeping.stop();
                    }
                    return Err(e);
                }
            }
        };
        Ok(ServerHandle {
            local_addr,
            store,
            shutdown,
            conns,
            accept: Some(accept),
            pool: Some(pool),
            housekeeping,
        })
    }
}

/// The periodic store-maintenance thread: runs
/// [`SketchStore::cool_down`] every `interval` so idle hot-tier keys
/// demote and release their concurrent buffers (without it, any key that
/// ever crossed the promotion threshold would hold its Gather&Sort
/// footprint forever). Stopped promptly through a condvar on shutdown.
struct Housekeeping {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: JoinHandle<()>,
}

impl Housekeeping {
    fn spawn(store: Arc<SketchStore>, interval: Duration) -> std::io::Result<Self> {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new().name("qc-housekeeping".into()).spawn(move || {
                let (lock, cvar) = &*stop;
                let mut stopped = lock.lock().unwrap();
                while !*stopped {
                    let (guard, timeout) = cvar.wait_timeout(stopped, interval).unwrap();
                    stopped = guard;
                    if timeout.timed_out() && !*stopped {
                        drop(stopped);
                        store.cool_down();
                        stopped = lock.lock().unwrap();
                    }
                }
            })?
        };
        Ok(Self { stop, thread })
    }

    fn stop(self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
        let _ = self.thread.join();
    }
}

type Conns = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Per-connection serving parameters threaded from [`ServerConfig`]
/// through the accept loop.
#[derive(Clone, Copy)]
struct ConnOptions {
    max_frame_len: usize,
    fail_registration: bool,
}

/// A running server; dropping it (or calling
/// [`shutdown`](ServerHandle::shutdown)) stops it gracefully.
pub struct ServerHandle {
    local_addr: SocketAddr,
    store: Arc<SketchStore>,
    shutdown: Arc<AtomicBool>,
    conns: Conns,
    accept: Option<JoinHandle<()>>,
    pool: Option<Arc<ThreadPool>>,
    housekeeping: Option<Housekeeping>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The store this server answers from.
    pub fn store(&self) -> &Arc<SketchStore> {
        &self.store
    }

    /// Number of currently live connections.
    pub fn active_connections(&self) -> usize {
        self.conns.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// Graceful shutdown: stop accepting, close live connections, join
    /// every serving thread. In-flight requests finish; subsequent reads
    /// on client sockets see EOF.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stop housekeeping first: a sweep holds stripe locks briefly, and
        // joining it here keeps shutdown deterministic.
        if let Some(housekeeping) = self.housekeeping.take() {
            housekeeping.stop();
        }
        // Close every live socket first so workers parked in read() return.
        // This also unwedges an accept loop blocked on a full backlog
        // queue: freed workers drain it, letting the loop reach accept().
        if let Ok(conns) = self.conns.lock() {
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // Unblock the accept loop with a dummy connection to ourselves.
        // A wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform; dial the loopback of the same family instead.
        let mut wake_addr = self.local_addr;
        if wake_addr.ip().is_unspecified() {
            wake_addr.set_ip(match wake_addr {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // The accept thread has exited, so we hold the last pool reference;
        // consume it to drain the queue and join the workers.
        if let Some(pool) = self.pool.take() {
            match Arc::try_unwrap(pool) {
                Ok(pool) => pool.shutdown(),
                Err(_) => unreachable!("accept loop joined above still holds the pool"),
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    store: &Arc<SketchStore>,
    shutdown: &Arc<AtomicBool>,
    conns: &Conns,
    pool: &Arc<ThreadPool>,
    opts: ConnOptions,
) {
    let mut next_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                // Transient accept failure (e.g. EMFILE under fd
                // exhaustion): back off briefly instead of hot-spinning,
                // giving workers a chance to close sockets and free fds.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::Relaxed) {
            // Covers the wake-up dummy connection from `stop`.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let id = next_id;
        next_id += 1;
        let store = Arc::clone(store);
        let shutdown = Arc::clone(shutdown);
        let conns = Arc::clone(conns);
        let enqueued = pool.execute(move || {
            handle_connection(stream, id, &store, &shutdown, &conns, opts);
        });
        if enqueued.is_err() {
            return;
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    id: u64,
    store: &SketchStore,
    shutdown: &AtomicBool,
    conns: &Conns,
    opts: ConnOptions,
) {
    // Register a clone so `stop` can sever the socket under a stuck read.
    // If registration fails (fd exhaustion breaking `try_clone`, a
    // poisoned registry), the connection MUST NOT be served: `stop()`
    // could never sever it, so a worker parked in `read()` would block
    // the pool join and wedge shutdown indefinitely. Close it and bail.
    let registered = !opts.fail_registration
        && match stream.try_clone() {
            Ok(clone) => match conns.lock() {
                Ok(mut map) => {
                    map.insert(id, clone);
                    true
                }
                Err(_) => false,
            },
            Err(_) => false,
        };
    if !registered {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    serve_frames(&stream, store, shutdown, opts.max_frame_len);
    let _ = stream.shutdown(Shutdown::Both);
    if let Ok(mut map) = conns.lock() {
        map.remove(&id);
    }
}

/// A cached lease is evicted (and returned to the store's pool) once this
/// many frames pass without the connection writing to its key — a
/// connection that drifts across many keys must not pin a pool slot on
/// every one of them forever.
pub const LEASE_IDLE_FRAMES: u64 = 4096;

/// Frames between idle-lease sweeps of a connection's cache.
const LEASE_SWEEP_INTERVAL: u64 = 512;

/// A connection's writer leases: one per recently written key, tagged
/// with the frame number of its last use.
struct ConnLeases {
    leases: HashMap<String, (WriterLease<f64>, u64)>,
    frame: u64,
}

impl ConnLeases {
    fn new() -> Self {
        ConnLeases { leases: HashMap::new(), frame: 0 }
    }

    /// Write a batch for `key`, through the cached lease when it is still
    /// valid, else through the store's own two-tier path — acquiring a
    /// lease for next time when the key's engine hands one out.
    fn write(&mut self, store: &SketchStore, key: String, values: &[f64]) {
        if let Some((lease, used)) = self.leases.get_mut(&key) {
            match store.update_many_leased(&key, lease, values) {
                Ok(()) => {
                    *used = self.frame;
                    return;
                }
                // The key was removed, demoted, or re-created since the
                // lease was minted. The rejected lease holds no weight —
                // drop it and fall through to the normal path.
                Err(qc_store::StaleLease) => {
                    self.leases.remove(&key);
                }
            }
        }
        store.update_many(&key, values);
        if let Some(lease) = store.lease_writer(&key) {
            let frame = self.frame;
            self.leases.insert(key, (lease, frame));
        }
    }

    /// Per-frame bookkeeping: every `LEASE_SWEEP_INTERVAL` frames, return
    /// leases that sat idle past `LEASE_IDLE_FRAMES` to the store.
    fn tick(&mut self, store: &SketchStore) {
        self.frame += 1;
        if !self.frame.is_multiple_of(LEASE_SWEEP_INTERVAL) {
            return;
        }
        let frame = self.frame;
        let idle: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, (_, used))| frame.saturating_sub(*used) > LEASE_IDLE_FRAMES)
            .map(|(key, _)| key.clone())
            .collect();
        for key in idle {
            if let Some((lease, _)) = self.leases.remove(&key) {
                store.return_lease(&key, lease);
            }
        }
    }

    /// Hand every lease back to the store's pools (connection teardown).
    fn release_all(&mut self, store: &SketchStore) {
        for (key, (lease, _)) in self.leases.drain() {
            store.return_lease(&key, lease);
        }
    }
}

fn serve_frames(stream: &TcpStream, store: &SketchStore, shutdown: &AtomicBool, max: usize) {
    // `&TcpStream` implements Read/Write, so buffering both directions
    // needs no extra fd duplication: two fds per connection total (the
    // stream itself plus the registry clone `stop` severs).
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);
    let mut leases = ConnLeases::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let body = match read_frame(&mut reader, max) {
            Ok(Some(body)) => body,
            Ok(None) => break,              // client closed cleanly
            Err(RecvError::Io(_)) => break, // disconnect / shutdown
            Err(RecvError::Proto(e)) => {
                // Framing itself is broken (oversized declaration): answer
                // once, then close — byte boundaries are untrustworthy.
                let resp = Response::Error { code: ErrorCode::Proto, message: e.to_string() };
                let _ = write_frame(&mut writer, &resp.encode());
                let _ = writer.flush();
                break;
            }
        };
        let response = match Request::decode(&body) {
            // A malformed *body* inside a well-delimited frame does not
            // desync the stream; answer the error and keep serving.
            Err(e) => Response::Error { code: ErrorCode::Proto, message: e.to_string() },
            Ok(req) => execute(store, req, shutdown, &mut leases),
        };
        leases.tick(store);
        if write_frame(&mut writer, &response.encode()).is_err() || writer.flush().is_err() {
            break;
        }
    }
    // Give the held writer handles back to the store's per-key pools so
    // other connections can reuse them (a dropped lease would strand its
    // pool slot until the next housekeeping sweep).
    leases.release_all(store);
}

fn execute(
    store: &SketchStore,
    req: Request,
    shutdown: &AtomicBool,
    leases: &mut ConnLeases,
) -> Response {
    if shutdown.load(Ordering::Relaxed) {
        return Response::Error {
            code: ErrorCode::Unavailable,
            message: "server shutting down".into(),
        };
    }
    match req {
        Request::Update { key, value } => {
            leases.write(store, key, &[value]);
            Response::Ok
        }
        Request::UpdateMany { key, values } => {
            leases.write(store, key, &values);
            Response::Ok
        }
        Request::Query { key, phi } => Response::MaybeValue(store.query(&key, phi)),
        Request::Rank { key, value } => Response::MaybeValue(store.rank(&key, value)),
        Request::MergedQuery { keys, phi } => Response::MaybeValue(store.merged_query(&keys, phi)),
        Request::Stats => Response::Stats(store.stats()),
        Request::Remove { key } => {
            // The generation check would reject the lease anyway; dropping
            // it promptly frees its pool slot (it holds no weight).
            leases.leases.remove(&key);
            Response::Flag(store.remove(&key))
        }
        Request::Keys => Response::Keys(store.keys()),
        Request::Snapshot { key } => Response::MaybeFrame(store.snapshot_bytes(&key)),
        Request::Ingest { key, frame } => match store.ingest_bytes(&key, &frame) {
            Ok(n) => Response::Count(n),
            Err(e) => Response::Error { code: ErrorCode::Wire, message: e.to_string() },
        },
    }
}
