//! The per-connection writer-lease cache: repeated `update`/`update_many`
//! frames on a hot key must reuse a leased per-thread handle (shared-lock
//! writes), survive `remove`/demotion invalidation transparently, and
//! keep the store's accounting exact to the element.

use std::time::{Duration, Instant};

use qc_server::{Client, Server, ServerConfig};
use qc_store::StoreConfig;

fn serve(
    seed: u64,
    promotion_threshold: u64,
    cool_down: Option<Duration>,
) -> qc_server::ServerHandle {
    let cfg = ServerConfig {
        pool_threads: 4,
        store: StoreConfig::default()
            .stripes(4)
            .k(64)
            .b(4)
            .seed(seed)
            .promotion_threshold(promotion_threshold),
        cool_down_interval: cool_down,
        ..ServerConfig::default()
    };
    Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port")
}

/// Repeated hot-key writes from one connection ride the shared path via
/// the cached lease, with exact end-to-end accounting.
#[test]
fn connection_reuses_lease_across_frames() {
    let handle = serve(91, 50, None);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Promote, then stream many batches over the same connection.
    let mut total = 0u64;
    for i in 0..40u64 {
        let batch: Vec<f64> = (0..64).map(|j| (i * 64 + j) as f64).collect();
        client.update_many("hot", &batch).expect("update rpc");
        total += 64;
    }
    for i in 0..100u64 {
        client.update("hot", (total + i) as f64).expect("update rpc");
    }
    total += 100;

    let stats = handle.store().stats();
    assert_eq!(stats.updates, total);
    assert_eq!(stats.stream_len, total, "leased frames stay exact at quiescence");
    assert!(
        stats.shared_writes > 30,
        "hot-key frames must reuse the connection lease (shared {} / fallback {})",
        stats.shared_writes,
        stats.fallback_writes
    );
    let median = client.query("hot", 0.5).expect("query rpc").expect("non-empty");
    assert!((0.25 * total as f64..0.75 * total as f64).contains(&median), "median {median}");
    handle.shutdown();
}

/// A `remove` from another connection invalidates a held lease
/// mid-stream: the writer connection falls back, re-leases, and the
/// successor key sees exactly the post-removal weight.
#[test]
fn remove_from_another_connection_goes_unnoticed_by_the_writer() {
    let handle = serve(92, 0, None);
    let mut writer = Client::connect(handle.local_addr()).expect("connect writer");
    let mut admin = Client::connect(handle.local_addr()).expect("connect admin");

    for i in 0..20u64 {
        let batch: Vec<f64> = (0..32).map(|j| (i * 32 + j) as f64).collect();
        writer.update_many("k", &batch).expect("update rpc");
    }
    assert!(admin.remove("k").expect("remove rpc"));

    // The writer's cached lease is now stale; the next frames must be
    // delivered anyway — exactly once each.
    for i in 0..10u64 {
        let batch: Vec<f64> = (0..32).map(|j| (i * 32 + j) as f64).collect();
        writer.update_many("k", &batch).expect("update rpc after remove");
    }
    let resident = handle.store().summary_of("k").expect("key re-created");
    assert_eq!(
        qc_common::Summary::stream_len(&*resident),
        320,
        "successor must hold exactly the post-removal weight"
    );
    let stats = handle.store().stats();
    assert_eq!(stats.updates, 20 * 32 + 10 * 32);
    handle.shutdown();
}

/// Housekeeping demotion invalidates connection leases too: a key that
/// cools down mid-connection keeps accepting writes (fallback →
/// re-promotion → fresh lease) without losing an element.
#[test]
fn demotion_mid_connection_keeps_writes_exact() {
    let handle = serve(93, 100, Some(Duration::from_millis(30)));
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let batch: Vec<f64> = (0..500).map(f64::from).collect();
    client.update_many("wave", &batch).expect("first burst");
    assert_eq!(handle.store().stats().hot_keys, 1);

    // Go idle until housekeeping demotes the key (staling our lease).
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.store().stats().hot_keys != 0 {
        assert!(Instant::now() < deadline, "housekeeping never demoted the idle key");
        std::thread::sleep(Duration::from_millis(15));
    }

    // Write again through the same connection: stale lease → fallback →
    // re-promotion; nothing may be lost on either side of the wave.
    client.update_many("wave", &batch).expect("second burst");
    let stats = handle.store().stats();
    assert_eq!(stats.updates, 1000);
    assert_eq!(stats.stream_len, 1000, "no element lost across demotion of a leased key");
    handle.shutdown();
}
