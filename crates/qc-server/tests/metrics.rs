//! End-to-end telemetry: a scripted workload over a live server must be
//! reflected *exactly* in the `Metrics` frame — per-opcode request
//! counts, request bytes, latency sketch populations — and error paths
//! that were previously silent (malformed frames, disconnects) must be
//! counted and evented with the peer address.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use qc_common::summary::Summary;

use qc_server::proto::{read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME_LEN};
use qc_server::{Client, ErrorCode, Server, ServerConfig, ServerHandle};
use qc_telemetry::EventKind;

fn bind() -> ServerHandle {
    let cfg = ServerConfig { cool_down_interval: None, ..Default::default() };
    Server::bind("127.0.0.1:0", cfg).expect("bind")
}

/// Poll until `probe` passes or ~2s elapse (connection teardown is
/// counted asynchronously after the socket drops).
fn eventually(mut probe: impl FnMut() -> bool) -> bool {
    for _ in 0..200 {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn scripted_workload_counts_match_exactly() {
    let handle = bind();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // The script: fixed numbers of every opcode.
    for i in 0..5 {
        client.update("a", i as f64).unwrap();
    }
    let batch: Vec<f64> = (0..10).map(f64::from).collect();
    for _ in 0..3 {
        client.update_many("a", &batch).unwrap();
    }
    for _ in 0..7 {
        client.query("a", 0.5).unwrap();
    }
    for _ in 0..2 {
        client.rank("a", 3.0).unwrap();
    }
    client.merged_query(&["a"], 0.9).unwrap();
    for _ in 0..2 {
        client.stats().unwrap();
    }
    client.keys().unwrap();
    let frame = client.snapshot_bytes("a").unwrap().expect("resident key");
    client.ingest_bytes("b", &frame).unwrap();
    client.remove("b").unwrap();

    // The metrics request itself is counted before it snapshots, so it
    // observes itself; its latency is recorded after, so it does not.
    let snap = client.metrics().unwrap();

    let expected = [
        ("update", 5u64),
        ("update_many", 3),
        ("query", 7),
        ("rank", 2),
        ("merged_query", 1),
        ("stats", 2),
        ("remove", 1),
        ("keys", 1),
        ("snapshot", 1),
        ("ingest", 1),
        ("metrics", 1),
    ];
    for (op, count) in expected {
        assert_eq!(
            snap.counter(&format!("server_requests_{op}")),
            Some(count),
            "request count for {op}"
        );
        let latency = snap
            .latency(&format!("server_request_seconds_{op}"))
            .unwrap_or_else(|| panic!("latency sketch for {op} missing"));
        // The metrics request records its own latency only after the
        // snapshot was taken inside it.
        let recorded = if op == "metrics" { 0 } else { count };
        assert_eq!(latency.stream_len(), recorded, "latency population for {op}");
    }

    // Request bytes are exact: every scripted update frame is
    // byte-identical in size.
    let update_body = Request::Update { key: "a".into(), value: 0.0 }.encode().len() as u64;
    assert_eq!(snap.counter("server_request_bytes_update"), Some(5 * update_body));

    // The p99 comes out of the server's own sketch engine.
    let p99 = snap.quantile("server_request_seconds_update", 0.99).expect("p99 present");
    assert!((0.0..60.0).contains(&p99), "implausible p99: {p99}");

    // Store-layer instruments live in the same snapshot: 5 singles plus
    // 3 batches of 10 through the write path, one ingest.
    assert_eq!(snap.counter("store_updates"), Some(35));
    assert_eq!(snap.counter("store_ingests"), Some(1));

    // Liveness gauges: exactly this one connection, an idle pool queue.
    assert_eq!(snap.gauge("server_active_connections"), Some(1));
    assert_eq!(snap.gauge("server_pool_queue_depth"), Some(0));

    // No error paths fired.
    assert_eq!(snap.counter("server_proto_errors"), Some(0));
    assert_eq!(snap.counter("server_conns_accepted"), Some(1));

    // The text exposition carries the same instruments.
    let text = handle.telemetry().render_text();
    assert!(text.contains("# TYPE server_requests_update counter"));
    assert!(text.contains("server_requests_update 5"));
    assert!(text.contains("# TYPE server_request_seconds_update summary"));

    client.shutdown();
    handle.shutdown();
}

#[test]
fn malformed_frames_are_counted_and_evented() {
    let handle = bind();
    let addr = handle.local_addr();

    // A well-delimited frame with a garbage body: the server answers a
    // typed error and keeps the connection alive.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    write_frame(&mut raw, &[0x7f, 1, 2, 3]).unwrap();
    raw.flush().unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let body = read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap().expect("error response");
    match Response::decode(&body).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Proto),
        other => panic!("expected error response, got {other:?}"),
    }
    drop(reader);
    drop(raw);

    let mut client = Client::connect(addr).expect("connect");
    let snap = client.metrics().unwrap();
    assert_eq!(snap.counter("server_proto_errors"), Some(1), "malformed body must be counted");
    assert_eq!(snap.counter("server_conns_accepted"), Some(2));

    // The event ring holds the structured trail, peer address included.
    let events = handle.telemetry().events().drain();
    let proto_event =
        events.iter().find(|e| e.kind == EventKind::ProtoError).expect("ProtoError event recorded");
    assert!(proto_event.detail.contains("peer=127.0.0.1:"), "detail: {}", proto_event.detail);
    assert!(
        events.iter().any(|e| e.kind == EventKind::ConnOpen),
        "accepts must leave ConnOpen events"
    );

    // The raw connection closed cleanly from the server's perspective
    // (EOF between frames after the error reply); counted asynchronously.
    let registry = std::sync::Arc::clone(handle.telemetry());
    assert!(
        eventually(|| { registry.snapshot().counter("server_conns_closed_eof").unwrap_or(0) >= 1 }),
        "dropped connection never counted as closed"
    );

    client.shutdown();
    handle.shutdown();
}

#[test]
fn durable_workload_wal_telemetry_is_exact() {
    let dir = qc_workloads::TempDir::new("metrics-wal");
    let durable_cfg = || ServerConfig {
        cool_down_interval: None,
        data_dir: Some(dir.path().to_path_buf()),
        ..Default::default()
    };
    let handle = Server::bind("127.0.0.1:0", durable_cfg()).expect("bind durable");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Scripted writes: 6 singles + 1 batch + 1 ingest + 1 remove = 9 log
    // appends; the default PerFrame policy fsyncs each one.
    for i in 0..6 {
        client.update("w", i as f64).unwrap();
    }
    client.update_many("w", &[100.0, 200.0]).unwrap();
    let frame = client.snapshot_bytes("w").unwrap().expect("resident key");
    client.ingest_bytes("x", &frame).unwrap();
    client.remove("x").unwrap();

    let snap = client.metrics().unwrap();
    assert_eq!(snap.counter("wal_appends"), Some(9), "6 singles + batch + ingest + remove");
    // One connection = concurrency 1: this is the only case where
    // group commit degenerates to one physical sync per append.
    assert_eq!(snap.counter("wal_fsyncs"), Some(9), "PerFrame at concurrency 1 syncs every append");
    assert_eq!(snap.counter("wal_group_commits"), Some(9), "every sync covered a group (of 1)");
    assert_eq!(snap.gauge("wal_durable_lsn"), Some(9), "every acked append is durable");
    let sizes = snap.latency("wal_group_size").expect("group sizes recorded");
    assert_eq!(sizes.stream_len(), 9, "one size sample per group commit");
    assert_eq!(snap.quantile("wal_group_size", 1.0), Some(1.0), "all groups were singletons");
    assert_eq!(snap.counter("wal_errors"), Some(0));
    assert_eq!(snap.counter("wal_checkpoints"), Some(0), "nothing checkpoints unprompted");
    assert!(snap.counter("wal_bytes").unwrap() > 0, "frame bytes accumulate");
    assert_eq!(
        snap.latency("checkpoint_seconds").map(|s| s.stream_len()),
        Some(0),
        "checkpoint latency sketch is registered but empty"
    );

    // One checkpoint — the same call the housekeeping sweep makes.
    let stats = handle.store().checkpoint().expect("checkpoint").expect("dirty log");
    let snap = client.metrics().unwrap();
    assert_eq!(snap.counter("wal_checkpoints"), Some(1));
    assert_eq!(snap.latency("checkpoint_seconds").unwrap().stream_len(), 1);
    // The rotation's seal fsync is a physical sync, but everything it
    // covered was already durable: no new group commit.
    assert_eq!(snap.counter("wal_fsyncs"), Some(10), "checkpoint seals with one more sync");
    assert_eq!(snap.counter("wal_group_commits"), Some(9), "no append newly covered");
    let events = handle.telemetry().events().drain();
    let ckpt =
        events.iter().find(|e| e.kind == EventKind::Checkpoint).expect("Checkpoint event recorded");
    assert!(
        ckpt.detail.contains(&format!("keys={}", stats.keys)),
        "checkpoint detail names the key count: {}",
        ckpt.detail
    );

    client.shutdown();
    handle.shutdown();

    // Restart on the same directory: a fresh registry whose first entry
    // is the recovery trail, with WAL counters reset to a clean slate.
    let handle = Server::bind("127.0.0.1:0", durable_cfg()).expect("rebind durable");
    let recovery = handle
        .telemetry()
        .events()
        .drain()
        .into_iter()
        .find(|e| e.kind == EventKind::Recovery)
        .expect("Recovery event recorded before accepting traffic");
    assert!(
        recovery.detail.contains("corrupt=false"),
        "clean shutdown recovers clean: {}",
        recovery.detail
    );

    let mut client = Client::connect(handle.local_addr()).expect("connect after recovery");
    let snap = client.metrics().unwrap();
    assert_eq!(snap.counter("wal_appends"), Some(0), "recovery replay must not re-log");
    let stats = client.stats().unwrap();
    assert_eq!(stats.stream_len, 8, "6 singles + a batch of 2 survive the restart");
    client.shutdown();
    handle.shutdown();
}

/// Concurrent durable writers share fsyncs: `wal_fsyncs < wal_appends`
/// strictly (equality is reserved for concurrency 1, pinned above), the
/// durable watermark covers every acked append, and the group-size
/// sketch carries exactly one sample per group commit — so
/// `wal_group_commits × mean group size == covered appends` by
/// construction (the sketch's total weight *is* the watermark movement).
#[test]
fn concurrent_durable_writers_share_fsyncs() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 25;
    let dir = qc_workloads::TempDir::new("metrics-group");
    let cfg = ServerConfig {
        cool_down_interval: None,
        data_dir: Some(dir.path().to_path_buf()),
        // A small leader hold-off forces real multi-writer groups even
        // on a single-core box: while the leader sleeps, the other
        // writers append and park on the watermark.
        store: qc_store::StoreConfig::default().group_commit_delay(Duration::from_millis(3)),
        ..Default::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind durable");
    let addr = handle.local_addr();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect writer");
                for i in 0..PER_WRITER {
                    client.update(&format!("k{w}"), i as f64).unwrap();
                }
                client.shutdown();
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer thread");
    }

    let mut client = Client::connect(addr).expect("connect reader");
    let snap = client.metrics().unwrap();
    let appends = (WRITERS * PER_WRITER) as u64;
    assert_eq!(snap.counter("wal_appends"), Some(appends));
    let fsyncs = snap.counter("wal_fsyncs").expect("fsyncs counted");
    assert!(
        fsyncs < appends,
        "{WRITERS} concurrent writers must share fsyncs: {fsyncs} syncs for {appends} appends"
    );
    assert_eq!(
        snap.gauge("wal_durable_lsn"),
        Some(appends as i64),
        "every acked append is covered by some group"
    );
    let group_commits = snap.counter("wal_group_commits").expect("group commits counted");
    assert!(group_commits <= fsyncs, "a group commit is a physical sync");
    let sizes = snap.latency("wal_group_size").expect("group sizes recorded");
    assert_eq!(sizes.stream_len(), group_commits, "one size sample per group commit");
    // At least one group actually batched more than one writer.
    assert!(
        snap.quantile("wal_group_size", 1.0).expect("max group size") >= 2.0,
        "no multi-append group ever formed"
    );
    assert_eq!(snap.counter("wal_errors"), Some(0));

    // Durability is real, not just counted: a restart replays all of it.
    client.shutdown();
    handle.shutdown();
    let reopened = ServerConfig {
        cool_down_interval: None,
        data_dir: Some(dir.path().to_path_buf()),
        ..Default::default()
    };
    let handle = Server::bind("127.0.0.1:0", reopened).expect("rebind durable");
    let mut client = Client::connect(handle.local_addr()).expect("connect after recovery");
    let stats = client.stats().unwrap();
    assert_eq!(stats.stream_len, appends, "every acked write survives the restart");
    client.shutdown();
    handle.shutdown();
}

#[test]
fn metrics_roundtrip_against_live_server_is_lossless() {
    let handle = bind();
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for i in 0..500 {
        client.update("lat", i as f64).unwrap();
    }
    let snap = client.metrics().unwrap();
    // The wire round-trip must preserve the snapshot bit-exactly: the
    // server-side snapshot taken *after* ours can only have grown, so
    // compare against a second client-side fetch instead — two identical
    // quiescent fetches must agree on everything except the metrics
    // opcode's own instruments and liveness-sensitive latency sketches.
    let again = client.metrics().unwrap();
    assert_eq!(snap.counter("server_requests_update"), again.counter("server_requests_update"));
    assert_eq!(snap.counter("store_updates"), again.counter("store_updates"));
    assert_eq!(
        again.counter("server_requests_metrics"),
        snap.counter("server_requests_metrics").map(|c| c + 1)
    );
    // Quantiles survive the CRC-checked summary encoding.
    let p50 = snap.quantile("server_request_seconds_update", 0.5).expect("p50");
    assert!(p50 > 0.0, "recorded latencies are positive durations");
    client.shutdown();
    handle.shutdown();
}
