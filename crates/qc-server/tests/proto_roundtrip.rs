//! Protocol property tests: every frame type round-trips bit-exactly
//! through encode/decode, and corrupted frames of every flavour —
//! truncation, bit flips, bad opcodes, oversized length prefixes, random
//! garbage — come back as typed [`ProtoError`]s. Never a panic, never an
//! allocation of attacker-controlled size.

use proptest::prelude::*;
use qc_common::summary::{WeightedItem, WeightedSummary};
use qc_server::proto::{
    read_frame, write_frame, ProtoError, RecvError, Request, Response, METRICS_VERSION,
};
use qc_server::{ErrorCode, MetricsSnapshot};
use qc_store::StoreStats;

fn key_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        // Arbitrary (possibly multi-byte) UTF-8 via lossy conversion.
        String::from_utf8_lossy(&bytes).into_owned()
    })
}

fn f64_strategy() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (key_strategy(), f64_strategy()).prop_map(|(key, value)| Request::Update { key, value }),
        (key_strategy(), prop::collection::vec(f64_strategy(), 0..64))
            .prop_map(|(key, values)| Request::UpdateMany { key, values }),
        (key_strategy(), f64_strategy()).prop_map(|(key, phi)| Request::Query { key, phi }),
        (key_strategy(), f64_strategy()).prop_map(|(key, value)| Request::Rank { key, value }),
        (prop::collection::vec(key_strategy(), 0..8), f64_strategy())
            .prop_map(|(keys, phi)| Request::MergedQuery { keys, phi }),
        Just(Request::Stats),
        key_strategy().prop_map(|key| Request::Remove { key }),
        Just(Request::Keys),
        key_strategy().prop_map(|key| Request::Snapshot { key }),
        (key_strategy(), prop::collection::vec(any::<u8>(), 0..128))
            .prop_map(|(key, frame)| Request::Ingest { key, frame }),
        Just(Request::Metrics),
        (key_strategy(), any::<u64>(), prop::collection::vec(f64_strategy(), 0..64))
            .prop_map(|(key, ts, values)| Request::UpdateAt { key, ts, values }),
        (key_strategy(), any::<u64>(), any::<u64>(), f64_strategy())
            .prop_map(|(key, t0, t1, phi)| Request::QueryRange { key, t0, t1, phi }),
        (prop::collection::vec(key_strategy(), 0..8), any::<u64>(), any::<u64>(), f64_strategy())
            .prop_map(|(keys, t0, t1, phi)| Request::MergedQueryRange { keys, t0, t1, phi }),
    ]
}

fn summary_strategy() -> impl Strategy<Value = WeightedSummary> {
    prop::collection::vec((any::<u64>(), 1u64..16), 0..64).prop_map(|items| {
        WeightedSummary::from_items(
            items
                .into_iter()
                .map(|(value_bits, weight)| WeightedItem { value_bits, weight })
                .collect(),
        )
    })
}

fn metrics_strategy() -> impl Strategy<Value = MetricsSnapshot> {
    (
        prop::collection::vec((key_strategy(), any::<u64>()), 0..6),
        prop::collection::vec((key_strategy(), any::<i64>()), 0..6),
        prop::collection::vec((key_strategy(), summary_strategy()), 0..3),
    )
        .prop_map(|(counters, gauges, latencies)| MetricsSnapshot {
            counters,
            gauges,
            latencies,
        })
}

fn stats_strategy() -> impl Strategy<Value = StoreStats> {
    ((any::<u32>(), any::<u32>()), (any::<u64>(), any::<u64>()), (any::<u64>(), any::<u64>()))
        .prop_map(|((keys, stripes), (updates, ingests), (stream_len, bytes))| StoreStats {
            keys: keys as usize,
            stripes: stripes as usize,
            updates,
            ingests,
            ingest_errors: ingests / 2,
            stream_len,
            bytes_out: bytes,
            bytes_in: bytes / 3,
            // Local-only tier fields never cross the wire; a round-trip
            // can only preserve them when they are zero.
            ..Default::default()
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        prop_oneof![Just(None), f64_strategy().prop_map(Some)].prop_map(Response::MaybeValue),
        any::<u64>().prop_map(Response::Count),
        any::<bool>().prop_map(Response::Flag),
        stats_strategy().prop_map(Response::Stats),
        prop::collection::vec(key_strategy(), 0..12).prop_map(Response::Keys),
        prop_oneof![Just(None), prop::collection::vec(any::<u8>(), 0..200).prop_map(Some)]
            .prop_map(Response::MaybeFrame),
        metrics_strategy().prop_map(Response::Metrics),
        (
            prop::sample::select(vec![ErrorCode::Wire, ErrorCode::Proto, ErrorCode::Unavailable]),
            key_strategy()
        )
            .prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

/// NaN-tolerant equality: identical re-encodings mean identical messages
/// (f64 payloads travel as raw bit patterns).
fn same_request(a: &Request, b: &Request) -> bool {
    a.encode() == b.encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip_is_identity(req in request_strategy()) {
        let body = req.encode();
        let back = Request::decode(&body).unwrap();
        prop_assert!(same_request(&req, &back), "{req:?} != {back:?}");
    }

    #[test]
    fn response_roundtrip_is_identity(resp in response_strategy()) {
        let body = resp.encode();
        let back = Response::decode(&body).unwrap();
        prop_assert_eq!(back.encode(), body);
    }

    #[test]
    fn request_truncation_is_typed_never_panics(req in request_strategy(), cut in 0.0f64..1.0) {
        let body = req.encode();
        let len = (body.len() as f64 * cut) as usize;
        if len < body.len() {
            // Shorter prefixes of a valid message may themselves be valid
            // (e.g. UpdateMany cut at a value boundary) — then the decoder
            // must still have consumed exactly the prefix. Any typed error
            // is fine; panics are not.
            if let Ok(shorter) = Request::decode(&body[..len]) {
                prop_assert!(shorter.encode().len() == len);
            }
        }
    }

    #[test]
    fn response_truncation_is_typed_never_panics(resp in response_strategy(), cut in 0.0f64..1.0) {
        let body = resp.encode();
        let len = (body.len() as f64 * cut) as usize;
        if len < body.len() {
            if let Ok(shorter) = Response::decode(&body[..len]) {
                prop_assert!(shorter.encode().len() == len);
            }
        }
    }

    #[test]
    fn bit_flips_never_panic(req in request_strategy(), pos in 0.0f64..1.0, bit in 0u32..8) {
        let mut body = req.encode();
        let idx = ((body.len() - 1) as f64 * pos) as usize;
        body[idx] ^= 1 << bit;
        // A flip may still decode (e.g. a different float); it must never
        // panic, and on success must have consumed the whole body.
        if let Ok(back) = Request::decode(&body) {
            prop_assert_eq!(back.encode(), body);
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn unknown_opcodes_are_typed(op in 0x0fu8..0x80, tail in prop::collection::vec(any::<u8>(), 0..16)) {
        let mut body = vec![op];
        body.extend_from_slice(&tail);
        prop_assert_eq!(Request::decode(&body), Err(ProtoError::UnknownOpcode { found: op }));
    }

    #[test]
    fn metrics_roundtrip_is_identity(snap in metrics_strategy()) {
        let resp = Response::Metrics(snap.clone());
        let body = resp.encode();
        match Response::decode(&body).unwrap() {
            Response::Metrics(back) => prop_assert_eq!(back, snap),
            other => prop_assert!(false, "wrong response kind: {other:?}"),
        }
    }

    #[test]
    fn metrics_truncation_is_typed_never_panics(snap in metrics_strategy(), cut in 0.0f64..1.0) {
        let body = Response::Metrics(snap).encode();
        let len = (body.len() as f64 * cut) as usize;
        if len < body.len() {
            // Unlike scalar frames, a truncated metrics body can never be
            // a valid shorter message when entries were dropped mid-list:
            // the decoder must consume exactly what it declared. Any typed
            // error is acceptable; panics and over-reads are not.
            if let Ok(shorter) = Response::decode(&body[..len]) {
                prop_assert!(shorter.encode().len() == len);
            }
        }
    }

    #[test]
    fn metrics_bit_flips_never_panic(snap in metrics_strategy(), pos in 0.0f64..1.0, bit in 0u32..8) {
        let mut body = Response::Metrics(snap).encode();
        let idx = ((body.len() - 1) as f64 * pos) as usize;
        body[idx] ^= 1 << bit;
        // Flips inside an embedded summary frame are caught by its CRC
        // (surfacing as BadSummary); flips elsewhere may still decode.
        // Either way: no panic, and on success the whole body was spoken
        // for.
        if let Ok(back) = Response::decode(&body) {
            prop_assert_eq!(back.encode(), body);
        }
    }

    #[test]
    fn metrics_absurd_counts_are_rejected_without_allocation(count in 1u64 << 20..u64::MAX) {
        // A metrics body declaring `count` counters but carrying none must
        // be rejected by the bounds check before any Vec::with_capacity.
        let mut body = vec![0x87u8, METRICS_VERSION];
        qc_store::wire::put_varint(&mut body, count);
        prop_assert!(matches!(
            Response::decode(&body),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation(
        declared in 1024u32..u32::MAX,
        max in 1usize..1024,
    ) {
        // A frame header declaring `declared` bytes against cap `max` must
        // yield FrameTooLarge without ever allocating `declared` bytes —
        // the reader sees only the 4 header bytes, so any attempt to
        // allocate-and-fill would error on EOF instead; getting the typed
        // error proves the check fired first.
        let header = declared.to_le_bytes();
        let mut cursor = &header[..];
        match read_frame(&mut cursor, max) {
            Err(RecvError::Proto(ProtoError::FrameTooLarge { len, max: m })) => {
                prop_assert_eq!(len, declared as u64);
                prop_assert_eq!(m, max);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn absurd_counts_are_rejected_without_allocation(count in 1u64 << 20..u64::MAX) {
        // Hand-build an UpdateMany whose count claims up to u64::MAX
        // values but carries none. Must come back Truncated (checked
        // before Vec::with_capacity), not OOM or panic.
        let mut body = vec![0x02u8, 0x01, b'k']; // opcode + key "k"
        let mut count_bytes = Vec::new();
        qc_store::wire::put_varint(&mut count_bytes, count);
        body.extend_from_slice(&count_bytes);
        prop_assert!(matches!(
            Request::decode(&body),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_io_roundtrips_through_a_buffer(reqs in prop::collection::vec(request_strategy(), 1..8)) {
        // Several frames back-to-back through one buffered stream.
        let mut wire = Vec::new();
        for req in &reqs {
            write_frame(&mut wire, &req.encode()).unwrap();
        }
        let mut cursor = &wire[..];
        for req in &reqs {
            let body = read_frame(&mut cursor, 1 << 20).unwrap().expect("frame present");
            let back = Request::decode(&body).unwrap();
            prop_assert!(same_request(req, &back));
        }
        prop_assert!(read_frame(&mut cursor, 1 << 20).unwrap().is_none(), "clean EOF after last frame");
    }
}

#[test]
fn snapshot_frames_survive_the_protocol_unchanged() {
    // The Ingest payload is the qc-store wire format verbatim: a frame
    // encoded by the store layer must pass through Request encoding and
    // back without a byte of difference.
    use qc_common::summary::{WeightedItem, WeightedSummary};
    let summary = WeightedSummary::from_items(
        (0..500).map(|i| WeightedItem { value_bits: i * 17, weight: 1 + (i % 5) }).collect(),
    );
    let frame = qc_store::wire::encode_summary(&summary);
    let req = Request::Ingest { key: "k".into(), frame: frame.clone() };
    match Request::decode(&req.encode()).unwrap() {
        Request::Ingest { frame: back, .. } => {
            assert_eq!(back, frame);
            let decoded = qc_store::wire::decode_summary(&back).unwrap();
            assert_eq!(decoded.items(), summary.items());
        }
        other => panic!("wrong request kind: {other:?}"),
    }
}
