//! Shutdown regression suite for connection-registry failures and for
//! the UDP ingest daemon's sever-before-drain ordering.
//!
//! `stop()` severs live connections through the registry; a connection
//! whose registration failed (e.g. `try_clone` under fd exhaustion) can
//! never be severed that way. Before the fix, `handle_connection` served
//! such a connection anyway: a pool worker parked in `read()` survived
//! shutdown's socket sweep, and `pool.shutdown()` joined forever. The fix
//! closes the socket and bails the moment registration fails; these tests
//! pin both the prompt close and the bounded shutdown.
//!
//! The ingest tests pin the daemon's shutdown contract: the socket thread
//! is severed *before* the processor channel closes, so everything the
//! daemon accepted is drained into the store (conservation holds at
//! rest), and nothing that arrives after the sever is ever accepted —
//! the counters are frozen the moment `shutdown()` returns.

use std::io::Read;
use std::net::{TcpStream, UdpSocket};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use qc_ingest::datagram::{encode_datagram, Record};
use qc_server::{IngestConfig, IngestDaemon, Server, ServerConfig};
use qc_store::{SketchStore, StoreConfig};

fn config(fail_registration: bool) -> ServerConfig {
    ServerConfig {
        pool_threads: 2,
        accept_backlog: 4,
        cool_down_interval: None,
        fail_connection_registration: fail_registration,
        ..ServerConfig::default()
    }
}

/// An unregistered connection is closed immediately instead of being
/// served: the client sees EOF without sending a byte.
#[test]
fn unregistered_connection_is_closed_immediately() {
    let handle = Server::bind("127.0.0.1:0", config(true)).expect("bind");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => {} // EOF: the server closed the unregistered connection
        Ok(n) => panic!("unexpected {n} bytes from a connection that must be closed"),
        Err(e) => panic!("expected EOF, got read error {e} (worker parked in serve loop?)"),
    }
    handle.shutdown();
}

/// Shutdown completes within a bounded time even when a connection was
/// accepted but never made it into the registry. Run under a watchdog:
/// pre-fix this joined forever on the worker parked in `read()`.
#[test]
fn shutdown_is_bounded_with_unregistered_connection() {
    let handle = Server::bind("127.0.0.1:0", config(true)).expect("bind");
    let addr = handle.local_addr();
    // Open (and keep open) a connection the server cannot sever through
    // its registry; never send anything, so a served connection would
    // leave a worker blocked in read().
    let stream = TcpStream::connect(addr).expect("connect");
    // Give the pool a beat to dequeue the connection before shutting down.
    std::thread::sleep(Duration::from_millis(100));

    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("shutdown wedged: unregistered connection blocked the pool join");
    drop(stream);
}

/// Control: with registration working (the default), a silent open
/// connection is severed by shutdown's registry sweep — same bound.
#[test]
fn shutdown_is_bounded_with_registered_idle_connection() {
    let handle = Server::bind("127.0.0.1:0", config(false)).expect("bind");
    let addr = handle.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));

    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx.recv_timeout(Duration::from_secs(60)).expect("shutdown wedged on idle connection");
    // The severed socket reads EOF (or a reset) promptly.
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 1];
    let _ = stream.read(&mut buf);
}

fn ingest_counters(store: &SketchStore) -> [u64; 5] {
    let snap = store.telemetry_snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    [
        c("ingest_datagrams"),
        c("ingest_applied_datagrams"),
        c("ingest_dropped_queue"),
        c("ingest_dropped_decode"),
        c("ingest_dropped_oversized"),
    ]
}

/// The daemon's shutdown ordering: everything accepted before the sever
/// is drained into the store (exact conservation at rest), and datagrams
/// arriving after `shutdown()` returns are never accepted — the socket
/// was severed *before* the processor channel closed, so the counters
/// are frozen.
#[test]
fn ingest_shutdown_drains_accepted_then_refuses_late_datagrams() {
    const SENT: usize = 200;
    const VALUES: usize = 8;
    let store = Arc::new(SketchStore::new(StoreConfig::default()));
    let daemon = IngestDaemon::spawn(
        Arc::clone(&store),
        IngestConfig::default().processors(2).queue_capacity(64),
    )
    .expect("spawn daemon");
    let addr = daemon.local_addr();

    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
    socket.connect(addr).expect("connect sender");
    let bytes = encode_datagram(&[Record {
        key: "drain".into(),
        values: (0..VALUES).map(|v| v as f64).collect(),
    }]);
    for _ in 0..SENT {
        socket.send(&bytes).expect("send");
        // Paced: loopback must not shed in the kernel, so the daemon's
        // received count is exactly SENT.
        std::thread::sleep(Duration::from_micros(300));
    }

    // Bounded shutdown under a watchdog: a wedged socket thread (the
    // pre-ordering bug) would park here forever.
    let (done_tx, done_rx) = mpsc::channel();
    let store_for_join = Arc::clone(&store);
    std::thread::spawn(move || {
        daemon.shutdown();
        let _ = done_tx.send(ingest_counters(&store_for_join));
    });
    let at_rest = done_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("ingest shutdown wedged: socket thread not severed before channel close");

    // Drained, not discarded: everything accepted was applied, and the
    // conservation identity holds exactly at rest.
    assert_eq!(at_rest[0], SENT as u64, "daemon received != sent under pacing");
    assert_eq!(at_rest[0], at_rest[1] + at_rest[2] + at_rest[3] + at_rest[4]);
    assert_eq!(at_rest[1], SENT as u64, "accepted datagrams must drain, not drop");
    let stats = store.stats();
    assert_eq!(stats.updates, (SENT * VALUES) as u64, "store weight != applied values");

    // Late datagrams are refused, not silently absorbed: the counters do
    // not move after shutdown() returned.
    for _ in 0..50 {
        let _ = socket.send(&bytes); // may error (port closed); either is fine
    }
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        ingest_counters(&store),
        at_rest,
        "counters moved after shutdown: a late datagram was accepted"
    );
    assert_eq!(store.stats().updates, (SENT * VALUES) as u64);
}

/// Server-integrated version of the same bound: `ServerHandle::shutdown`
/// severs the ingest daemon first, and completes in bounded time while a
/// sender is still firing datagrams at the UDP port.
#[test]
fn server_shutdown_with_active_ingest_is_bounded() {
    let cfg = ServerConfig {
        ingest: Some(IngestConfig::default().processors(2).queue_capacity(256)),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let udp_addr = handle.ingest_addr().expect("ingest enabled");

    // A sender that keeps firing straight through the shutdown.
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let sender = std::thread::spawn(move || {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        socket.connect(udp_addr).expect("connect sender");
        let bytes = encode_datagram(&[Record { key: "storm".into(), values: vec![1.0, 2.0, 3.0] }]);
        while stop_rx.try_recv().is_err() {
            let _ = socket.send(&bytes);
        }
    });
    std::thread::sleep(Duration::from_millis(100));

    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("server shutdown wedged while ingest was under fire");
    let _ = stop_tx.send(());
    sender.join().expect("sender panicked");
}
