//! Shutdown regression suite for connection-registry failures.
//!
//! `stop()` severs live connections through the registry; a connection
//! whose registration failed (e.g. `try_clone` under fd exhaustion) can
//! never be severed that way. Before the fix, `handle_connection` served
//! such a connection anyway: a pool worker parked in `read()` survived
//! shutdown's socket sweep, and `pool.shutdown()` joined forever. The fix
//! closes the socket and bails the moment registration fails; these tests
//! pin both the prompt close and the bounded shutdown.

use std::io::Read;
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Duration;

use qc_server::{Server, ServerConfig};

fn config(fail_registration: bool) -> ServerConfig {
    ServerConfig {
        pool_threads: 2,
        accept_backlog: 4,
        cool_down_interval: None,
        fail_connection_registration: fail_registration,
        ..ServerConfig::default()
    }
}

/// An unregistered connection is closed immediately instead of being
/// served: the client sees EOF without sending a byte.
#[test]
fn unregistered_connection_is_closed_immediately() {
    let handle = Server::bind("127.0.0.1:0", config(true)).expect("bind");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => {} // EOF: the server closed the unregistered connection
        Ok(n) => panic!("unexpected {n} bytes from a connection that must be closed"),
        Err(e) => panic!("expected EOF, got read error {e} (worker parked in serve loop?)"),
    }
    handle.shutdown();
}

/// Shutdown completes within a bounded time even when a connection was
/// accepted but never made it into the registry. Run under a watchdog:
/// pre-fix this joined forever on the worker parked in `read()`.
#[test]
fn shutdown_is_bounded_with_unregistered_connection() {
    let handle = Server::bind("127.0.0.1:0", config(true)).expect("bind");
    let addr = handle.local_addr();
    // Open (and keep open) a connection the server cannot sever through
    // its registry; never send anything, so a served connection would
    // leave a worker blocked in read().
    let stream = TcpStream::connect(addr).expect("connect");
    // Give the pool a beat to dequeue the connection before shutting down.
    std::thread::sleep(Duration::from_millis(100));

    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("shutdown wedged: unregistered connection blocked the pool join");
    drop(stream);
}

/// Control: with registration working (the default), a silent open
/// connection is severed by shutdown's registry sweep — same bound.
#[test]
fn shutdown_is_bounded_with_registered_idle_connection() {
    let handle = Server::bind("127.0.0.1:0", config(false)).expect("bind");
    let addr = handle.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));

    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx.recv_timeout(Duration::from_secs(60)).expect("shutdown wedged on idle connection");
    // The severed socket reads EOF (or a reset) promptly.
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 1];
    let _ = stream.read(&mut buf);
}
