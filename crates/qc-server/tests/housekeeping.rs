//! The serving layer's housekeeping loop: a hot-tier key that goes idle
//! must be demoted by the periodic [`qc_store::SketchStore::cool_down`]
//! sweep without any client intervention — otherwise every key that ever
//! burst past the promotion threshold would pin its concurrent buffers
//! for the server's lifetime.

use std::time::{Duration, Instant};

use qc_server::{Client, Server, ServerConfig};
use qc_store::StoreConfig;

#[test]
fn idle_hot_keys_demote_via_server_sweep() {
    let cfg = ServerConfig {
        pool_threads: 2,
        store: StoreConfig::default().stripes(4).k(64).b(4).seed(77).promotion_threshold(100),
        cool_down_interval: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let values: Vec<f64> = (0..1_000).map(f64::from).collect();
    client.update_many("bursty", &values).expect("update rpc");
    assert_eq!(
        handle.store().stats().hot_keys,
        1,
        "1000 updates past threshold 100 promote the key"
    );

    // No further traffic: within a few sweep intervals the key must cool
    // down to the sequential tier, with its stream intact.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = handle.store().stats();
        if stats.hot_keys == 0 {
            assert_eq!(stats.cold_keys, 1);
            assert_eq!(stats.stream_len, 1_000, "demotion conserves weight");
            break;
        }
        assert!(Instant::now() < deadline, "housekeeping never demoted the idle key: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The demoted key still serves queries over the full stream.
    let median = client.query("bursty", 0.5).expect("query rpc").expect("non-empty");
    assert!((300.0..700.0).contains(&median), "median {median}");
    handle.shutdown();
}

#[test]
fn housekeeping_can_be_disabled() {
    let cfg = ServerConfig {
        pool_threads: 1,
        store: StoreConfig::default().stripes(2).k(64).b(4).seed(3).promotion_threshold(100),
        cool_down_interval: None,
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.update_many("k", &(0..500).map(f64::from).collect::<Vec<_>>()).expect("update");
    assert_eq!(handle.store().stats().hot_keys, 1);
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(handle.store().stats().hot_keys, 1, "no sweep runs when disabled");
    handle.shutdown();
}
