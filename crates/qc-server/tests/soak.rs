//! Concurrent soak: a real server, N writer clients and M query clients
//! over disjoint *and* colliding keys, all over actual sockets.
//!
//! Assertions, in order of strength:
//!
//! 1. **Weight conservation** — after quiescence, the server's
//!    `stream_len` equals the exact number of values sent, end to end
//!    through the protocol (no element lost in framing, batching, stripe
//!    locking, or summary composition).
//! 2. **Accuracy** — final quantiles per key and over the union match the
//!    exact oracle within the combined ε budget (sketch error + merge
//!    compaction error; see `qc-store`'s merge-equivalence test for the
//!    budget derivation).
//! 3. **Relaxation** — mid-run snapshots respect the
//!    [`quancurrent::Quancurrent::relaxation_bound`] contract: a snapshot
//!    issued after `L` updates were acknowledged represents at least
//!    `L − r` of them, and never more than what had been sent when the
//!    snapshot returned (plus in-flight batches).
//! 4. **Sanity under contention** — every concurrent answer lies within
//!    the value range actually written to the queried key(s).
//!
//! Deterministic: fixed seeds, fixed value sequences, bounded by an
//! in-process watchdog so a livelock fails fast instead of hanging CI.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use qc_common::error::sequential_epsilon;
use qc_common::{OrderedBits, Summary};
use qc_server::{Client, Server, ServerConfig};
use qc_store::StoreConfig;
use qc_workloads::exact::ExactOracle;
use quancurrent::Quancurrent;

const K: usize = 256;
const B: usize = 4;
const WRITERS: usize = 4;
const QUERIERS: usize = 2;
const OWN_PER_WRITER: usize = 20_000;
const SHARED_PER_WRITER: usize = 8_000;
const BATCH: usize = 256;

/// Abort the whole process if the soak wedges (deadlock in the server or
/// store would otherwise hang the test runner until its global timeout).
fn watchdog(done: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(120));
        if !done.load(Ordering::SeqCst) {
            eprintln!("soak watchdog fired: server/store wedged");
            std::process::exit(2);
        }
    });
}

/// Writer `t`'s deterministic value stream for its own key: a permuted
/// walk over a window disjoint from every other writer's.
fn own_values(t: usize) -> Vec<f64> {
    let base = (t * 1_000_000) as u64;
    (0..OWN_PER_WRITER as u64).map(|i| (base + (i * 7919) % 100_000) as f64).collect()
}

/// Writer `t`'s contribution to the shared (colliding) key.
fn shared_values(t: usize) -> Vec<f64> {
    (0..SHARED_PER_WRITER as u64)
        .map(|i| ((i * WRITERS as u64 + t as u64) % 50_000) as f64)
        .collect()
}

#[test]
fn concurrent_soak_matches_oracle_and_relaxation_bound() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog(Arc::clone(&done));

    let cfg = ServerConfig {
        pool_threads: WRITERS + QUERIERS + 2,
        accept_backlog: 16,
        store: StoreConfig::default().stripes(8).k(K).b(B).seed(0x50a4),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = handle.local_addr();

    // Acked-update counters for the shared key, one per writer: a querier
    // reads them before and after a snapshot to sandwich its stream_len.
    let shared_acked: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS).map(|_| AtomicU64::new(0)).collect());
    let writers_done = Arc::new(AtomicBool::new(false));

    // The relaxation bound of the per-key sketch the store builds (all of
    // a key's updates funnel through one updater under the stripe lock,
    // so n_threads = 1 from the sketch's point of view).
    let reference = Quancurrent::<f64>::builder().k(K).b(B).seed(1).build();
    let relaxation = reference.relaxation_bound(1);

    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let shared_acked = Arc::clone(&shared_acked);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("writer connect");
                let own_key = format!("own-{t}");
                let own = own_values(t);
                let shared = shared_values(t);
                // Interleave: batches to the private key, batches to the
                // colliding key, and the occasional single update so both
                // request paths see traffic.
                let mut oi = 0usize;
                let mut si = 0usize;
                while oi < own.len() || si < shared.len() {
                    if oi < own.len() {
                        let end = (oi + BATCH).min(own.len());
                        client.update_many(&own_key, &own[oi..end]).expect("own batch");
                        oi = end;
                    }
                    if si < shared.len() {
                        // One single-value update then a batch.
                        client.update("shared", shared[si]).expect("shared single");
                        shared_acked[t].fetch_add(1, Ordering::SeqCst);
                        si += 1;
                        let end = (si + BATCH).min(shared.len());
                        if si < end {
                            client.update_many("shared", &shared[si..end]).expect("shared batch");
                            shared_acked[t].fetch_add((end - si) as u64, Ordering::SeqCst);
                            si = end;
                        }
                    }
                }
            });
        }

        for q in 0..QUERIERS {
            let shared_acked = Arc::clone(&shared_acked);
            let writers_done = Arc::clone(&writers_done);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("querier connect");
                let all_keys: Vec<String> =
                    (0..WRITERS).map(|t| format!("own-{t}")).chain(["shared".into()]).collect();
                let mut iterations = 0u64;
                while !writers_done.load(Ordering::SeqCst) {
                    iterations += 1;
                    // Relaxation sandwich on the colliding key.
                    let acked_before: u64 =
                        shared_acked.iter().map(|a| a.load(Ordering::SeqCst)).sum();
                    if let Some(summary) = client.snapshot_summary("shared").expect("snapshot rpc")
                    {
                        let sent_ceiling: u64 = shared_acked
                            .iter()
                            .map(|a| a.load(Ordering::SeqCst))
                            .sum::<u64>()
                            // Applied-but-not-yet-acknowledged batches.
                            + (WRITERS * (BATCH + 1)) as u64;
                        let len = summary.stream_len();
                        assert!(
                            len + relaxation >= acked_before,
                            "snapshot missed more than r={relaxation} updates: \
                             len={len}, acked_before={acked_before}"
                        );
                        assert!(
                            len <= sent_ceiling,
                            "snapshot saw elements never sent: len={len}, ceiling={sent_ceiling}"
                        );
                    }
                    // Concurrent answers stay inside the written value range.
                    if let Some(v) = client.query("shared", 0.5).expect("query rpc") {
                        assert!((0.0..50_000.0).contains(&v), "shared median {v} out of range");
                    }
                    if q == 0 {
                        if let Some(v) = client.merged_query(&all_keys, 0.9).expect("merged rpc") {
                            assert!(
                                (0.0..=(WRITERS * 1_000_000) as f64).contains(&v),
                                "union p90 {v} out of range"
                            );
                        }
                    } else if let Some(r) = client.rank("shared", 25_000.0).expect("rank rpc") {
                        assert!((0.0..=1.0).contains(&r), "rank {r} not normalized");
                    }
                }
                assert!(iterations > 0);
            });
        }

        // Mark writers done only after every writer thread joins: scope
        // spawns return handles; collect and join the writers first.
        // (The scope API joins everything at block end; we flip the flag
        // from a dedicated monitor thread instead.)
        let shared_acked = Arc::clone(&shared_acked);
        let writers_done_setter = Arc::clone(&writers_done);
        s.spawn(move || {
            let total_shared = (WRITERS * SHARED_PER_WRITER) as u64;
            while shared_acked.iter().map(|a| a.load(Ordering::SeqCst)).sum::<u64>() < total_shared
            {
                std::thread::yield_now();
            }
            // Shared stream fully acknowledged; own-key batches finish
            // within the same writer loops. A short grace then release.
            std::thread::sleep(std::time::Duration::from_millis(50));
            writers_done_setter.store(true, Ordering::SeqCst);
        });
    });

    // ---- Quiescent verification over a fresh connection ----
    let mut client = Client::connect(addr).expect("verify connect");

    let total: u64 = (WRITERS * (OWN_PER_WRITER + SHARED_PER_WRITER)) as u64;
    let stats = client.stats().expect("stats rpc");
    assert_eq!(stats.updates, total, "every protocol update must be counted");
    assert_eq!(stats.stream_len, total, "total weight must be conserved end to end");
    assert_eq!(stats.keys, WRITERS + 1);

    let mut keys = client.keys().expect("keys rpc");
    keys.sort();
    let mut expected: Vec<String> = (0..WRITERS).map(|t| format!("own-{t}")).collect();
    expected.push("shared".into());
    expected.sort();
    assert_eq!(keys, expected);

    // Per-key accuracy: sketch ε + one merge compaction + slack (the
    // budget the in-process store tests use for the same composition).
    let eps_budget = 3.0 * sequential_epsilon(K) + 0.005;
    let phis = [0.05, 0.25, 0.5, 0.75, 0.95, 0.99];

    for t in 0..WRITERS {
        let key = format!("own-{t}");
        let oracle = ExactOracle::from_values(&own_values(t));
        let summary = client.snapshot_summary(&key).expect("snapshot rpc").expect("key present");
        assert_eq!(summary.stream_len(), OWN_PER_WRITER as u64, "weight conserved for {key}");
        for phi in phis {
            let est = client.query(&key, phi).expect("query rpc").expect("non-empty");
            let err = oracle.rank_error(phi, est.to_ordered_bits());
            assert!(err <= eps_budget, "{key} φ={phi}: rank error {err:.5} > {eps_budget:.5}");
        }
    }

    let shared_all: Vec<f64> = (0..WRITERS).flat_map(shared_values).collect();
    let shared_oracle = ExactOracle::from_values(&shared_all);
    for phi in phis {
        let est = client.query("shared", phi).expect("query rpc").expect("non-empty");
        let err = shared_oracle.rank_error(phi, est.to_ordered_bits());
        assert!(err <= eps_budget, "shared φ={phi}: rank error {err:.5} > {eps_budget:.5}");
    }

    // Union accuracy: merged_query composes one more merge, so allow one
    // more ε-class term.
    let mut union_all = shared_all;
    for t in 0..WRITERS {
        union_all.extend(own_values(t));
    }
    let union_oracle = ExactOracle::from_values(&union_all);
    let union_budget = 4.0 * sequential_epsilon(K) + 0.005;
    for phi in phis {
        let est = client.merged_query(&keys, phi).expect("merged rpc").expect("non-empty");
        let err = union_oracle.rank_error(phi, est.to_ordered_bits());
        assert!(err <= union_budget, "union φ={phi}: rank error {err:.5} > {union_budget:.5}");
    }

    handle.shutdown();
    done.store(true, Ordering::SeqCst);
}

#[test]
fn snapshot_ingest_between_two_live_servers() {
    // A second, smaller soak: the distributed path. Server A ingests a
    // stream; its snapshot frames travel over A's socket, through the
    // test, into server B's socket; B's merged view must match A's.
    let done = Arc::new(AtomicBool::new(false));
    watchdog(Arc::clone(&done));

    let mk = |seed: u64| ServerConfig {
        pool_threads: 2,
        store: StoreConfig::default().stripes(4).k(K).b(B).seed(seed),
        ..ServerConfig::default()
    };
    let a = Server::bind("127.0.0.1:0", mk(1)).expect("bind A");
    let b = Server::bind("127.0.0.1:0", mk(2)).expect("bind B");

    let n = 60_000u64;
    let values: Vec<f64> = (0..n).map(|i| ((i * 31) % n) as f64).collect();
    let mut ca = Client::connect(a.local_addr()).expect("connect A");
    for chunk in values.chunks(512) {
        ca.update_many("metric", chunk).expect("ingest into A");
    }

    let frame = ca.snapshot_bytes("metric").expect("snapshot rpc").expect("key present");
    let mut cb = Client::connect(b.local_addr()).expect("connect B");
    let ingested = cb.ingest_bytes("metric", &frame).expect("ingest into B");
    assert_eq!(ingested, n, "frame carried the whole stream");

    let oracle = ExactOracle::from_values(&values);
    let budget = 3.0 * sequential_epsilon(K) + 0.005;
    for phi in [0.1, 0.5, 0.9] {
        let est = cb.query("metric", phi).expect("query B").expect("non-empty");
        let err = oracle.rank_error(phi, est.to_ordered_bits());
        assert!(err <= budget, "replica φ={phi}: rank error {err:.5} > {budget:.5}");
    }

    // A malformed frame must be rejected remotely with a typed error and
    // leave B's stats untouched except the error counter.
    let mut bad = frame.clone();
    bad[10] ^= 0xff;
    match cb.ingest_bytes("metric", &bad) {
        Err(qc_server::ClientError::Remote { code: qc_server::ErrorCode::Wire, .. }) => {}
        other => panic!("corrupt frame must yield a remote Wire error, got {other:?}"),
    }
    let stats = cb.stats().expect("stats B");
    assert_eq!(stats.ingest_errors, 1);
    assert_eq!(stats.stream_len, n);

    a.shutdown();
    b.shutdown();
    done.store(true, Ordering::SeqCst);
}
