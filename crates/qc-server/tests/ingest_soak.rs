//! End-to-end UDP ingest soak: a real server with the ingest daemon
//! enabled, writer threads storming datagrams at the UDP front door while
//! TCP queriers read concurrently, then exact reconciliation.
//!
//! Assertions, in order of strength:
//!
//! 1. **Exact conservation** — after quiescence every datagram the
//!    daemon received is classified exactly once:
//!    `received == applied + dropped_queue + dropped_decode +
//!    dropped_oversized`, and in the paced phase `received` equals what
//!    the writers sent (nothing lost in the kernel at these rates), so
//!    the typed drop counters match the deliberately-malformed and
//!    deliberately-oversized datagrams one for one.
//! 2. **Weight identity** — `ingest_applied_values` equals the store's
//!    `store_updates` gain: a datagram is counted applied only when every
//!    one of its values landed in a sketch.
//! 3. **Overload honesty** — with a tiny queue and a hair-trigger
//!    breaker, a storm opens the circuit (`ingest_circuit_opens ≥ 1`,
//!    sheds counted), and a paced trickle afterwards closes it again
//!    (gauge back to 0, trickle datagrams applied). Conservation holds
//!    through the overload exactly.
//!
//! Bounded by a watchdog so a wedged daemon fails fast instead of
//! hanging CI.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qc_ingest::datagram::{encode_datagram, Record};
use qc_ingest::BreakerConfig;
use qc_server::{Client, IngestConfig, MetricsSnapshot, Server, ServerConfig};

const WRITERS: usize = 4;
const DATAGRAMS_PER_WRITER: usize = 250;
const RECORDS_PER_DATAGRAM: usize = 4;
const VALUES_PER_RECORD: usize = 16;
const CORRUPT: usize = 50;
const OVERSIZED: usize = 20;
const SIZE_CAP: usize = 2048;

/// Abort the whole process if the soak wedges.
fn watchdog(done: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(120));
        if !done.load(Ordering::SeqCst) {
            eprintln!("ingest soak watchdog fired: daemon/server wedged");
            std::process::exit(2);
        }
    });
}

fn udp_sender(target: std::net::SocketAddr) -> UdpSocket {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
    socket.connect(target).expect("connect sender");
    socket
}

/// Writer `w`'s deterministic datagram `i`: distinct values so the
/// stream is non-trivial, keys shared across writers so stripes collide.
fn datagram(w: usize, i: usize) -> Vec<u8> {
    let records: Vec<Record> = (0..RECORDS_PER_DATAGRAM)
        .map(|r| Record {
            key: format!("soak-{}", (w * RECORDS_PER_DATAGRAM + r) % 8),
            values: (0..VALUES_PER_RECORD)
                .map(|v| ((w * 1_000_000 + i * 100 + r * 10 + v) % 100_000) as f64)
                .collect(),
        })
        .collect();
    encode_datagram(&records)
}

fn counters(snap: &MetricsSnapshot) -> [u64; 9] {
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    [
        c("ingest_datagrams"),
        c("ingest_applied_datagrams"),
        c("ingest_applied_records"),
        c("ingest_applied_values"),
        c("ingest_dropped_queue"),
        c("ingest_shed"),
        c("ingest_dropped_decode"),
        c("ingest_dropped_oversized"),
        c("ingest_circuit_opens"),
    ]
}

fn conserved(c: &[u64; 9]) -> bool {
    c[0] == c[1] + c[4] + c[6] + c[7]
}

/// Poll until the daemon is quiescent: queue empty and every received
/// datagram classified. Returns the settled snapshot.
fn settle(client: &mut Client) -> MetricsSnapshot {
    let mut snap = client.metrics().expect("metrics");
    for _ in 0..250 {
        let c = counters(&snap);
        if snap.gauge("ingest_queue_depth").unwrap_or(0) == 0 && conserved(&c) {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
        snap = client.metrics().expect("metrics");
    }
    snap
}

/// Paced storm: 4 writers, corrupt and oversized datagrams mixed in,
/// queriers reading throughout — then sent-side-exact reconciliation.
#[test]
fn paced_storm_reconciles_exactly() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog(done.clone());

    let cfg = ServerConfig {
        ingest: Some(
            IngestConfig::default().processors(2).queue_capacity(1024).max_datagram_len(SIZE_CAP),
        ),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let udp_addr = handle.ingest_addr().expect("ingest enabled");
    let tcp_addr = handle.local_addr();

    let baseline = {
        let mut client = Client::connect(tcp_addr).expect("connect");
        client.metrics().expect("metrics").counter("store_updates").unwrap_or(0)
    };

    let stop_queriers = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Queriers cycle reads over the soak keys for the whole storm.
        let mut querier_handles = Vec::new();
        for q in 0..2 {
            let stop = stop_queriers.clone();
            querier_handles.push(s.spawn(move || {
                let mut client = Client::connect(tcp_addr).expect("querier connect");
                let mut i = q;
                let mut queries = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let key = format!("soak-{}", i % 8);
                    client.query(&key, 0.5).expect("concurrent query must not fail");
                    i += 1;
                    queries += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                queries
            }));
        }

        // Writers: paced so loopback never sheds in the kernel — the
        // sent-side totals then reconcile exactly, not just daemon-side.
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            writer_handles.push(s.spawn(move || {
                let socket = udp_sender(udp_addr);
                for i in 0..DATAGRAMS_PER_WRITER {
                    socket.send(&datagram(w, i)).expect("udp send");
                    std::thread::sleep(Duration::from_micros(500));
                }
            }));
        }

        // One hostile sender: corrupt CRCs and oversized datagrams,
        // paced the same way.
        let hostile = s.spawn(move || {
            let socket = udp_sender(udp_addr);
            for i in 0..CORRUPT {
                let mut bytes = datagram(0, i);
                let len = bytes.len();
                bytes[len / 2] ^= 0xFF; // CRC now fails
                socket.send(&bytes).expect("udp send corrupt");
                std::thread::sleep(Duration::from_micros(500));
            }
            // Larger than the daemon's cap but fine for loopback UDP.
            let big = vec![0u8; SIZE_CAP + 512];
            for _ in 0..OVERSIZED {
                socket.send(&big).expect("udp send oversized");
                std::thread::sleep(Duration::from_micros(500));
            }
        });

        for h in writer_handles {
            h.join().expect("writer panicked");
        }
        hostile.join().expect("hostile sender panicked");
        stop_queriers.store(true, Ordering::SeqCst);
        for h in querier_handles {
            let queries = h.join().expect("querier panicked");
            assert!(queries > 0, "querier made no progress during the storm");
        }
    });

    let mut client = Client::connect(tcp_addr).expect("connect");
    let snap = settle(&mut client);
    let c = counters(&snap);
    let sent = (WRITERS * DATAGRAMS_PER_WRITER + CORRUPT + OVERSIZED) as u64;

    // 1. Nothing lost at these paced rates: the daemon saw every
    //    datagram, and classified each exactly once.
    assert_eq!(c[0], sent, "daemon received != sent (kernel dropped under pacing?)");
    assert!(conserved(&c), "conservation violated: {c:?}");
    assert_eq!(c[1], (WRITERS * DATAGRAMS_PER_WRITER) as u64, "applied datagrams");
    assert_eq!(c[6], CORRUPT as u64, "decode drops must match corrupt datagrams");
    assert_eq!(c[7], OVERSIZED as u64, "oversize drops must match oversized datagrams");
    assert_eq!(c[4], 0, "paced storm must not overflow a 1024-deep queue");
    assert_eq!(c[8], 0, "circuit must stay closed under pacing");

    // 2. Weight identity: applied values == store update gain.
    let expected_values =
        (WRITERS * DATAGRAMS_PER_WRITER * RECORDS_PER_DATAGRAM * VALUES_PER_RECORD) as u64;
    assert_eq!(c[3], expected_values, "applied values");
    assert_eq!(
        c[2],
        (WRITERS * DATAGRAMS_PER_WRITER * RECORDS_PER_DATAGRAM) as u64,
        "applied records"
    );
    let store_updates = snap.counter("store_updates").unwrap_or(0) - baseline;
    assert_eq!(store_updates, c[3], "store update gain != applied values");

    // 3. The data is actually queryable: every soak key answers.
    for k in 0..8 {
        let q = client.query(&format!("soak-{k}"), 0.5).expect("query");
        assert!(q.is_some(), "soak-{k} lost its data");
    }

    handle.shutdown();
    done.store(true, Ordering::SeqCst);
}

/// Deliberate overload: a 2-deep queue and a hair-trigger breaker under
/// an unpaced blast. The circuit must open (sheds counted), close again
/// under a paced trickle, and the accounting must stay exact throughout.
#[test]
fn overload_opens_circuit_and_recovers() {
    let done = Arc::new(AtomicBool::new(false));
    watchdog(done.clone());

    let cfg = ServerConfig {
        ingest: Some(IngestConfig::default().processors(1).queue_capacity(2).breaker(
            BreakerConfig {
                open_after: 8,
                initial_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(200),
            },
        )),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let udp_addr = handle.ingest_addr().expect("ingest enabled");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Phase 1: blast. Heavy datagrams, no pacing, several senders — the
    // 2-deep queue must saturate and trip the breaker.
    std::thread::scope(|s| {
        for w in 0..4 {
            s.spawn(move || {
                let socket = udp_sender(udp_addr);
                let records: Vec<Record> = (0..4)
                    .map(|r| Record {
                        key: format!("ovl-{r}"),
                        values: (0..40).map(|v| (w * 1000 + v) as f64).collect(),
                    })
                    .collect();
                let bytes = encode_datagram(&records);
                for _ in 0..2_000 {
                    let _ = socket.send(&bytes);
                }
            });
        }
    });

    let snap = settle(&mut client);
    let c = counters(&snap);
    assert!(conserved(&c), "conservation violated during overload: {c:?}");
    assert!(c[4] > 0, "blast against a 2-deep queue must drop: {c:?}");
    assert!(c[8] >= 1, "breaker never opened under blast: {c:?}");
    assert!(c[5] > 0, "open circuit must shed (and count sheds): {c:?}");
    assert!(c[5] <= c[4], "sheds are a subset of queue drops: {c:?}");

    // Phase 2: recovery. Wait out the largest backoff window, then offer
    // a gentle trickle — the half-open probe must succeed, the circuit
    // close, and the trickle apply.
    std::thread::sleep(Duration::from_millis(300));
    let before = counters(&settle(&mut client));
    let socket = udp_sender(udp_addr);
    let trickle =
        encode_datagram(&[Record { key: "ovl-recover".into(), values: vec![1.0, 2.0, 3.0] }]);
    for _ in 0..20 {
        socket.send(&trickle).expect("trickle send");
        std::thread::sleep(Duration::from_millis(20));
    }
    let snap = settle(&mut client);
    let after = counters(&snap);
    assert!(conserved(&after), "conservation violated after recovery: {after:?}");
    assert_eq!(
        snap.gauge("ingest_circuit_open").unwrap_or(i64::MAX),
        0,
        "circuit still open after trickle"
    );
    assert!(
        after[1] > before[1],
        "no trickle datagram applied: before {before:?}, after {after:?}"
    );
    let recovered = client.query("ovl-recover", 0.5).expect("query");
    assert!(recovered.is_some(), "recovered key lost its trickle data");

    handle.shutdown();
    done.store(true, Ordering::SeqCst);
}
