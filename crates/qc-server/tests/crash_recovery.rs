//! Crash injection: SIGKILL a loaded child-process server mid-write-storm
//! and hold recovery to the durability guarantee — **exact** weight
//! conservation for every key up to the last fsync'd frame, with any torn
//! tail reported as a typed error, never a panic.
//!
//! The proof has two independent sides. The parent computes each key's
//! durable weight straight from the on-disk files with the public
//! `persist` parsers (checkpoint entries + log records above each key's
//! LSN floor), then checks that (a) an in-process `SketchStore::recover`
//! agrees exactly, (b) every *acknowledged* batch is included — an ack
//! means the frame was fsync'd before the response was sent — with at
//! most the one in-flight batch per writer beyond that, and (c) a
//! restarted child server serves the same totals end-to-end.

use std::collections::HashMap;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use qc_common::Summary;
use qc_server::Client;
use qc_store::persist::{parse_checkpoint, parse_segment, RecordOp};
use qc_store::{SketchStore, StoreConfig};
use qc_workloads::tempdir::TempDir;

const WRITERS: usize = 4;
const BATCH: usize = 32;

/// Spawn the crash-target server on `data_dir` and wait for its address.
fn spawn_server(
    data_dir: &Path,
    scratch: &TempDir,
    tag: &str,
    cool_down_ms: Option<u64>,
) -> (Child, std::net::SocketAddr) {
    let ready = scratch.path().join(format!("addr-{tag}"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crash_server"));
    cmd.arg(data_dir).arg(&ready).stdout(Stdio::null()).stderr(Stdio::inherit());
    if let Some(ms) = cool_down_ms {
        cmd.arg(ms.to_string());
    }
    let child = cmd.spawn().expect("spawn crash_server");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&ready) {
            break text.trim().parse().expect("ready file holds an address");
        }
        assert!(Instant::now() < deadline, "crash_server never became ready");
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

/// Per-key durable weight, computed from the files alone: checkpoint
/// summaries plus every log record above the checkpoint's LSN floor for
/// its key — the same arithmetic recovery performs, done independently
/// with the public parsers.
fn durable_weights(dir: &Path) -> HashMap<String, u64> {
    let mut segments = Vec::new();
    let mut checkpoints = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        if name.starts_with("wal-") && name.ends_with(".log") {
            segments.push(name);
        } else if name.starts_with("ckpt-") && name.ends_with(".ck") {
            checkpoints.push(name);
        }
    }
    segments.sort();
    checkpoints.sort();

    let mut weights: HashMap<String, u64> = HashMap::new();
    let mut floors: HashMap<String, u64> = HashMap::new();
    let ckpt_stem = if let Some(newest) = checkpoints.last() {
        let entries = parse_checkpoint(&std::fs::read(dir.join(newest)).unwrap())
            .expect("surviving checkpoint must be valid (pruning runs only after fsync)");
        for entry in entries {
            let summary = qc_store::decode_summary(&entry.summary).unwrap();
            weights.insert(entry.key.clone(), summary.stream_len());
            floors.insert(entry.key, entry.lsn);
        }
        Some(newest.trim_end_matches(".ck").trim_start_matches("ckpt-").to_string())
    } else {
        None
    };

    let mut saw_error = false;
    for name in &segments {
        // Segments the checkpoint covers were either pruned or are
        // neutralized below by the per-key LSN floor; skip the ones whose
        // sequence number is at or below the checkpoint's for speed only.
        if let Some(stem) = &ckpt_stem {
            let seg_stem = name.trim_end_matches(".log").trim_start_matches("wal-");
            if seg_stem <= stem.as_str() {
                continue;
            }
        }
        assert!(!saw_error, "records must not continue past a damaged segment");
        let scan = parse_segment(&std::fs::read(dir.join(name)).unwrap());
        for parsed in &scan.records {
            let floor = floors.get(parsed.record.op.key()).copied().unwrap_or(0);
            if parsed.record.lsn <= floor {
                continue;
            }
            match &parsed.record.op {
                RecordOp::UpdateMany { key, value_bits } => {
                    *weights.entry(key.clone()).or_insert(0) += value_bits.len() as u64;
                }
                RecordOp::Ingest { key, frame } => {
                    let summary = qc_store::decode_summary(frame).unwrap();
                    *weights.entry(key.clone()).or_insert(0) += summary.stream_len();
                }
                RecordOp::Remove { key } => {
                    weights.remove(key);
                }
            }
        }
        saw_error = scan.error.is_some();
    }
    weights
}

/// The storm: `WRITERS` clients hammer distinct keys with fixed-size
/// batches until the server dies under them, each counting its own acks.
/// Returns per-writer acknowledged batch counts.
fn write_storm_until_killed(addr: std::net::SocketAddr, child: &mut Child) -> Vec<u64> {
    let acked: Vec<AtomicU64> = (0..WRITERS).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for (t, acks) in acked.iter().enumerate() {
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else { return };
                let key = format!("storm-{t}");
                for round in 0.. {
                    let base = (round * BATCH) as f64;
                    let batch: Vec<f64> = (0..BATCH).map(|i| base + i as f64).collect();
                    // The first failed call is the crash; stop. Everything
                    // acknowledged before it must survive recovery.
                    if client.update_many(&key, &batch).is_err() {
                        return;
                    }
                    acks.fetch_add(1, Relaxed);
                }
            });
        }
        // Let the storm build real durable state, then pull the plug:
        // SIGKILL, no flush, no destructors.
        let deadline = Instant::now() + Duration::from_secs(30);
        while acked.iter().map(|a| a.load(Relaxed)).sum::<u64>() < 40 {
            assert!(Instant::now() < deadline, "storm never made progress");
            std::thread::sleep(Duration::from_millis(5));
        }
        child.kill().expect("SIGKILL crash_server");
        child.wait().expect("reap crash_server");
    });
    acked.into_iter().map(|a| a.into_inner()).collect()
}

fn recover_cfg(dir: &Path) -> StoreConfig {
    StoreConfig::default().data_dir(dir)
}

/// Run one full kill-9 cycle against a server with the given housekeeping
/// interval, returning the per-writer acks and the independently computed
/// durable weights.
fn crash_cycle(
    data_dir: &Path,
    scratch: &TempDir,
    cool_down_ms: Option<u64>,
) -> (Vec<u64>, HashMap<String, u64>) {
    let tag = cool_down_ms.map_or_else(|| "plain".to_string(), |ms| format!("ckpt{ms}"));
    let (mut child, addr) = spawn_server(data_dir, scratch, &tag, cool_down_ms);
    let acks = write_storm_until_killed(addr, &mut child);
    let durable = durable_weights(data_dir);
    (acks, durable)
}

/// Shared assertions: recovery agrees with the files exactly, and every
/// ack is covered with at most one in-flight batch of slack per writer.
fn assert_conservation(acks: &[u64], durable: &HashMap<String, u64>, data_dir: &Path) {
    for (t, &acked) in acks.iter().enumerate() {
        let key = format!("storm-{t}");
        let weight = durable.get(&key).copied().unwrap_or(0);
        assert_eq!(weight % BATCH as u64, 0, "{key}: only whole batches are ever durable");
        assert!(
            weight >= acked * BATCH as u64,
            "{key}: acked {acked} batches but only {weight} elements durable — \
             an acknowledged write was lost"
        );
        assert!(
            weight <= (acked + 1) * BATCH as u64,
            "{key}: {weight} elements durable for {acked} acked batches — \
             more than one in-flight batch appeared from nowhere"
        );
    }

    // The recovered store must match the independent file arithmetic
    // exactly, key by key — and never panic on whatever the kill left.
    let (store, report) = SketchStore::<f64>::recover(recover_cfg(data_dir)).unwrap();
    if let Some(corruption) = &report.corruption {
        // Typed, and torn tails can only sit at the very end of the log.
        assert_eq!(corruption.segments_dropped, 0, "a crash tears only the last segment");
    }
    let mut keys = store.keys();
    keys.sort();
    let mut expected: Vec<String> = durable.keys().cloned().collect();
    expected.sort();
    assert_eq!(keys, expected, "recovered key set matches the durable files");
    for (key, &weight) in durable {
        let summary = store.summary_of(key).expect("durable key is resident");
        assert_eq!(
            summary.stream_len(),
            weight,
            "{key}: recovery must conserve weight exactly up to the last fsync'd frame"
        );
    }
    drop(store);
}

#[test]
fn kill9_mid_storm_conserves_every_fsynced_frame() {
    let data = TempDir::new("crash-kill9");
    let scratch = TempDir::new("crash-kill9-scratch");
    let (acks, durable) = crash_cycle(data.path(), &scratch, None);
    assert!(acks.iter().sum::<u64>() >= 40, "the storm must have made real progress");
    assert_conservation(&acks, &durable, data.path());

    // Restart a server on the crashed directory: recovery end-to-end.
    let (mut child, addr) = spawn_server(data.path(), &scratch, "restarted", None);
    let mut client = Client::connect(addr).expect("connect to restarted server");
    let total: u64 = durable.values().sum();
    let stats = client.stats().expect("stats");
    assert_eq!(stats.stream_len, total, "restarted server serves the recovered weight");
    // And it keeps accepting durable writes.
    client.update_many("post-crash", &[1.0, 2.0, 3.0]).unwrap();
    child.kill().unwrap();
    child.wait().unwrap();

    let after = durable_weights(data.path());
    assert_eq!(after.get("post-crash").copied(), Some(3), "post-restart writes are logged");
}

#[test]
fn kill9_with_aggressive_checkpointing_still_conserves() {
    let data = TempDir::new("crash-ckpt");
    let scratch = TempDir::new("crash-ckpt-scratch");
    // Housekeeping every 20ms: the storm races live checkpoint compaction,
    // so the kill lands around rotations, prunes, and renames too.
    let (acks, durable) = crash_cycle(data.path(), &scratch, Some(20));
    assert_conservation(&acks, &durable, data.path());

    // A second recovery of the repaired directory is clean and identical.
    let (store, report) = SketchStore::<f64>::recover(recover_cfg(data.path())).unwrap();
    assert!(report.corruption.is_none(), "first recovery repaired the tail: {report:?}");
    for (key, &weight) in &durable {
        assert_eq!(store.summary_of(key).unwrap().stream_len(), weight);
    }
}
