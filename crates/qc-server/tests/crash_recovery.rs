//! Crash injection: SIGKILL a loaded child-process server mid-write-storm
//! and hold recovery to the durability guarantee — **exact** weight
//! conservation for every key up to the last fsync'd frame, with any torn
//! tail reported as a typed error, never a panic.
//!
//! The proof has two independent sides. The parent computes each key's
//! durable weight straight from the on-disk files with the public
//! `persist` parsers (checkpoint entries + log records above each key's
//! LSN floor), then checks that (a) an in-process `SketchStore::recover`
//! agrees exactly, (b) every *acknowledged* batch is included — an ack
//! means the frame was fsync'd before the response was sent — with at
//! most the one in-flight batch per writer beyond that, and (c) a
//! restarted child server serves the same totals end-to-end.

use std::collections::HashMap;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use qc_common::Summary;
use qc_server::Client;
use qc_store::persist::{parse_checkpoint, parse_segment, RecordOp};
use qc_store::{encode_summary, SketchStore, StoreConfig, WindowConfig};
use qc_workloads::tempdir::TempDir;

const WRITERS: usize = 4;
const BATCH: usize = 32;

/// Spawn the crash-target server on `data_dir` and wait for its address.
fn spawn_server(
    data_dir: &Path,
    scratch: &TempDir,
    tag: &str,
    cool_down_ms: Option<u64>,
    windowed: bool,
    group: bool,
) -> (Child, std::net::SocketAddr) {
    let ready = scratch.path().join(format!("addr-{tag}"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crash_server"));
    cmd.arg(data_dir).arg(&ready).stdout(Stdio::null()).stderr(Stdio::inherit());
    if let Some(ms) = cool_down_ms {
        cmd.arg(ms.to_string());
    }
    if windowed {
        cmd.arg("windowed");
    }
    if group {
        cmd.arg("group");
    }
    let child = cmd.spawn().expect("spawn crash_server");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&ready) {
            break text.trim().parse().expect("ready file holds an address");
        }
        assert!(Instant::now() < deadline, "crash_server never became ready");
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

/// Per-key durable weight, computed from the files alone: checkpoint
/// summaries plus every log record above the checkpoint's LSN floor for
/// its key — the same arithmetic recovery performs, done independently
/// with the public parsers.
fn durable_weights(dir: &Path) -> HashMap<String, u64> {
    let mut segments = Vec::new();
    let mut checkpoints = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        if name.starts_with("wal-") && name.ends_with(".log") {
            segments.push(name);
        } else if name.starts_with("ckpt-") && name.ends_with(".ck") {
            checkpoints.push(name);
        }
    }
    segments.sort();
    checkpoints.sort();

    let mut weights: HashMap<String, u64> = HashMap::new();
    let mut floors: HashMap<String, u64> = HashMap::new();
    let ckpt_stem = if let Some(newest) = checkpoints.last() {
        let entries = parse_checkpoint(&std::fs::read(dir.join(newest)).unwrap())
            .expect("surviving checkpoint must be valid (pruning runs only after fsync)");
        for entry in entries {
            // A key's checkpointed weight is its active summary plus
            // every sealed window frame (zero of them when unwindowed).
            let mut weight = qc_store::decode_summary(&entry.summary).unwrap().stream_len();
            for (_, _, frame) in &entry.sealed {
                weight += qc_store::decode_summary(frame).unwrap().stream_len();
            }
            weights.insert(entry.key.clone(), weight);
            floors.insert(entry.key, entry.lsn);
        }
        Some(newest.trim_end_matches(".ck").trim_start_matches("ckpt-").to_string())
    } else {
        None
    };

    let mut saw_error = false;
    for name in &segments {
        // Segments the checkpoint covers were either pruned or are
        // neutralized below by the per-key LSN floor; skip the ones whose
        // sequence number is at or below the checkpoint's for speed only.
        if let Some(stem) = &ckpt_stem {
            let seg_stem = name.trim_end_matches(".log").trim_start_matches("wal-");
            if seg_stem <= stem.as_str() {
                continue;
            }
        }
        assert!(!saw_error, "records must not continue past a damaged segment");
        let scan = parse_segment(&std::fs::read(dir.join(name)).unwrap());
        for parsed in &scan.records {
            let floor = floors.get(parsed.record.op.key()).copied().unwrap_or(0);
            if parsed.record.lsn <= floor {
                continue;
            }
            match &parsed.record.op {
                RecordOp::UpdateMany { key, value_bits, window: _ } => {
                    *weights.entry(key.clone()).or_insert(0) += value_bits.len() as u64;
                }
                RecordOp::Ingest { key, frame } => {
                    let summary = qc_store::decode_summary(frame).unwrap();
                    *weights.entry(key.clone()).or_insert(0) += summary.stream_len();
                }
                RecordOp::Remove { key } => {
                    weights.remove(key);
                }
            }
        }
        saw_error = scan.error.is_some();
    }
    weights
}

/// The storm: `WRITERS` clients hammer distinct keys with fixed-size
/// batches until the server dies under them, each counting its own acks.
/// Returns per-writer acknowledged batch counts.
fn write_storm_until_killed(addr: std::net::SocketAddr, child: &mut Child) -> Vec<u64> {
    let acked: Vec<AtomicU64> = (0..WRITERS).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for (t, acks) in acked.iter().enumerate() {
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else { return };
                let key = format!("storm-{t}");
                for round in 0.. {
                    let base = (round * BATCH) as f64;
                    let batch: Vec<f64> = (0..BATCH).map(|i| base + i as f64).collect();
                    // The first failed call is the crash; stop. Everything
                    // acknowledged before it must survive recovery.
                    if client.update_many(&key, &batch).is_err() {
                        return;
                    }
                    acks.fetch_add(1, Relaxed);
                }
            });
        }
        // Let the storm build real durable state, then pull the plug:
        // SIGKILL, no flush, no destructors.
        let deadline = Instant::now() + Duration::from_secs(30);
        while acked.iter().map(|a| a.load(Relaxed)).sum::<u64>() < 40 {
            assert!(Instant::now() < deadline, "storm never made progress");
            std::thread::sleep(Duration::from_millis(5));
        }
        child.kill().expect("SIGKILL crash_server");
        child.wait().expect("reap crash_server");
    });
    acked.into_iter().map(|a| a.into_inner()).collect()
}

fn recover_cfg(dir: &Path) -> StoreConfig {
    StoreConfig::default().data_dir(dir)
}

/// Run one full kill-9 cycle against a server with the given housekeeping
/// interval, returning the per-writer acks and the independently computed
/// durable weights.
fn crash_cycle(
    data_dir: &Path,
    scratch: &TempDir,
    cool_down_ms: Option<u64>,
) -> (Vec<u64>, HashMap<String, u64>) {
    let tag = cool_down_ms.map_or_else(|| "plain".to_string(), |ms| format!("ckpt{ms}"));
    let (mut child, addr) = spawn_server(data_dir, scratch, &tag, cool_down_ms, false, false);
    let acks = write_storm_until_killed(addr, &mut child);
    let durable = durable_weights(data_dir);
    (acks, durable)
}

/// Shared assertions: recovery agrees with the files exactly, and every
/// ack is covered with at most one in-flight batch of slack per writer.
fn assert_conservation(acks: &[u64], durable: &HashMap<String, u64>, data_dir: &Path) {
    for (t, &acked) in acks.iter().enumerate() {
        let key = format!("storm-{t}");
        let weight = durable.get(&key).copied().unwrap_or(0);
        assert_eq!(weight % BATCH as u64, 0, "{key}: only whole batches are ever durable");
        assert!(
            weight >= acked * BATCH as u64,
            "{key}: acked {acked} batches but only {weight} elements durable — \
             an acknowledged write was lost"
        );
        assert!(
            weight <= (acked + 1) * BATCH as u64,
            "{key}: {weight} elements durable for {acked} acked batches — \
             more than one in-flight batch appeared from nowhere"
        );
    }

    // The recovered store must match the independent file arithmetic
    // exactly, key by key — and never panic on whatever the kill left.
    let (store, report) = SketchStore::<f64>::recover(recover_cfg(data_dir)).unwrap();
    if let Some(corruption) = &report.corruption {
        // Typed, and torn tails can only sit at the very end of the log.
        assert_eq!(corruption.segments_dropped, 0, "a crash tears only the last segment");
    }
    let mut keys = store.keys();
    keys.sort();
    let mut expected: Vec<String> = durable.keys().cloned().collect();
    expected.sort();
    assert_eq!(keys, expected, "recovered key set matches the durable files");
    for (key, &weight) in durable {
        let summary = store.summary_of(key).expect("durable key is resident");
        assert_eq!(
            summary.stream_len(),
            weight,
            "{key}: recovery must conserve weight exactly up to the last fsync'd frame"
        );
    }
    drop(store);
}

#[test]
fn kill9_mid_storm_conserves_every_fsynced_frame() {
    let data = TempDir::new("crash-kill9");
    let scratch = TempDir::new("crash-kill9-scratch");
    let (acks, durable) = crash_cycle(data.path(), &scratch, None);
    assert!(acks.iter().sum::<u64>() >= 40, "the storm must have made real progress");
    assert_conservation(&acks, &durable, data.path());

    // Restart a server on the crashed directory: recovery end-to-end.
    let (mut child, addr) = spawn_server(data.path(), &scratch, "restarted", None, false, false);
    let mut client = Client::connect(addr).expect("connect to restarted server");
    let total: u64 = durable.values().sum();
    let stats = client.stats().expect("stats");
    assert_eq!(stats.stream_len, total, "restarted server serves the recovered weight");
    // And it keeps accepting durable writes.
    client.update_many("post-crash", &[1.0, 2.0, 3.0]).unwrap();
    child.kill().unwrap();
    child.wait().unwrap();

    let after = durable_weights(data.path());
    assert_eq!(after.get("post-crash").copied(), Some(3), "post-restart writes are logged");
}

/// Mirror of the `windowed` store the crash server builds — recovery must
/// be configured like the store that wrote the log.
fn windowed_recover_cfg(dir: &Path) -> StoreConfig {
    StoreConfig::default()
        .window(WindowConfig::default().width(Duration::from_secs(1)))
        .data_dir(dir)
}

/// The windowed storm: like [`write_storm_until_killed`], but every batch
/// is timestamped one window later than the last, so the kill lands amid
/// live window rolls and seals, not just appends.
fn windowed_storm_until_killed(addr: std::net::SocketAddr, child: &mut Child) -> Vec<u64> {
    let acked: Vec<AtomicU64> = (0..WRITERS).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for (t, acks) in acked.iter().enumerate() {
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else { return };
                let key = format!("storm-{t}");
                for round in 0u64.. {
                    let base = (round * BATCH as u64) as f64;
                    let batch: Vec<f64> = (0..BATCH).map(|i| base + i as f64).collect();
                    // One second per round: each batch opens a new window
                    // and seals the previous one.
                    if client.update_at(&key, round * 1000, &batch).is_err() {
                        return;
                    }
                    acks.fetch_add(1, Relaxed);
                }
            });
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while acked.iter().map(|a| a.load(Relaxed)).sum::<u64>() < 40 {
            assert!(Instant::now() < deadline, "windowed storm never made progress");
            std::thread::sleep(Duration::from_millis(5));
        }
        child.kill().expect("SIGKILL crash_server");
        child.wait().expect("reap crash_server");
    });
    acked.into_iter().map(|a| a.into_inner()).collect()
}

#[test]
fn kill9_mid_windowed_storm_recovers_byte_identical_windowed_state() {
    let data = TempDir::new("crash-window");
    let scratch = TempDir::new("crash-window-scratch");
    // Housekeeping every 20ms: checkpoints race the seals, so recovery
    // exercises sealed-window checkpoint frames, not just log replay.
    let (mut child, addr) = spawn_server(data.path(), &scratch, "windowed", Some(20), true, false);
    let acks = windowed_storm_until_killed(addr, &mut child);
    assert!(acks.iter().sum::<u64>() >= 40, "the storm must have made real progress");

    // The file-arithmetic conservation bound holds unchanged: windowed
    // records carry the same batches, just tagged with a window id.
    let durable = durable_weights(data.path());
    for (t, &acked) in acks.iter().enumerate() {
        let key = format!("storm-{t}");
        let weight = durable.get(&key).copied().unwrap_or(0);
        assert_eq!(weight % BATCH as u64, 0, "{key}: only whole batches are ever durable");
        assert!(weight >= acked * BATCH as u64, "{key}: an acknowledged batch was lost");
        assert!(weight <= (acked + 1) * BATCH as u64, "{key}: phantom weight appeared");
    }

    // Two independent recoveries of the crashed directory must agree on
    // the *entire* windowed state, byte for byte: same active window and
    // watermark, same sealed set, identical encoded summaries.
    let (first, _) = SketchStore::<f64>::recover(windowed_recover_cfg(data.path())).unwrap();
    let (second, _) = SketchStore::<f64>::recover(windowed_recover_cfg(data.path())).unwrap();
    let mut keys = first.keys();
    keys.sort();
    let mut expected: Vec<String> = durable.keys().cloned().collect();
    expected.sort();
    assert_eq!(keys, expected, "recovered key set matches the durable files");
    for key in &keys {
        let a = first.window_snapshot(key).expect("windowed key");
        let b = second.window_snapshot(key).expect("windowed key");
        assert_eq!(a.active_id, b.active_id, "{key}: active window diverged");
        assert_eq!(a.watermark, b.watermark, "{key}: watermark diverged");
        assert_eq!(encode_summary(&a.active), encode_summary(&b.active), "{key}: active bytes");
        let sealed_a: Vec<(u64, u8, Vec<u8>)> =
            a.sealed.iter().map(|(s, l, sum)| (*s, *l, encode_summary(sum))).collect();
        let sealed_b: Vec<(u64, u8, Vec<u8>)> =
            b.sealed.iter().map(|(s, l, sum)| (*s, *l, encode_summary(sum))).collect();
        assert_eq!(sealed_a, sealed_b, "{key}: sealed windows diverged");
        // And the windowed state carries exactly the durable weight.
        assert_eq!(a.total_weight(), durable[key], "{key}: windowed weight conserved");
    }
}

#[test]
fn kill9_mid_group_commit_storm_conserves_every_acked_batch() {
    let data = TempDir::new("crash-group");
    let scratch = TempDir::new("crash-group-scratch");
    // A 2ms leader hold-off makes the four writers form real multi-append
    // commit groups, so the SIGKILL lands mid-group: some appends are
    // covered by the last fsync, some are buffered and must vanish.
    let (mut child, addr) = spawn_server(data.path(), &scratch, "group", None, false, true);
    let acks = write_storm_until_killed(addr, &mut child);
    assert!(acks.iter().sum::<u64>() >= 40, "the storm must have made real progress");

    // Ack => durable holds *exactly* as under per-writer fsync: a group
    // ack is only sent after the leader's fsync covered the writer's LSN.
    let durable = durable_weights(data.path());
    assert_conservation(&acks, &durable, data.path());

    // Two independent recoveries of the crashed directory agree byte for
    // byte — the torn group tail trims identically every time.
    let (first, _) = SketchStore::<f64>::recover(recover_cfg(data.path())).unwrap();
    let (second, report) = SketchStore::<f64>::recover(recover_cfg(data.path())).unwrap();
    if let Some(corruption) = &report.corruption {
        assert_eq!(corruption.segments_dropped, 0, "a crash tears only the last segment");
    }
    let mut keys = first.keys();
    keys.sort();
    let mut keys_b = second.keys();
    keys_b.sort();
    assert_eq!(keys, keys_b, "recovered key sets diverged");
    for key in &keys {
        assert_eq!(
            encode_summary(&first.summary_of(key).unwrap()),
            encode_summary(&second.summary_of(key).unwrap()),
            "{key}: two recoveries of the same files must agree byte for byte"
        );
    }
}

#[test]
fn kill9_with_aggressive_checkpointing_still_conserves() {
    let data = TempDir::new("crash-ckpt");
    let scratch = TempDir::new("crash-ckpt-scratch");
    // Housekeeping every 20ms: the storm races live checkpoint compaction,
    // so the kill lands around rotations, prunes, and renames too.
    let (acks, durable) = crash_cycle(data.path(), &scratch, Some(20));
    assert_conservation(&acks, &durable, data.path());

    // A second recovery of the repaired directory is clean and identical.
    let (store, report) = SketchStore::<f64>::recover(recover_cfg(data.path())).unwrap();
    assert!(report.corruption.is_none(), "first recovery repaired the tail: {report:?}");
    for (key, &weight) in &durable {
        assert_eq!(store.summary_of(key).unwrap().stream_len(), weight);
    }
}
